//! Information filtering (§5.3): standing interest profiles matched
//! against a stream of new documents, with relevance-feedback learning.
//!
//! ```text
//! cargo run --example filtering_stream
//! ```

use lsi_apps::filtering::{filter_document, InterestProfile};
use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{ParsingRules, TermWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the LSI space on an archive of documents.
    let archive = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 4,
        docs_per_topic: 12,
        queries_per_topic: 1,
        seed: 11,
        ..Default::default()
    });
    let options = LsiOptions {
        k: 8,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 2,
    };
    let (model, _) = LsiModel::build(&archive.corpus, &options)?;
    println!(
        "archive indexed: {} docs, {} terms, k = {}",
        model.n_docs(),
        model.n_terms(),
        model.k()
    );

    // Two standing profiles: one from an interest statement, one from
    // known relevant documents (the paper's best-performing method).
    let mut profiles = vec![
        InterestProfile::from_text(&model, "text-profile-t0", &archive.queries[0].text, 0.6)?,
        InterestProfile::from_relevant_docs(&model, "doc-profile-t2", &[24, 25, 26], 0.6)?,
    ];

    // A stream of new documents from the same generator (held out).
    let stream = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 4,
        docs_per_topic: 3,
        queries_per_topic: 1,
        seed: 12,
        ..Default::default()
    });
    println!("\nstreaming {} new documents:", stream.n_docs());
    for (i, doc) in stream.corpus.docs.iter().enumerate() {
        let decisions = filter_document(&model, &profiles, &doc.text)?;
        let flags: Vec<String> = decisions
            .iter()
            .map(|d| {
                format!(
                    "{}{} {:.2}",
                    if d.recommended { "-> " } else { "   " },
                    d.profile,
                    d.score
                )
            })
            .collect();
        println!("  {} (topic {}): {}", doc.id, stream.doc_topics[i], flags.join(" | "));

        // The user "likes" topic-0 documents: reinforce the first
        // profile toward them (relevance-feedback learning, §5.3).
        if stream.doc_topics[i] == 0 {
            let dv = model.project_text(&doc.text)?;
            profiles[0].reinforce(&dv, 0.25);
        }
    }
    println!("\nprofile 'text-profile-t0' sharpened by feedback on the stream.");
    Ok(())
}
