//! LSI spelling correction (§5.4, Kukich): an n-gram × word semantic
//! space corrects single-edit misspellings.
//!
//! ```text
//! cargo run --example spelling_correction [words...]
//! ```

use lsi_apps::spelling::SpellingCorrector;
use lsi_corpora::spelling::{generate_misspellings, LEXICON};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corrector = SpellingCorrector::build(LEXICON, 60)?;
    println!("lexicon: {} words; LSI space over padded bigrams/trigrams\n", LEXICON.len());

    let args: Vec<String> = std::env::args().skip(1).collect();
    let inputs: Vec<String> = if args.is_empty() {
        vec![
            "informaton".into(), // the classic
            "semnatic".into(),
            "retreival".into(),
            "presure".into(),
            "docment".into(),
        ]
    } else {
        args
    };

    for written in &inputs {
        let suggestions = corrector.suggest(written, 3)?;
        let rendered: Vec<String> = suggestions
            .iter()
            .map(|(w, c)| format!("{w} ({c:.2})"))
            .collect();
        println!("{written:<14} -> {}", rendered.join(", "));
    }

    // A quick accuracy check against generated ground truth.
    let cases = generate_misspellings(50, 99);
    let accuracy = corrector.accuracy(&cases)?;
    println!("\naccuracy on 50 generated single-edit misspellings: {:.0}%", accuracy * 100.0);
    Ok(())
}
