//! The paper's §3 worked example, end to end: parse the 14 MEDLINE
//! topics, compute the rank-2 LSI space, run the "age of children with
//! blood abnormalities" query, and compare against lexical matching.
//!
//! ```text
//! cargo run --example medline_topics
//! ```

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::med::{self, MedExample};
use lsi_eval::LexicalMatcher;
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let example = MedExample::build();
    println!(
        "parsed {} topics into {} keywords: {:?}\n",
        example.corpus.len(),
        example.vocab.len(),
        example.vocab.terms()
    );

    let corpus = Corpus::from_pairs(med::TOPICS);
    let options = LsiOptions {
        k: 2,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(), // the example skips weighting
        svd_seed: 42,
    };
    let (model, _) = LsiModel::build(&corpus, &options)?;
    println!(
        "rank-2 LSI space: sigma = ({:.4}, {:.4})  [paper: ({:.4}, {:.4})]\n",
        model.singular_values()[0],
        model.singular_values()[1],
        med::PAPER_SIGMA[0],
        med::PAPER_SIGMA[1]
    );

    // The query of §3.1; stop words and unindexed words drop out.
    println!("query: {:?}", med::QUERY);
    let ranked = model.query(med::QUERY)?;
    println!("LSI ranking (cosine >= 0.40):");
    for m in &ranked.at_threshold(0.40).matches {
        println!("  {:<4} {:.2}", m.id, m.cosine);
    }

    // §3.2's punchline: lexical matching returns two irrelevant topics
    // and misses the best one.
    let lex = LexicalMatcher::build(&example.corpus, example.vocab.clone());
    let lexical: Vec<String> = lex
        .matching_docs(med::QUERY)
        .into_iter()
        .map(|d| example.corpus.docs[d].id.clone())
        .collect();
    println!("\nlexical matching returns: {lexical:?}");
    println!(
        "LSI ranks M9 (christmas disease = childhood hemophilia) at #{}; \
         lexical matching misses it entirely",
        ranked.rank_of("M9").unwrap() + 1
    );
    Ok(())
}
