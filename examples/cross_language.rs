//! Cross-language retrieval (§5.4): train on combined dual-language
//! abstracts, fold in monolingual documents, query across languages
//! with no translation step.
//!
//! ```text
//! cargo run --example cross_language
//! ```

use lsi_apps::crosslang::CrossLanguageLsi;
use lsi_core::LsiOptions;
use lsi_corpora::bilingual::{BilingualCorpus, BilingualOptions};
use lsi_text::{ParsingRules, TermWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = BilingualCorpus::generate(&BilingualOptions::default());
    println!(
        "training on {} combined English+French documents; folding in {} English and {} French monolingual docs",
        data.training.len(),
        data.holdout_english.len(),
        data.holdout_french.len()
    );

    let options = LsiOptions {
        k: 12,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 19,
    };
    let system = CrossLanguageLsi::build(&data, &options)?;

    // English queries against French documents — no translation.
    println!("\nEnglish queries retrieving FRENCH documents:");
    for (topic, q) in data.queries_english.iter().enumerate() {
        let ranked = system.rank_monolingual(q)?;
        let top_french = ranked
            .iter()
            .find(|(d, _)| d - system.n_training >= data.holdout_english.len())
            .expect("a French doc is ranked");
        let idx = top_french.0 - system.n_training - data.holdout_english.len();
        let hit = data.holdout_topics[idx] == topic;
        println!(
            "  topic {topic}: top French doc is {} (cos {:.2}) — {}",
            data.holdout_french.docs[idx].id,
            top_french.1,
            if hit { "correct topic" } else { "WRONG topic" }
        );
    }

    println!("\nFrench queries retrieving ENGLISH documents:");
    for (topic, q) in data.queries_french.iter().enumerate() {
        let ranked = system.rank_monolingual(q)?;
        let top_english = ranked
            .iter()
            .find(|(d, _)| d - system.n_training < data.holdout_english.len())
            .expect("an English doc is ranked");
        let idx = top_english.0 - system.n_training;
        let hit = data.holdout_topics[idx] == topic;
        println!(
            "  topic {topic}: top English doc is {} (cos {:.2}) — {}",
            data.holdout_english.docs[idx].id,
            top_english.1,
            if hit { "correct topic" } else { "WRONG topic" }
        );
    }
    Ok(())
}
