//! Multiple-points-of-interest queries (§5.4, Kane-Esrig et al.):
//! a query with several distinct facets keeps one vector per facet
//! instead of collapsing to a centroid that may land in empty space.
//!
//! ```text
//! cargo run --example multi_facet
//! ```

use lsi_core::{Combine, LsiModel, LsiOptions, MultiQuery};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::from_pairs([
        ("cars1", "car engine wheel motor car gear"),
        ("cars2", "automobile engine motor chassis gear"),
        ("cars3", "car automobile driver wheel road"),
        ("zoo1", "elephant lion zebra elephant herd"),
        ("zoo2", "lion zebra giraffe elephant cub"),
        ("zoo3", "zebra giraffe lion safari herd"),
        ("mix1", "driver photographs lion from car on safari road"),
        ("mix2", "engine noise scares zebra herd near road"),
    ]);
    let options = LsiOptions {
        k: 3,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 7,
    };
    let (model, _) = LsiModel::build(&corpus, &options)?;

    // A two-facet information need: vehicles AND wildlife.
    let query = MultiQuery::from_texts(&model, &["car motor engine", "lion zebra safari"])?;
    println!("two facets: \"car motor engine\" + \"lion zebra safari\"\n");

    for (name, combine) in [
        ("max (either facet)", Combine::Max),
        ("mean (both facets)", Combine::Mean),
        ("density beta=6", Combine::Density { sharpness: 6.0 }),
    ] {
        let ranked = model.query_multi(&query, combine)?;
        let top: Vec<String> = ranked
            .top(4)
            .matches
            .iter()
            .map(|m| format!("{} ({:.2})", m.id, m.cosine))
            .collect();
        println!("{name:<22} -> {}", top.join(", "));
    }

    // The centroid pitfall: averaging the facet texts into one query
    // puts the vector between the clusters.
    let centroid = model.query("car motor engine lion zebra safari")?;
    let top: Vec<String> = centroid
        .top(4)
        .matches
        .iter()
        .map(|m| format!("{} ({:.2})", m.id, m.cosine))
        .collect();
    println!("{:<22} -> {}", "single centroid query", top.join(", "));
    println!(
        "\nnote how the Mean/Density combinations favour the mixed documents\n\
         (mix1/mix2) that genuinely touch both interests."
    );
    Ok(())
}
