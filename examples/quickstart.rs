//! Quickstart: index a handful of documents, run a query, inspect the
//! semantic space.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lsi_core::{LsiModel, LsiOptions};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A corpus: ids + raw text. Parsing, stop-word removal, and the
    //    term-document matrix are handled internally.
    let corpus = Corpus::from_pairs([
        ("doc1", "the engine of the car roared as the driver accelerated"),
        ("doc2", "an automobile needs a working motor and a tuned engine"),
        ("doc3", "the driver parked the automobile and checked the motor of the car"),
        ("doc4", "elephants and lions roam the savanna wilderness"),
        ("doc5", "the lion stalked a herd of elephants at the waterhole"),
        ("doc6", "wildlife of the savanna includes lions and a lion cub"),
    ]);

    // 2. Build the LSI model: vocabulary rules (terms must occur in at
    //    least two documents), the paper's recommended log x entropy
    //    weighting, and a truncated SVD with k factors.
    let options = LsiOptions {
        k: 2,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 1,
    };
    let (model, report) = LsiModel::build(&corpus, &options)?;
    println!(
        "indexed {} terms x {} docs into {} factors ({} Lanczos steps)",
        model.n_terms(),
        model.n_docs(),
        model.k(),
        report.steps
    );

    // 3. Query. "automobile" never co-occurs with "roared", yet LSI
    //    ranks doc1 highly: that is the latent structure at work.
    for query in ["automobile motor", "lion savanna", "car"] {
        let ranked = model.query(query)?;
        let hits: Vec<String> = ranked
            .top(3)
            .matches
            .iter()
            .map(|m| format!("{} ({:.2})", m.id, m.cosine))
            .collect();
        println!("query {query:?} -> {}", hits.join(", "));
    }

    // 4. Term-term similarity (the automatic-thesaurus view).
    let car = model.term_index("car").expect("indexed");
    let engine = model.term_index("engine").expect("indexed");
    let lions = model.term_index("lions").expect("indexed");
    println!(
        "sim(car, engine) = {:.2}, sim(car, lions) = {:.2}",
        model.term_term_similarity(car, engine),
        model.term_term_similarity(car, lions)
    );

    // 5. Persist the "LSI database" and restore it.
    let json = model.to_json()?;
    let restored = LsiModel::from_json(&json)?;
    assert_eq!(restored.k(), model.k());
    println!("round-tripped model through JSON ({} bytes)", json.len());
    Ok(())
}
