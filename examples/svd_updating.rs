//! §3.3/§4 live: add the fictitious topics M15/M16 to the MEDLINE
//! example by folding-in, SVD-updating, and recomputing, and watch
//! where each method puts them.
//!
//! ```text
//! cargo run --example svd_updating
//! ```

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::med::{self, MedExample};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn print_positions(label: &str, model: &LsiModel) {
    println!("{label}  (sigma = {:.4}, {:.4})", model.singular_values()[0], model.singular_values()[1]);
    for id in ["M13", "M14", "M15", "M16"] {
        let j = model.doc_index(id).expect("present");
        let c = model.doc_coords_scaled(j);
        println!("  {id}: ({:>7.4}, {:>7.4})", c[0], c[1]);
    }
    let m15 = model.doc_index("M15").unwrap();
    let m13 = model.doc_index("M13").unwrap();
    let m14 = model.doc_index("M14").unwrap();
    println!(
        "  cos(M15, M13) = {:.3}, cos(M15, M14) = {:.3}",
        model.doc_doc_similarity(m15, m13),
        model.doc_doc_similarity(m15, m14)
    );
    let loss = model.orthogonality_loss().expect("measurable");
    println!("  orthogonality defect of V: {:.2e}\n", loss.doc_defect);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = LsiOptions {
        k: 2,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(),
        svd_seed: 42,
    };
    let base_corpus = Corpus::from_pairs(med::TOPICS);
    let update_corpus = Corpus::from_pairs(med::UPDATE_TOPICS);
    println!("adding M15 ({:?})\nand    M16 ({:?})\n", med::UPDATE_TOPICS[0].1, med::UPDATE_TOPICS[1].1);

    // Folding-in (Figure 7): cheap, original coordinates frozen, and
    // M15 fails to join the rats cluster.
    let (mut folded, _) = LsiModel::build(&base_corpus, &options)?;
    folded.fold_in_documents(&update_corpus)?;
    print_positions("folding-in (Figure 7)", &folded);

    // SVD-updating (Figure 9): the rank-2 factors of (A_2 | D),
    // orthogonality preserved, cluster forms.
    let example = MedExample::build();
    let (mut updated, _) = LsiModel::build(&base_corpus, &options)?;
    let d = example.update_documents_matrix();
    updated.svd_update_documents(&d, &["M15".to_string(), "M16".to_string()])?;
    print_positions("SVD-updating (Figure 9)", &updated);

    // Recomputing (Figure 8): the ground truth.
    let (recomputed, _) = LsiModel::build(&MedExample::extended_corpus(), &options)?;
    print_positions("recomputing (Figure 8)", &recomputed);

    println!(
        "the paper's claim: folding-in freezes the old geometry and distorts\n\
         orthogonality; SVD-updating tracks the recomputed space at a fraction\n\
         of the cost (run `cargo bench -p lsi-bench --bench updating` to see)."
    );
    Ok(())
}
