#!/usr/bin/env bash
# Tier-1 verification: build, tests, a quick perf_kernels smoke run
# (checks the JSON report keys), a fault-injection smoke, and the
# lsi-analyze static-analysis ratchet (safety/panic/provenance
# invariants; see DESIGN.md §3e).
#
# usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

# The suite runs twice: once on the persistent pool (default) and once
# fully serial. LSI_NUM_THREADS=1 must reproduce pooled results
# bit-for-bit, and every parallel kernel has a serial fallback that the
# second pass exercises.
echo "== tier-1: cargo test -q (pooled)"
cargo test -q

echo "== tier-1: cargo test -q (LSI_NUM_THREADS=1)"
LSI_NUM_THREADS=1 cargo test -q

echo "== smoke: perf_kernels --quick JSON report"
out=$(./target/release/perf_kernels --quick)
for key in \
    gemm_nn_256_gflops gemm_tn_256_gflops gemm_nn_512_gflops \
    gemm_nn_tall_gflops lanczos_k50_secs lanczos_k50_steps \
    query_single_qps query_batch_scoring_qps query_multi_facet_qps \
    git_sha '"metrics"' '"spans"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --quick output is missing $key" >&2
    exit 1
  fi
done

echo "== smoke: perf_kernels --pool --quick JSON report"
out=$(./target/release/perf_kernels --pool --quick)
for key in \
    pool_threads pool_dispatch_us spawn_dispatch_us \
    spmv_skewed_serial_secs spmv_skewed_par_secs spmv_skewed_speedup \
    lanczos_k50_secs lanczos_k50_steps '"metrics"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --pool --quick output is missing $key" >&2
    exit 1
  fi
done
# Refresh the committed pool benchmark with a full run via:
#   ./target/release/perf_kernels --pool > BENCH_pool.json

echo "== smoke: perf_kernels --compressed --quick JSON report"
out=$(./target/release/perf_kernels --compressed --quick)
for key in \
    f64_batch_scoring_qps f64_resident_bytes \
    f32_batch_scoring_qps f32_resident_bytes f32_fallbacks \
    i8_batch_scoring_qps i8_resident_bytes i8_recall_at_10 \
    '"metrics"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --compressed --quick output is missing $key" >&2
    exit 1
  fi
done
# Refresh the committed precision-ladder numbers with a full run via:
#   ./target/release/perf_kernels --compressed   (see BENCH_kernels.json "compressed")

echo "== smoke: perf_kernels --index --quick JSON report + recall floor"
# The binary itself enforces the CI floor (exit 1 when recall@10 at the
# default nprobe drops below 0.95, or full-depth bit-identity breaks),
# so a plain invocation is the floor check; the grep below only guards
# the report schema.
out=$(./target/release/perf_kernels --index --quick)
for key in \
    index_n_lists index_train_secs exact_batch_scoring_qps \
    nprobe1_recall_at_10 nprobe8_speedup_vs_exact \
    pruned_batch_scoring_qps pruned_recall_at_10 pruned_speedup_vs_exact \
    full_depth_bit_identical scale100x_pruned_query_us \
    '"metrics"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --index --quick output is missing $key" >&2
    exit 1
  fi
done
# Refresh the committed pruning curve with a full run via:
#   ./target/release/perf_kernels --index   (see BENCH_kernels.json "index")

echo "== smoke: fault injection (forced failpoints fire and are contained)"
# Force each failpoint through a real CLI pipeline and assert two
# things: (a) the failpoint actually FIRED (the lsi-fault warn line on
# stderr — this is what catches an arming regression, where a command
# that silently ignores its failpoint would otherwise pass), and
# (b) the exit code matches the documented containment: 0 for graceful
# degradation (SVD fallback ladder, delay actions), 1/2 for a typed
# error, 70 for the CLI panic boundary. 101 (uncaught panic) or 134
# (abort) is a hardening regression.
# (The sparse.io.read failpoint has no CLI entry point; the fuzz_io
# property tests cover it. pool.task is driven through `terms` — its
# thesaurus sweep is the one pool dispatch with no size threshold.)
fault_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir"' EXIT
printf 'cars1\tcar engine wheel motor car\ncars2\tautomobile engine motor chassis\ncars3\tcar automobile driver wheel\nzoo1\telephant lion zebra elephant\nzoo2\tlion zebra giraffe elephant\nzoo3\tzebra giraffe lion safari\n' \
  > "$fault_dir/docs.tsv"
fault_run() {
  local threads=$1 expect=$2 spec=$3; shift 3
  local code=0
  LSI_NUM_THREADS=$threads LSI_FAILPOINTS=$spec \
    ./target/release/lsi "$@" >"$fault_dir/out.log" 2>"$fault_dir/err.log" || code=$?
  if ! grep -q 'failpoint .* fired' "$fault_dir/err.log"; then
    echo "FAIL: LSI_FAILPOINTS=$spec (threads=$threads) lsi $* never fired" >&2
    cat "$fault_dir/err.log" >&2
    exit 1
  fi
  local ok=1
  case "$expect" in
    ok)      [ "$code" -eq 0 ] || ok=0 ;;
    fail)    { [ "$code" -eq 1 ] || [ "$code" -eq 2 ]; } || ok=0 ;;
    panic70) [ "$code" -eq 70 ] || ok=0 ;;
  esac
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: LSI_FAILPOINTS=$spec (threads=$threads) lsi $* exited $code (expected $expect)" >&2
    cat "$fault_dir/err.log" >&2
    exit 1
  fi
}
for threads in 4 1; do
  db="$fault_dir/db-$threads.json"
  # A clean index first, so the query/load failpoints have a database.
  LSI_NUM_THREADS=$threads ./target/release/lsi \
    index "$fault_dir/docs.tsv" --out "$db" --k 2 >/dev/null
  fault_run "$threads" ok      'svd.lanczos.iter=return-err'    index "$fault_dir/docs.tsv" --out "$fault_dir/f1.json" --k 2
  fault_run "$threads" ok      'svd.lanczos.iter=inject-nan'    index "$fault_dir/docs.tsv" --out "$fault_dir/f2.json" --k 2
  fault_run "$threads" panic70 'pool.task=panic:1'              terms "$db" car --top 3
  fault_run "$threads" panic70 'pool.task=return-err:1'         terms "$db" car --top 3
  fault_run "$threads" ok      'pool.task=delay-ms(10):2'       terms "$db" car --top 3
  fault_run "$threads" fail    'core.persist.save=return-err'   index "$fault_dir/docs.tsv" --out "$fault_dir/f5.json" --k 2
  fault_run "$threads" ok      'core.persist.save=delay-ms(25)' index "$fault_dir/docs.tsv" --out "$fault_dir/f6.json" --k 2
  fault_run "$threads" fail    'core.persist.load=return-err'   query "$db" "car motor"
  fault_run "$threads" fail    'core.query.score=return-err'    query "$db" "car motor"
  fault_run "$threads" fail    'core.query.score=inject-nan'    query "$db" "car motor"
  # Same failpoint through the compressed sweep: inject-nan (fire once,
  # so only the sweep is poisoned) trips the non-finite guard, which
  # falls back to the exact f64 scan instead of erroring — the query
  # must still succeed (exit 0).
  fault_run "$threads" ok      'core.query.score=inject-nan:1'  query "$db" "car motor" --precision f32
  # The forced save failure must not have clobbered an existing target.
  cp "$db" "$fault_dir/keep.json"
  fault_run "$threads" fail 'core.persist.save=return-err' index "$fault_dir/docs.tsv" --out "$fault_dir/keep.json" --k 2
  if ! cmp -s "$db" "$fault_dir/keep.json"; then
    echo "FAIL: a failed save corrupted the existing database" >&2
    exit 1
  fi
  # And the Lanczos fallback ladder must still produce a usable index.
  LSI_NUM_THREADS=$threads LSI_FAILPOINTS='svd.lanczos.iter=return-err' \
    ./target/release/lsi index "$fault_dir/docs.tsv" --out "$fault_dir/fb.json" --k 2 >/dev/null
  LSI_NUM_THREADS=$threads ./target/release/lsi query "$fault_dir/fb.json" "car motor" | head -1 \
    | grep -q . || { echo "FAIL: fallback-built index cannot serve queries" >&2; exit 1; }
done

echo "== smoke: lsi serve (endpoints, failpoint containment, graceful drain)"
# Boot the daemon against the fault-smoke index, hit every endpoint
# over raw /dev/tcp (no curl dependency), force each serve.* failpoint
# with a one-shot spec and assert the daemon (a) answers the poisoned
# request with a typed status, (b) logs the fired warn, and (c) keeps
# serving afterward. Finally, SIGTERM with a query in flight must drain
# (client still gets its 200) and leave a final lsi_serve run report on
# stdout with exit code 0.
serve_pid=
trap 'rm -rf "$fault_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
serve_start() {
  local threads=$1 spec=$2
  : > "$fault_dir/serve.out"
  : > "$fault_dir/serve.err"
  LSI_NUM_THREADS=$threads LSI_FAILPOINTS=$spec \
    ./target/release/lsi serve "$db" --port 0 --threads 2 \
    > "$fault_dir/serve.out" 2> "$fault_dir/serve.err" &
  serve_pid=$!
  serve_port=
  local i=0
  while [ "$i" -lt 100 ]; do
    serve_port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$fault_dir/serve.out")
    [ -n "$serve_port" ] && return 0
    sleep 0.05
    i=$((i + 1))
  done
  echo "FAIL: lsi serve never reported a listening address" >&2
  cat "$fault_dir/serve.err" >&2
  exit 1
}
serve_get() {
  local path=$1 out=$2
  serve_status=
  : > "$out"
  if exec 3<>"/dev/tcp/127.0.0.1/$serve_port"; then
    printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$path" >&3
    cat <&3 > "$out" 2>/dev/null || true
    exec 3<&- 3>&- || true
    serve_status=$(head -1 "$out" | tr -d '\r' | awk '{print $2}')
  fi
}
serve_expect() {
  local path=$1 want=$2 sub=$3
  serve_get "$path" "$fault_dir/resp.txt"
  if [ "$serve_status" != "$want" ]; then
    echo "FAIL: GET $path returned ${serve_status:-<no response>} (expected $want)" >&2
    cat "$fault_dir/serve.err" >&2
    exit 1
  fi
  if [ -n "$sub" ] && ! grep -q -- "$sub" "$fault_dir/resp.txt"; then
    echo "FAIL: GET $path response is missing $sub" >&2
    cat "$fault_dir/resp.txt" >&2
    exit 1
  fi
}
serve_fired() {
  if ! grep -q 'failpoint .* fired' "$fault_dir/serve.err"; then
    echo "FAIL: serve failpoint $1 never fired" >&2
    cat "$fault_dir/serve.err" >&2
    exit 1
  fi
}
serve_stop() {
  kill -TERM "$serve_pid" 2>/dev/null || true
  local code=0
  wait "$serve_pid" || code=$?
  serve_pid=
  if [ "$code" -ne 0 ]; then
    echo "FAIL: lsi serve exited $code after SIGTERM (expected 0)" >&2
    cat "$fault_dir/serve.err" >&2
    exit 1
  fi
  if ! grep -q '"name":"lsi_serve"' "$fault_dir/serve.out"; then
    echo "FAIL: lsi serve left no final run report on stdout" >&2
    cat "$fault_dir/serve.out" >&2
    exit 1
  fi
}
for threads in 4 1; do
  db="$fault_dir/db-$threads.json"
  # Clean daemon: every endpoint answers, errors are typed.
  serve_start "$threads" ''
  serve_expect /healthz 200 ok
  serve_expect /readyz 200 ready
  serve_expect '/query?q=car+motor&top=3' 200 '"results"'
  serve_expect '/query' 400 ''
  serve_expect /nope 404 ''
  serve_expect /stats 200 '"queries"'
  serve_stop
  # Parse failpoint: poisoned request gets a typed 400, daemon survives.
  serve_start "$threads" 'serve.parse=return-err:1'
  serve_expect '/query?q=car+motor' 400 failpoint
  serve_expect '/query?q=car+motor' 200 '"results"'
  serve_fired serve.parse
  serve_stop
  # Batcher panic: contained to a 500, scoring thread respawns state.
  serve_start "$threads" 'serve.batch=panic:1'
  serve_expect '/query?q=car+motor' 500 ''
  serve_expect '/query?q=car+motor' 200 '"results"'
  serve_fired serve.batch
  serve_stop
  # Accept failpoint: one connection dropped at the door, next served.
  serve_start "$threads" 'serve.accept=return-err:1'
  serve_get /healthz "$fault_dir/resp.txt" || true
  serve_expect /healthz 200 ok
  serve_fired serve.accept
  serve_stop
  # Drain: SIGTERM with a delayed query in flight; the client must
  # still get its 200 before the process exits 0.
  serve_start "$threads" 'serve.batch=delay-ms(300):1'
  (
    if exec 3<>"/dev/tcp/127.0.0.1/$serve_port"; then
      printf 'GET /query?q=car+motor HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
      cat <&3 > "$fault_dir/resp-drain.txt" || true
      exec 3<&- 3>&- || true
    fi
  ) &
  drain_client=$!
  sleep 0.1
  serve_stop
  wait "$drain_client" || true
  if ! head -1 "$fault_dir/resp-drain.txt" | grep -q ' 200 '; then
    echo "FAIL: in-flight query dropped during drain" >&2
    cat "$fault_dir/resp-drain.txt" >&2
    exit 1
  fi
done

echo "== perf: perf_kernels --gate (regression gate vs BENCH_kernels.json)"
# Re-measures the key kernel/query metrics at full size with
# observability disarmed and compares against the committed `gate`
# section of BENCH_kernels.json. The 2% band on query_batch_scoring_qps
# is the tracing-disabled overhead contract (DESIGN.md §3g): the span
# machinery, counting allocator, and trace hooks ride the hot query
# path even when off, and this gate is what keeps "off" free. On a
# machine slower than the one that recorded the baselines, widen the
# bands with LSI_PERF_TOLERANCE=<frac> (e.g. 0.5).
./target/release/perf_kernels --gate

echo "== lint: lsi-analyze --ci (static-analysis ratchet)"
# Replaces the old unwrap/eprintln shell greps with the token-aware
# analyzer in crates/analysis: per-file rules (unsafe-audit,
# panic-surface, float-safety, atomics-audit, eprintln-lint,
# threshold-provenance, metric-naming) plus the interprocedural rules
# over the workspace call graph (panic-reachability, unsafe-taint,
# atomics-pairing — the serve path's panic-free contract is a hard
# error). Pre-existing debt lives in analysis_baseline.json
# (per-(rule, file) counts, shrink-only); any finding above the
# baseline fails here. The analysis_full_secs gate row above caps this
# stage's wall time. Details: DESIGN.md §3e and §3j,
# `lsi-analyze --explain <rule>`.
cargo run --release -q -p lsi-analyze -- --ci

echo "verify: OK"
