#!/usr/bin/env bash
# Tier-1 verification: build, tests, a quick perf_kernels smoke run
# (checks the JSON report keys), and a lint rejecting new bare
# eprintln! call sites (diagnostics must go through lsi-obs events).
#
# usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

# The suite runs twice: once on the persistent pool (default) and once
# fully serial. LSI_NUM_THREADS=1 must reproduce pooled results
# bit-for-bit, and every parallel kernel has a serial fallback that the
# second pass exercises.
echo "== tier-1: cargo test -q (pooled)"
cargo test -q

echo "== tier-1: cargo test -q (LSI_NUM_THREADS=1)"
LSI_NUM_THREADS=1 cargo test -q

echo "== smoke: perf_kernels --quick JSON report"
out=$(./target/release/perf_kernels --quick)
for key in \
    gemm_nn_256_gflops gemm_tn_256_gflops gemm_nn_512_gflops \
    gemm_nn_tall_gflops lanczos_k50_secs lanczos_k50_steps \
    query_single_qps query_batch_scoring_qps query_multi_facet_qps \
    git_sha '"metrics"' '"spans"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --quick output is missing $key" >&2
    exit 1
  fi
done

echo "== smoke: perf_kernels --pool --quick JSON report"
out=$(./target/release/perf_kernels --pool --quick)
for key in \
    pool_threads pool_dispatch_us spawn_dispatch_us \
    spmv_skewed_serial_secs spmv_skewed_par_secs spmv_skewed_speedup \
    lanczos_k50_secs lanczos_k50_steps '"metrics"'; do
  if ! grep -q -- "$key" <<<"$out"; then
    echo "FAIL: perf_kernels --pool --quick output is missing $key" >&2
    exit 1
  fi
done
# Refresh the committed pool benchmark with a full run via:
#   ./target/release/perf_kernels --pool > BENCH_pool.json

echo "== lint: no bare eprintln! outside lsi-obs and tests"
# The obs crate owns stderr; everything else routes diagnostics
# through lsi_obs events (error!/warn!/...) so levels and counters
# apply. Test code is exempt.
if grep -rn 'eprintln!' crates src examples 2>/dev/null \
    | grep -v '^crates/obs/' \
    | grep -v '/tests/' \
    | grep -v 'mod tests' \
    ; then
  echo "FAIL: bare eprintln! found (use lsi_obs::error!/warn!/... instead)" >&2
  exit 1
fi

echo "verify: OK"
