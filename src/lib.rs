//! `lsi-repro`: umbrella crate of the LSI reproduction workspace.
//!
//! The real functionality lives in the member crates; this package
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See the README for the map.

/// Workspace identity string used by smoke tests.
pub const WORKSPACE: &str = "lsi-reproduction";

/// The member crates, for documentation purposes.
pub const CRATES: &[&str] = &[
    "lsi-linalg",
    "lsi-sparse",
    "lsi-svd",
    "lsi-text",
    "lsi-core",
    "lsi-eval",
    "lsi-corpora",
    "lsi-apps",
    "lsi-bench",
];
