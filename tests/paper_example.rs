//! Acceptance tests for the paper's §3 worked example: the published
//! vocabulary, matrix, query projection, retrieval sets, and updating
//! behaviour, exercised end-to-end through the public API of the
//! workspace crates.

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::med::{self, MedExample};
use lsi_eval::LexicalMatcher;
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn example_model(k: usize) -> (MedExample, LsiModel) {
    let example = MedExample::build();
    let corpus = Corpus::from_pairs(med::TOPICS);
    let options = LsiOptions {
        k,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(),
        svd_seed: 42,
    };
    let (model, _) = LsiModel::build(&corpus, &options).expect("model builds");
    (example, model)
}

#[test]
fn vocabulary_reproduces_table2_keywords_exactly() {
    let example = MedExample::build();
    let terms: Vec<&str> = example.vocab.terms().iter().map(|s| s.as_str()).collect();
    assert_eq!(terms, med::TERMS);
}

#[test]
fn matrix_is_18_by_14_with_correct_document_frequencies() {
    let example = MedExample::build();
    assert_eq!(example.matrix.shape(), (18, 14));
    // Document frequencies implied by Table 2's underlines.
    let df = |term: &str| -> usize {
        let i = example.vocab.index_of(term).unwrap();
        (0..14).filter(|&j| example.matrix.get(i, j) != 0.0).count()
    };
    assert_eq!(df("fast"), 4);
    assert_eq!(df("culture"), 4);
    assert_eq!(df("depressed"), 4);
    assert_eq!(df("patients"), 4);
    assert_eq!(df("study"), 3);
    assert_eq!(df("discharge"), 3);
    for term in med::TERMS {
        assert!(df(term) >= 2, "{term} must appear in more than one topic");
    }
}

#[test]
fn singular_values_and_query_match_figure5_within_tolerance() {
    let (_, model) = example_model(2);
    let s = model.singular_values();
    assert!((s[0] - med::PAPER_SIGMA[0]).abs() / med::PAPER_SIGMA[0] < 0.03);
    assert!((s[1] - med::PAPER_SIGMA[1]).abs() / med::PAPER_SIGMA[1] < 0.03);
    let q = model.project_text(med::QUERY).unwrap();
    assert!((q[0].abs() - med::PAPER_QUERY_COORDS[0].abs()).abs() < 0.03,
        "x coordinate {} vs paper {}", q[0], med::PAPER_QUERY_COORDS[0]);
    assert!((q[1].abs() - med::PAPER_QUERY_COORDS[1].abs()).abs() < 0.03,
        "y coordinate {} vs paper {}", q[1], med::PAPER_QUERY_COORDS[1]);
}

#[test]
fn lsi_retrieves_m9_first_lexical_matching_misses_it() {
    let (example, model) = example_model(2);
    let ranked = model.query(med::QUERY).unwrap();
    assert_eq!(ranked.matches[0].id.as_ref(), "M9");
    assert!(ranked.matches[0].cosine > 0.99);

    let lex = LexicalMatcher::build(&example.corpus, example.vocab.clone());
    let mut lexical: Vec<String> = lex
        .matching_docs(med::QUERY)
        .into_iter()
        .map(|d| example.corpus.docs[d].id.clone())
        .collect();
    lexical.sort_by_key(|id| id[1..].parse::<usize>().unwrap());
    assert_eq!(lexical, med::PAPER_LEXICAL_MATCHES);
    assert!(!lexical.contains(&med::PAPER_LEXICAL_MISS.to_string()));
}

#[test]
fn table4_k2_ranking_reproduces_paper_order_closely() {
    let (_, model) = example_model(2);
    let ranked = model.query(med::QUERY).unwrap().at_threshold(0.40);
    let ours: Vec<&str> = ranked.matches.iter().map(|m| m.id.as_ref()).collect();
    // Every paper-listed doc is returned.
    for (d, _) in med::PAPER_TABLE4_K2 {
        assert!(ours.contains(&d), "{d} missing");
    }
    // Per-document cosine agreement within 0.12 (source-table OCR
    // noise bounds this; most agree within 0.03).
    for (d, want) in med::PAPER_TABLE4_K2 {
        let got = ranked
            .matches
            .iter()
            .find(|m| m.id.as_ref() == d)
            .map(|m| m.cosine)
            .unwrap();
        assert!(
            (got - want).abs() < 0.12,
            "{d}: cosine {got:.2} vs paper {want:.2}"
        );
    }
}

#[test]
fn update_topics_are_represented_without_new_keywords() {
    let example = MedExample::build();
    let d = example.update_documents_matrix();
    assert_eq!(d.shape(), (18, 2));
    assert_eq!(d.nnz(), 8, "M15 and M16 each contribute 4 keywords");
}

#[test]
fn folding_in_is_frozen_updating_tracks_recompute() {
    let (example, mut folded) = example_model(2);
    let update_corpus = Corpus::from_pairs(med::UPDATE_TOPICS);
    let frozen_before: Vec<Vec<f64>> = (0..14).map(|j| folded.doc_vector(j)).collect();
    folded.fold_in_documents(&update_corpus).unwrap();
    for (j, before) in frozen_before.iter().enumerate() {
        assert_eq!(&folded.doc_vector(j), before);
    }

    let (_, mut updated) = example_model(2);
    updated
        .svd_update_documents(
            &example.update_documents_matrix(),
            &["M15".to_string(), "M16".to_string()],
        )
        .unwrap();

    let options = LsiOptions {
        k: 2,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(),
        svd_seed: 42,
    };
    let (recomputed, _) = LsiModel::build(&MedExample::extended_corpus(), &options).unwrap();

    // Singular values: updated ~ recomputed.
    for (u, r) in updated
        .singular_values()
        .iter()
        .zip(recomputed.singular_values().iter())
    {
        assert!((u - r).abs() / r < 0.06, "sigma {u:.4} vs {r:.4}");
    }

    // Orthogonality: folding-in corrupts, updating preserves (§4.3).
    let fold_loss = folded.orthogonality_loss().unwrap();
    let update_loss = updated.orthogonality_loss().unwrap();
    assert!(fold_loss.doc_defect > 0.05);
    assert!(update_loss.doc_defect < 1e-9);
}

#[test]
fn queries_still_work_after_updating_with_m15_m16() {
    let (example, mut model) = example_model(2);
    model
        .svd_update_documents(
            &example.update_documents_matrix(),
            &["M15".to_string(), "M16".to_string()],
        )
        .unwrap();
    // M16 is about depressed patients under pressure; a matching query
    // should rank it in the top half. (The k=2 plane is very coarse —
    // several original depressed-cluster topics legitimately compete.)
    let ranked = model.query("depressed patients pressure").unwrap();
    let m16 = ranked.rank_of("M16").unwrap();
    assert!(m16 < 8, "M16 ranked #{} of 16", m16 + 1);
    // And all 16 documents are rankable.
    assert_eq!(ranked.matches.len(), 16);
}
