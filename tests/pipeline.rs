//! Cross-crate pipeline tests: parse → weight → SVD → query → update →
//! persist, on generated corpora, checking invariants that span crate
//! boundaries.

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_sparse::io::{read_matrix_market, write_matrix_market};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

fn options(k: usize) -> LsiOptions {
    LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 10,
    }
}

fn corpus(seed: u64) -> SyntheticCorpus {
    SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 5,
        docs_per_topic: 10,
        seed,
        ..Default::default()
    })
}

#[test]
fn end_to_end_build_query_persist_reload() {
    let gen = corpus(1);
    let (model, report) = LsiModel::build(&gen.corpus, &options(10)).unwrap();
    assert!(report.accepted >= 10);

    // Queries retrieve their own topic.
    let mut hits = 0usize;
    for q in &gen.queries {
        let ranked = model.query(&q.text).unwrap();
        if gen.doc_topics[ranked.matches[0].doc] == q.topic {
            hits += 1;
        }
    }
    assert!(
        hits * 10 >= gen.queries.len() * 8,
        "top-1 accuracy {hits}/{}",
        gen.queries.len()
    );

    // Persist and reload: identical ranking.
    let json = model.to_json().unwrap();
    let restored = LsiModel::from_json(&json).unwrap();
    let before = model.query(&gen.queries[0].text).unwrap();
    let after = restored.query(&gen.queries[0].text).unwrap();
    assert_eq!(before.ids(), after.ids());
}

#[test]
fn weighted_matrix_roundtrips_through_matrix_market() {
    let gen = corpus(2);
    let (model, _) = LsiModel::build(&gen.corpus, &options(6)).unwrap();
    let mut buf = Vec::new();
    write_matrix_market(model.weighted_matrix(), &mut buf).unwrap();
    let back = read_matrix_market(std::io::Cursor::new(buf)).unwrap().to_csc();
    assert_eq!(back.shape(), model.weighted_matrix().shape());
    assert!(
        back.to_dense()
            .fro_distance(&model.weighted_matrix().to_dense())
            .unwrap()
            < 1e-10
    );
}

#[test]
fn incremental_updates_converge_to_batch_build() {
    // Build on 40 docs then SVD-update 10 more, vs build on all 50:
    // singular values should agree closely (exactly at full rank,
    // closely at truncation).
    let gen = corpus(3);
    let all = &gen.corpus;
    let first: Corpus = Corpus {
        docs: all.docs[..40].to_vec(),
    };
    let rest: Corpus = Corpus {
        docs: all.docs[40..].to_vec(),
    };

    let (mut incremental, _) = LsiModel::build(&first, &options(12)).unwrap();
    let d = incremental.vocabulary().count_matrix(&rest);
    let ids: Vec<String> = rest.docs.iter().map(|d| d.id.clone()).collect();
    incremental.svd_update_documents(&d, &ids).unwrap();

    // Batch model sharing the same vocabulary/weights: recompute from
    // the incrementally grown matrix.
    let mut batch = incremental.clone();
    batch.recompute(12).unwrap();

    for (a, b) in incremental
        .singular_values()
        .iter()
        .zip(batch.singular_values().iter())
    {
        assert!(
            (a - b).abs() / b < 0.08,
            "incremental sigma {a:.4} vs batch {b:.4}"
        );
    }

    // Rankings correlate: the top-3 sets overlap for each query.
    for q in gen.queries.iter().take(5) {
        let inc: Vec<usize> = incremental
            .query(&q.text)
            .unwrap()
            .matches
            .iter()
            .take(3)
            .map(|m| m.doc)
            .collect();
        let bat: Vec<usize> = batch
            .query(&q.text)
            .unwrap()
            .matches
            .iter()
            .take(3)
            .map(|m| m.doc)
            .collect();
        let overlap = inc.iter().filter(|d| bat.contains(d)).count();
        assert!(overlap >= 2, "top-3 overlap {overlap} for query {:?}", q.text);
    }
}

#[test]
fn fold_in_then_recompute_drops_folded_rows() {
    let gen = corpus(4);
    let (mut model, _) = LsiModel::build(&gen.corpus, &options(8)).unwrap();
    let n = model.n_docs();
    model
        .fold_in_documents(&Corpus {
            docs: vec![Document::new("extra", gen.corpus.docs[0].text.clone())],
        })
        .unwrap();
    assert_eq!(model.n_docs(), n + 1);
    model.recompute(8).unwrap();
    assert_eq!(model.n_docs(), n, "folded row is not part of the stored matrix");
}

#[test]
fn term_updates_extend_the_vocabulary_view() {
    let gen = corpus(5);
    let (mut model, _) = LsiModel::build(&gen.corpus, &options(8)).unwrap();
    let n_docs = model.n_docs();
    let counts: Vec<f64> = (0..n_docs).map(|j| if j % 5 == 0 { 2.0 } else { 0.0 }).collect();
    model
        .svd_update_terms(&[("brandnewterm".to_string(), counts)])
        .unwrap();
    let idx = model.term_index("brandnewterm").expect("new term indexed");
    assert_eq!(idx, model.n_terms() - 1);
    // The new term participates in queries.
    let qhat = model.project_text("brandnewterm").unwrap();
    assert!(qhat.iter().any(|&x| x.abs() > 1e-12));
}

#[test]
fn lanczos_and_dense_oracle_agree_through_the_model_api() {
    let gen = corpus(6);
    let (model, _) = LsiModel::build(&gen.corpus, &options(8)).unwrap();
    let oracle = lsi_svd::dense_oracle(model.weighted_matrix(), 8).unwrap();
    for (got, want) in model.singular_values().iter().zip(oracle.s.iter()) {
        assert!(
            (got - want).abs() < 1e-6 * want.max(1.0),
            "{got} vs oracle {want}"
        );
    }
}
