//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Covers the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], `prop::collection::vec`,
//! `prop::sample::select`, the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and the `prop_assert!` family.
//!
//! Differences from upstream: sampling is plain pseudo-random (no
//! bias toward edge cases) and failing cases are **not shrunk** — the
//! panic message reports the case number under a seed derived from the
//! test's name, so failures are still deterministic and reproducible.

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type the generated test-case closures return. `prop_assert!`
/// panics instead of constructing one, but test bodies may
/// `return Ok(())` early to skip a case, so the closure is fallible.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Deterministic RNG for a named test: the seed is a hash of the test
/// name, so every run (and every machine) replays the same cases.
pub fn new_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adaptor.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed set of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly select one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property test (panics with case context added by the
/// harness; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)`
/// expands to a test that samples its arguments `cases` times. Bodies
/// may `return Ok(())` to skip the rest of a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursive expansion for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                #[allow(unreachable_code)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                // Early `return Ok(())` skips a case; Err never occurs
                // because prop_assert! panics (with case context below).
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("case {}/{} failed: {}", __case + 1, __config.cases, e.0);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..6, 1usize..6).prop_flat_map(|(m, n)| {
            (Just(m), prop::collection::vec(-1.0f64..1.0, m * n))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes(p in pair_strategy()) {
            let (m, data) = p;
            prop_assert!(data.len() >= m);
            prop_assert_eq!(data.len() % m, 0);
        }

        #[test]
        fn select_draws_from_options(w in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&w));
        }

        #[test]
        fn early_return_skips_case(x in 0usize..10) {
            if x > 4 {
                return Ok(());
            }
            prop_assert!(x <= 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::new_rng("some::test");
        let mut b = crate::new_rng("some::test");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
