//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports the two shapes this workspace actually derives on:
//!
//! * structs with named fields → serialized as a map of field values,
//! * enums whose variants are all unit variants → serialized as the
//!   variant name string.
//!
//! The input is parsed directly from the token stream (no `syn`, which
//! is unavailable offline); anything outside the supported shapes
//! panics at compile time with a pointed message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Struct name + field names, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit-variant names, in declaration order.
    Enum(String, Vec<String>),
}

/// Consume leading attributes (`#[...]`, including doc comments) from
/// the front of `toks`.
fn skip_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }
}

/// Consume a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
                "serde_derive: generic type `{name}` is not supported by the vendored derive"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => panic!(
                "serde_derive: unit/tuple struct `{name}` is not supported by the vendored derive"
            ),
            Some(_) => continue,
            None => panic!("serde_derive: `{name}` has no braced body"),
        }
    };

    match kind.as_str() {
        "struct" => Shape::Struct(name, parse_named_fields(body.stream())),
        "enum" => Shape::Enum(name, parse_unit_variants(body.stream())),
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    }
}

/// Field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive: tuple structs are not supported (expected `:`, found {other:?})"
            ),
        }
        // Skip the field type: angle brackets nest via plain punct
        // tokens, so track their depth to find the separating comma.
        let mut angle_depth = 0usize;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Variant names from an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(name);
                break;
            }
            other => panic!(
                "serde_derive: only unit enum variants are supported \
                 (variant `{name}` is followed by {other:?})"
            ),
        }
        variants.push(name);
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(map, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let map = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\
                                 \"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             ::std::option::Option::Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::Error::custom(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::std::option::Option::None => \
                                 ::std::result::Result::Err(::serde::Error::custom(\
                                     \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated impl parses")
}
