//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no access to crates.io, so
//! the external crates it leans on are vendored as minimal
//! reimplementations under `vendor/`. This one covers exactly the
//! surface the LSI workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`], [`rngs::StdRng`] /
//! [`rngs::SmallRng`], and [`distr::Uniform`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high
//! quality, deterministic across platforms, and fast. It is *not* the
//! upstream `StdRng` stream: seeds produce different (but equally
//! well-distributed) sequences than crates.io `rand 0.9`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a stream of random words.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded integer in `[0, bound)` via 128-bit multiply
/// (Lemire's method, without the bias-correcting retry: fine for the
/// statistical uses in this workspace).
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sample range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value inside `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: `seed_from_u64` only, which is the sole
/// constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is invalid; splitmix cannot produce it from any
        // seed in practice, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0xDEAD_BEEF_CAFE_F00D;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256::from_u64(seed)
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic general-purpose generator (xoshiro256**).
    pub type StdRng = super::Xoshiro256;
    /// Small fast generator — same engine in this stand-in.
    pub type SmallRng = super::Xoshiro256;
}

/// Distribution support mirroring `rand::distr`.
pub mod distr {
    use super::{Rng, RngCore, SampleRange};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a distribution.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error;

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid distribution parameters")
        }
    }

    impl std::error::Error for Error {}

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Half-open uniform distribution; errors if `low >= high`.
        pub fn new(low: T, high: T) -> Result<Self, Error> {
            if low < high {
                Ok(Uniform { low, high })
            } else {
                Err(Error)
            }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy + PartialOrd,
        std::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            rng.random_range(self.low..self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distr::{Distribution, Uniform};

    #[test]
    fn deterministic_in_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let z = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let d = Uniform::new(0usize, 5).unwrap();
        for _ in 0..200 {
            assert!(d.sample(&mut rng) < 5);
        }
        assert!(Uniform::new(5usize, 5).is_err());
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
