//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros — measured with plain `std::time::Instant` wall clocks.
//! There is no statistical analysis or HTML report; each benchmark
//! prints one line with the mean iteration time.
//!
//! `--test` (what `cargo bench -- --test` passes) and `--profile-time`
//! switch to quick mode: every benchmark body runs exactly once, which
//! is how CI smoke-checks that benches still compile and run.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs setup
/// before every routine call regardless (setup time is excluded from
/// measurement either way), so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to create.
    SmallInput,
    /// Inputs are expensive to create.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement harness handed to bench closures.
pub struct Bencher {
    quick: bool,
    measure: Duration,
    /// (iterations, total time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `f` called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            self.result = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up / calibration: find an iteration count that fills the
        // measurement window, doubling from 1.
        let mut iters: u64 = 1;
        let total = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measure || iters >= 1 << 20 {
                break elapsed;
            }
            iters *= 2;
        };
        self.result = Some((iters, total));
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            self.result = Some((1, Duration::ZERO));
            return;
        }
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        // Fixed batches until the window fills; inputs are rebuilt
        // outside the timed section.
        while total < self.measure && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), total));
    }
}

fn format_time(t: Duration) -> String {
    let ns = t.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { quick: false, measure: Duration::from_millis(120) }
    }
}

impl Criterion {
    /// Build from the process's CLI arguments (`cargo bench` passes
    /// them through after `--`). `--test` / `--profile-time` select
    /// quick single-iteration mode.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--profile-time");
        Criterion { quick, ..Criterion::default() }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.run_one(&name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { quick: self.quick, measure: self.measure, result: None };
        f(&mut b);
        match b.result {
            Some((1, _)) if self.quick => println!("{name}: ok (quick mode)"),
            Some((iters, total)) => {
                let per = total / iters.max(1) as u32;
                println!("{name}: {} /iter ({iters} iters)", format_time(per));
            }
            None => println!("{name}: no measurement recorded"),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its sample
    /// window by wall clock, not sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Same, for measurement time: shrink/grow the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure = t;
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// End the group (printing happens as benches run).
    pub fn finish(self) {}
}

/// Bundle bench functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_body_once() {
        let mut calls = 0u32;
        let mut c = Criterion { quick: true, measure: Duration::from_millis(10) };
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn normal_mode_measures_at_least_once() {
        let mut c = Criterion { quick: false, measure: Duration::from_micros(200) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| {
                ran = true;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            quick: false,
            measure: Duration::from_micros(100),
            result: None,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        let (iters, _) = b.result.unwrap();
        assert!(iters >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
