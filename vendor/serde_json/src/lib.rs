//! Offline, dependency-free stand-in for `serde_json`.
//!
//! Writes and parses JSON text against the vendored `serde` crate's
//! [`serde::Value`] tree. Floats are formatted with Rust's shortest
//! round-trip `Display`, so `to_string` → `from_str` reproduces every
//! finite `f64` bit-exactly (the guarantee the model-persistence tests
//! rely on). Non-finite floats serialize as `null`, matching upstream.

use serde::{Deserialize, Serialize, Value};

/// JSON error (message + byte offset for parse errors).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v).map_err(Error::new)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display is shortest-roundtrip; ensure the text
                // stays a float so it parses back into Value::Float-able
                // form (integers re-enter as UInt/Int, which numeric
                // deserializers accept).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits following a `\u` (cursor already past the `u`).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let txt = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(txt, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let txt = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = txt.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = txt.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        txt.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &x in &[
            0.1,
            -1.5e-300,
            std::f64::consts::PI,
            1.0 / 3.0,
            6.02e23,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he said \"hi\"\\\n\ttab\u{1}snow\u{2603}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Explicit escape forms parse too.
        assert_eq!(from_str::<String>(r#""☃😀""#).unwrap(), "\u{2603}\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, -2.0, 0.0];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert("alpha".to_string(), 3usize);
        m.insert("beta".to_string(), 9usize);
        let json = to_string(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::HashMap<String, usize>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<f64>("1.2.3junk").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
    }
}
