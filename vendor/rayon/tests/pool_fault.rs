//! Fault-injection tests for the pool's `pool.task` failpoint.
//!
//! These live in their own integration-test binary (own process) and
//! serialize on a mutex: the failpoint registry is process-global, so
//! an armed `pool.task` would otherwise fire inside whatever unrelated
//! test happens to submit the next parallel job.

use rayon::prelude::*;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A representative parallel job with a checkable result.
fn squares(n: usize) -> Vec<usize> {
    (0..n).into_par_iter().map(|i| i * i).collect()
}

/// Panic payloads are `String` (format panics) or `&'static str`
/// (literal panics); normalize for assertions.
fn payload_msg(err: &(dyn std::any::Any + Send)) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn forced_pool_task_panic_fails_job_and_pool_recovers() {
    let _g = guard();
    lsi_fault::arm(lsi_fault::points::POOL_TASK, lsi_fault::Action::Panic, Some(1));
    let err = std::panic::catch_unwind(|| squares(400)).expect_err("forced panic must fail the job");
    let msg = payload_msg(&*err);
    assert!(msg.contains("pool.task"), "payload: {msg}");
    lsi_fault::clear();
    // Workers stayed parked and reusable: the next job is correct.
    let sq = squares(400);
    for (i, s) in sq.iter().enumerate() {
        assert_eq!(*s, i * i);
    }
}

#[test]
fn forced_return_err_escalates_to_job_failure() {
    let _g = guard();
    // A type-erased pool task has no error channel, so `return-err`
    // (and `inject-nan`) escalate to the captured-panic path rather
    // than silently doing nothing.
    lsi_fault::arm(
        lsi_fault::points::POOL_TASK,
        lsi_fault::Action::ReturnErr,
        Some(1),
    );
    let err = std::panic::catch_unwind(|| squares(256)).expect_err("forced fault must surface");
    let msg = payload_msg(&*err);
    assert!(msg.contains("pool.task"), "payload: {msg}");
    lsi_fault::clear();
    assert_eq!(squares(16).len(), 16);
}

#[test]
fn forced_delay_only_slows_the_job() {
    let _g = guard();
    lsi_fault::arm(
        lsi_fault::points::POOL_TASK,
        lsi_fault::Action::DelayMs(20),
        Some(1),
    );
    let sq = squares(300);
    lsi_fault::clear();
    for (i, s) in sq.iter().enumerate() {
        assert_eq!(*s, i * i);
    }
}

#[test]
fn repeated_forced_failures_never_wedge_the_pool() {
    let _g = guard();
    for _ in 0..20 {
        lsi_fault::arm(lsi_fault::points::POOL_TASK, lsi_fault::Action::Panic, Some(1));
        let _ = std::panic::catch_unwind(|| squares(128));
        lsi_fault::clear();
        let sq = squares(128);
        assert_eq!(sq[127], 127 * 127);
    }
}
