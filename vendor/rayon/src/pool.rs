//! The persistent work-stealing thread pool behind every parallel
//! entry point of this shim.
//!
//! The previous implementation spawned scoped OS threads *per parallel
//! call*; a spawn measures ~1.7 ms on the containers this workspace
//! targets, which forced callers to gate parallelism behind
//! tens-of-megaflops thresholds. This pool brings dispatch down to the
//! microsecond range:
//!
//! * **Lazy global pool** — built on first use inside a `OnceLock`,
//!   `LSI_NUM_THREADS` (or `available_parallelism()`, read once)
//!   workers in total. The submitting thread is one of them, so the
//!   pool spawns `threads - 1` OS threads, parked on a condvar when
//!   idle.
//! * **Chunked shared-queue stealing** — a job is a half-open range of
//!   `len` tasks plus a shared atomic cursor. Every participant
//!   (submitter and woken workers) repeatedly *steals* the next chunk
//!   of tasks with one `fetch_add`; chunk size is
//!   `len / (threads * CHUNKS_PER_THREAD)`, so a skewed task costs at
//!   most one chunk of imbalance and claiming stays contention-free.
//!   This is the "chunked injector queue" flavour of work stealing:
//!   instead of per-worker Chase–Lev deques (whose owner/thief races
//!   need fences we cannot property-test offline), all participants
//!   act as thieves on one queue, which is linearizable by
//!   construction — no task can be claimed twice or lost.
//! * **Scoped execution** — the job (and the closure it points to)
//!   lives on the submitter's stack. Workers may only obtain the job
//!   pointer under the pool mutex while the job is registered, and
//!   each registers itself in `active` before releasing the mutex; the
//!   submitter unregisters the job and waits for `active == 0` before
//!   returning, so the borrow never escapes.
//! * **Determinism** — every entry point built on [`parallel_for`]
//!   assigns each output element to exactly one task and executes each
//!   task sequentially, so results are bit-identical for every thread
//!   count, including `LSI_NUM_THREADS=1` (which runs everything
//!   inline on the caller with no pool at all).
//!
//! Nested parallel calls (from inside a pool task) and calls issued
//! while another job occupies the slot run inline and serially on the
//! caller; both are counted (`pool.serial_inline.count`) so saturation
//! is visible in `--metrics`.
//!
//! **Panic policy** — a panic in any task poisons its job (remaining
//! chunks are skipped), the first payload is captured on the job, and
//! the submitter re-throws it after the normal drain, so the panic
//! surfaces on the thread that asked for the work. Workers unwind only
//! to their chunk loop and go back to parking: one panicking task out
//! of N fails that job, never the process or the pool. Each task also
//! evaluates the `pool.task` failpoint (see `lsi-fault`) so this
//! recovery path stays testable end to end.

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Oversubscription factor for chunk claiming: each thread's fair share
/// is split into this many chunks so late-arriving or slow workers can
/// steal the tail of a skewed job.
const CHUNKS_PER_THREAD: usize = 4;

/// A unit of scoped parallel work: `f(lo, hi)` must process tasks
/// `lo..hi`. The raw pointer is a type-erased `&(dyn Fn(usize, usize)
/// + Sync)` borrowed from the submitting frame; see the module docs for
/// the protocol that keeps it alive while workers can reach it.
struct Job {
    f: *const (dyn Fn(usize, usize) + Sync),
    /// Total number of tasks.
    len: usize,
    /// Tasks claimed per `fetch_add`.
    chunk: usize,
    /// Next unclaimed task index (may overshoot `len` by one failed
    /// claim per participant).
    next: AtomicUsize,
    /// Pool workers currently executing chunks of this job.
    active: AtomicUsize,
    /// Set when any chunk panicked: participants stop claiming new
    /// chunks and the submitter re-throws after the drain.
    poisoned: AtomicBool,
    /// First captured panic payload (first panic wins; later ones from
    /// chunks already in flight are dropped).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Trace lane label for per-chunk task events, resolved once on
    /// the submitting thread (`<submitter span path>.task`). `None`
    /// whenever tracing is disarmed, so the steady-state cost is one
    /// `Option` check per chunk.
    label: Option<String>,
}

impl Job {
    fn new(
        f: *const (dyn Fn(usize, usize) + Sync),
        len: usize,
        chunk: usize,
        label: Option<String>,
    ) -> Job {
        Job {
            f,
            len,
            chunk,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            label,
        }
    }

    /// Take the captured panic payload, if any chunk panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        if !self.poisoned.load(Ordering::Acquire) {
            return None;
        }
        self.panic
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
    }
}

// SAFETY: the closure behind `f` is `Sync` and the submitter outlives
// every access (enforced by the registration protocol below).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Erase the lifetime of a scoped job closure so it can sit in a
/// [`Job`]. The `*const dyn` type implicitly demands `'static`, which a
/// scoped borrow cannot satisfy — the registration protocol is what
/// actually guarantees the closure outlives every dereference.
///
/// # Safety
/// The caller must not let the referent drop while any participant can
/// still reach the job (i.e. before the job is unregistered and its
/// `active` count has drained).
unsafe fn erase(f: &(dyn Fn(usize, usize) + Sync)) -> *const (dyn Fn(usize, usize) + Sync) {
    unsafe {
        std::mem::transmute::<
            &(dyn Fn(usize, usize) + Sync),
            *const (dyn Fn(usize, usize) + Sync),
        >(f)
    }
}

/// Mutex-guarded slot holding the currently registered job, if any.
struct Shared {
    job: Option<*const Job>,
}

// SAFETY: the pointer is only dereferenced under the protocol above.
unsafe impl Send for Shared {}

/// The persistent pool: worker threads plus the job slot they serve.
pub(crate) struct Pool {
    /// Total concurrency including the submitting thread.
    threads: usize,
    shared: Mutex<Shared>,
    /// Workers park here between jobs.
    job_cv: Condvar,
    /// Submitters park here waiting for stragglers to finish.
    done_cv: Condvar,
}

thread_local! {
    /// Set inside pool worker threads (and while a submitter executes a
    /// task) so nested parallel calls degrade to inline-serial instead
    /// of deadlocking on the single job slot.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Configured thread count: `LSI_NUM_THREADS` if set (values < 1 are
/// treated as 1), else `available_parallelism()`. Read exactly once —
/// the old shim re-queried `available_parallelism()` on every parallel
/// call, which is a syscall on Linux.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        match std::env::var("LSI_NUM_THREADS") {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
            Err(_) => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    })
}

/// The global pool, built on first parallel call. `None` when the
/// configuration is single-threaded (everything runs inline).
fn global() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = num_threads();
        if threads <= 1 {
            return None;
        }
        let pool = Pool {
            threads,
            shared: Mutex::new(Shared { job: None }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
        };
        Some(pool)
    })
    .as_ref()
    .inspect(|pool| spawn_workers(pool))
}

/// Spawn the worker threads exactly once (separate from pool
/// construction because workers need the `'static` pool reference).
fn spawn_workers(pool: &'static Pool) {
    static SPAWNED: OnceLock<()> = OnceLock::new();
    SPAWNED.get_or_init(|| {
        for i in 0..pool.threads - 1 {
            std::thread::Builder::new()
                .name(format!("lsi-pool-worker-{i}"))
                .spawn(move || worker_loop(pool, i))
                .expect("spawning pool worker");
        }
        lsi_obs::gauge_set("pool.threads", pool.threads as f64);
    });
}

/// Worker body: park until a job with unclaimed tasks is registered,
/// register as active, drain chunks, deregister, repeat forever. The
/// threads are never joined — the pool lives for the process.
fn worker_loop(pool: &'static Pool, idx: usize) {
    // Name this worker's lane in Chrome-trace exports so parallel
    // kernels show up on real worker threads, not the submitter.
    lsi_obs::register_thread(&format!("pool.worker.{idx}"));
    IN_POOL_TASK.with(|f| f.set(true));
    loop {
        let job_ptr = {
            let mut shared = pool.shared.lock().expect("pool mutex");
            loop {
                if let Some(ptr) = shared.job {
                    // SAFETY: registered jobs are live (module docs).
                    let job = unsafe { &*ptr };
                    if job.next.load(Ordering::Relaxed) < job.len {
                        // Register *under the mutex* so the submitter
                        // cannot observe `active == 0` and free the job
                        // while we hold the pointer.
                        job.active.fetch_add(1, Ordering::Relaxed);
                        break ptr;
                    }
                }
                shared = pool.job_cv.wait(shared).expect("pool mutex");
            }
        };
        // SAFETY: `active` registration keeps the job alive.
        let job = unsafe { &*job_ptr };
        let stolen = run_chunks(job);
        lsi_obs::count("pool.steals.count", stolen);
        // Deregister under the mutex (pairs with the submitter's wait).
        let _shared = pool.shared.lock().expect("pool mutex");
        if job.active.fetch_sub(1, Ordering::Relaxed) == 1 {
            pool.done_cv.notify_all();
        }
    }
}

/// Claim and execute chunks of `job` until the queue is empty or the
/// job is poisoned. Returns the number of chunks executed.
///
/// A panic inside the closure is *captured*, not propagated and not
/// fatal: the job lives on the submitter's stack, and unwinding past
/// the registration protocol would leave other participants holding a
/// dangling pointer — so each participant unwinds only to this frame,
/// records the payload on the job, and keeps following the protocol
/// (deregister, park). The submitter re-throws the payload after the
/// drain, so the panic surfaces on the thread that asked for the work
/// and the pool stays healthy for the next job.
fn run_chunks(job: &Job) -> u64 {
    // SAFETY: the submitter keeps the closure alive until `active`
    // drops to zero and every participant has deregistered, so the
    // erased pointer cannot dangle while any worker is inside here.
    let f = unsafe { &*job.f };
    let mut chunks = 0u64;
    loop {
        // Acquire pairs with the Release store below so a worker that
        // sees the poison flag also sees the recorded panic payload.
        if job.poisoned.load(Ordering::Acquire) {
            // Another chunk already failed; the job's results will be
            // discarded, so claiming more work only burns CPU.
            break;
        }
        let lo = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if lo >= job.len {
            break;
        }
        let hi = (lo + job.chunk).min(job.len);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if lsi_fault::eval(lsi_fault::points::POOL_TASK).is_some() {
                // `return-err`/`inject-nan` have no meaning for a
                // type-erased task; escalate to the panic path so a
                // forced fault is never a silent no-op.
                panic!("lsi-fault: forced failure at failpoint `pool.task`");
            }
            // One B/E trace event per chunk on the executing thread's
            // lane (guard closes even if `f` unwinds — the event pair
            // stays balanced because catch_unwind runs this drop).
            let _task = job
                .label
                .as_deref()
                .map(|label| lsi_obs::trace_task(label, lo, hi));
            f(lo, hi)
        }));
        if let Err(payload) = result {
            let mut slot = job
                .panic
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            // Release publishes the payload recorded above to any
            // worker that Acquire-loads the poison flag.
            job.poisoned.store(true, Ordering::Release);
            lsi_obs::count("pool.task_panics.count", 1);
            break;
        }
        chunks += 1;
    }
    chunks
}

/// Run `f(lo, hi)` over disjoint spans covering `0..len`, on the pool
/// when it is available and idle, inline otherwise. Every task index in
/// `0..len` is passed to exactly one invocation of `f`, in ascending
/// order within each span — callers rely on this for bit-determinism.
pub(crate) fn parallel_for<F: Fn(usize, usize) + Sync>(len: usize, f: F) {
    let Some(pool) = global() else {
        serial_task(len, &f);
        return;
    };
    if len <= 1 || IN_POOL_TASK.with(|flag| flag.get()) {
        // Single task, or already inside a pool task: inline. (The
        // latter also avoids deadlocking on the single job slot.)
        lsi_obs::count("pool.serial_inline.count", 1);
        serial_task(len, &f);
        return;
    }
    let obs = lsi_obs::enabled();
    let t_submit = if obs { Some(Instant::now()) } else { None };
    let chunk = len.div_ceil(pool.threads * CHUNKS_PER_THREAD).max(1);
    // SAFETY: this frame unregisters the job and drains `active`
    // before returning, so `f` outlives every dereference.
    let job = Job::new(
        unsafe { erase(&f) },
        len,
        chunk,
        lsi_obs::trace_task_label(),
    );
    {
        let mut shared = pool.shared.lock().expect("pool mutex");
        if shared.job.is_some() {
            // Another submitter owns the slot; don't queue behind it —
            // doing the work serially right now is both simpler and
            // usually faster than waiting for an unrelated job.
            drop(shared);
            lsi_obs::count("pool.serial_inline.count", 1);
            serial_task(len, &f);
            return;
        }
        shared.job = Some(&job as *const Job);
        pool.job_cv.notify_all();
    }
    if let Some(t0) = t_submit {
        // Time from entry to "workers can start": the dispatch cost a
        // caller pays over running serially (histogram in µs).
        lsi_obs::observe("pool.dispatch.us", t0.elapsed().as_secs_f64() * 1e6);
    }
    // The submitter is a participant too — it claims chunks like any
    // thief, so a job never waits on a descheduled worker to start.
    IN_POOL_TASK.with(|flag| flag.set(true));
    let chunks = run_chunks(&job);
    IN_POOL_TASK.with(|flag| flag.set(false));
    // Unregister: after this block no worker can newly reach the job,
    // and `active == 0` means none still does.
    {
        let mut shared = pool.shared.lock().expect("pool mutex");
        shared.job = None;
        // Relaxed suffices: the mutex/condvar pair already orders the
        // decrement against this wait loop; the load is only a hint.
        while job.active.load(Ordering::Relaxed) > 0 {
            shared = pool.done_cv.wait(shared).expect("pool mutex");
        }
    }
    if obs {
        lsi_obs::count("pool.jobs.count", 1);
        lsi_obs::count("pool.tasks.count", chunks);
        lsi_obs::gauge_set("pool.last_job.tasks", len as f64);
        if let Some(t0) = t_submit {
            lsi_obs::observe("pool.job.us", t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    // Re-throw any captured task panic *after* the protocol above has
    // fully unregistered and drained the job: the pool is already
    // healthy again, and the panic surfaces on the submitting thread
    // exactly as if the closure had been run inline.
    if let Some(payload) = job.take_panic() {
        std::panic::resume_unwind(payload);
    }
}

/// Inline execution used whenever the pool is absent, nested, or busy.
/// Evaluates the `pool.task` failpoint first so fault coverage does not
/// depend on a pool actually being configured (`LSI_NUM_THREADS=1` runs
/// exercise the same injection site); a forced panic propagates on the
/// caller, matching the pooled re-throw semantics.
fn serial_task(len: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    if lsi_fault::eval(lsi_fault::points::POOL_TASK).is_some() {
        panic!("lsi-fault: forced failure at failpoint `pool.task`");
    }
    f(0, len);
}

/// Run `a` on the caller and `b` on a pool worker when one is
/// available, returning both results. Publishes the `b` job *before*
/// running `a`, so the two closures genuinely overlap; falls back to
/// serial `(a(), b())` when the pool is absent, nested, or busy.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = match global() {
        Some(pool) if !IN_POOL_TASK.with(|flag| flag.get()) => pool,
        _ => return (a(), b()),
    };
    // Type-erase the FnOnce through a take-once slot: the single task
    // of the job runs `b`, claimed by whichever participant gets there
    // first (a parked worker, or the caller after `a` finishes).
    let b_slot = Mutex::new(Some(b));
    let rb_slot: Mutex<Option<RB>> = Mutex::new(None);
    let run_b = |_lo: usize, _hi: usize| {
        if let Some(b) = b_slot.lock().expect("join slot").take() {
            *rb_slot.lock().expect("join result") = Some(b());
        }
    };
    // SAFETY: drained and unregistered before this frame returns.
    let job = Job::new(unsafe { erase(&run_b) }, 1, 1, lsi_obs::trace_task_label());
    let published = {
        let mut shared = pool.shared.lock().expect("pool mutex");
        if shared.job.is_some() {
            false
        } else {
            shared.job = Some(&job as *const Job);
            pool.job_cv.notify_one();
            true
        }
    };
    if !published {
        lsi_obs::count("pool.serial_inline.count", 1);
        let ra = a();
        let b = b_slot
            .into_inner()
            .expect("join slot mutex")
            .expect("b not yet taken");
        return (ra, b());
    }
    // Run `a` under catch_unwind: the registered job must be drained
    // and unregistered before this frame may unwind.
    let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
    // Help out: if no worker claimed `b` yet, the caller runs it now.
    run_chunks(&job);
    {
        let mut shared = pool.shared.lock().expect("pool mutex");
        shared.job = None;
        // Relaxed suffices: the mutex/condvar pair already orders the
        // decrement against this wait loop; the load is only a hint.
        while job.active.load(Ordering::Relaxed) > 0 {
            shared = pool.done_cv.wait(shared).expect("pool mutex");
        }
    }
    // Both sides are drained; re-throw `a`'s panic first (it ran on
    // this thread), then `b`'s captured payload — the pool itself is
    // already serviceable again either way.
    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    if let Some(payload) = job.take_panic() {
        std::panic::resume_unwind(payload);
    }
    let rb = rb_slot
        .into_inner()
        .expect("join result mutex")
        .expect("b executed");
    (ra, rb)
}
