//! Offline stand-in for the `rayon` crate, built on a persistent
//! work-stealing thread pool.
//!
//! Implements the small slice of rayon's API this workspace uses —
//! `par_iter_mut`, `par_chunks_mut`, `into_par_iter` on ranges, `join`,
//! and the `map / enumerate / for_each / collect` adaptors — on top of
//! [`pool`]: a lazily-initialized global pool whose workers park on a
//! condvar between jobs and claim chunks of each job's task range by
//! atomic stealing. Dispatching a parallel call costs on the order of
//! a few microseconds (vs ~1.7 ms for the scoped spawn-per-call shim
//! this replaces), so callers can parallelize far smaller kernels; see
//! DESIGN.md §3c for the threading model and the measured thresholds.
//!
//! `LSI_NUM_THREADS` caps the pool (read once at first use);
//! `LSI_NUM_THREADS=1` disables it entirely — every entry point then
//! runs inline on the caller, which is the fully deterministic serial
//! mode. All adaptors assign each output element to exactly one task,
//! so results are bit-identical across thread counts anyway.

pub mod pool;

/// Total configured concurrency (including the calling thread):
/// `LSI_NUM_THREADS` if set, else the machine's available parallelism,
/// cached in a `OnceLock` on first use.
pub fn current_num_threads() -> usize {
    pool::num_threads()
}

/// Run `f(span_start, span_end)` for disjoint spans covering `0..len`
/// on the persistent pool (each claimed chunk is one span). Falls back
/// to one inline `f(0, len)` when the pool is unavailable, the job is
/// trivial, or the call is nested inside another parallel call.
fn par_spans<F: Fn(usize, usize) + Sync>(len: usize, f: F) {
    pool::parallel_for(len, f);
}

/// Entry points that mirror `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelSliceMut, ParallelSliceRef, ParallelVecMut,
    };
}

// ---------------------------------------------------------------------
// par_iter_mut / par_iter over slices and vectors
// ---------------------------------------------------------------------

/// `par_iter_mut()` provider for `Vec<T>` (upstream: `IntoParallelRefMutIterator`).
pub trait ParallelVecMut<T> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelVecMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be nonzero");
        ParChunksMut { data: self, size }
    }
}

/// `par_iter` over shared slices.
pub trait ParallelSliceRef<T> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSliceRef<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

impl<T: Sync> ParallelSliceRef<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { data: self.data }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, v)| f(v));
    }
}

/// Enumerated parallel iterator over `(usize, &mut T)`.
pub struct EnumerateMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Apply `f` to every `(index, item)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let len = self.data.len();
        let base = self.data.as_mut_ptr() as usize;
        par_spans(len, |start, end| {
            // SAFETY: spans are disjoint, so the aliasing is sound;
            // going through a raw pointer sidesteps scoped-borrow
            // splitting plumbing.
            let ptr = base as *mut T;
            for i in start..end {
                f((i, unsafe { &mut *ptr.add(i) }));
            }
        });
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> EnumerateRef<'a, T> {
        EnumerateRef { data: self.data }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F: Fn(&T) + Sync>(self, f: F) {
        let data = self.data;
        par_spans(data.len(), |start, end| {
            for v in &data[start..end] {
                f(v);
            }
        });
    }

}

/// Enumerated parallel iterator over `(usize, &T)`.
pub struct EnumerateRef<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> EnumerateRef<'a, T> {
    /// Apply `f` to every `(index, item)` pair in parallel.
    pub fn for_each<F: Fn((usize, &T)) + Sync>(self, f: F) {
        let data = self.data;
        par_spans(data.len(), |start, end| {
            for (i, v) in data[start..end].iter().enumerate() {
                f((start + i, v));
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            data: self.data,
            size: self.size,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel iterator over `(usize, &mut [T])` chunks.
pub struct EnumerateChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let len = self.data.len();
        let size = self.size;
        let n_chunks = len.div_ceil(size.max(1));
        let base = self.data.as_mut_ptr() as usize;
        par_spans(n_chunks, |start, end| {
            let ptr = base as *mut T;
            for c in start..end {
                let lo = c * size;
                let hi = (lo + size).min(len);
                // SAFETY: chunks are disjoint across the whole index
                // space, so each slice is uniquely borrowed.
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.add(lo), hi - lo) };
                f((c, chunk));
            }
        });
    }
}

// ---------------------------------------------------------------------
// into_par_iter over ranges
// ---------------------------------------------------------------------

/// Conversion into a parallel iterator (upstream: `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

impl<T: Send + 'static> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { data: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    /// Map each index and keep ordering.
    pub fn map<U, F: Fn(usize) -> U + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            start: self.start,
            end: self.end,
            f,
        }
    }

    /// Apply `f` to every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let offset = self.start;
        par_spans(self.end.saturating_sub(self.start), |lo, hi| {
            for i in lo..hi {
                f(offset + i);
            }
        });
    }
}

/// Mapped parallel range iterator.
pub struct ParRangeMap<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Evaluate in parallel, preserving index order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        C: FromOrderedVec<U>,
    {
        let len = self.end.saturating_sub(self.start);
        let mut out: Vec<Option<U>> = Vec::with_capacity(len);
        out.resize_with(len, || None);
        let offset = self.start;
        let base = out.as_mut_ptr() as usize;
        let f = &self.f;
        par_spans(len, |lo, hi| {
            let ptr = base as *mut Option<U>;
            for i in lo..hi {
                // SAFETY: disjoint spans — each index is written
                // exactly once, never read concurrently.
                unsafe { ptr.add(i).write(Some(f(offset + i))) };
            }
        });
        C::from_ordered_vec(out.into_iter().map(|v| v.expect("all slots filled")).collect())
    }
}

/// Parallel iterator over an owned vector.
pub struct ParVec<T> {
    data: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Map each element and keep ordering.
    pub fn map<U, F: Fn(T) -> U + Sync>(self, f: F) -> ParVecMap<T, F> {
        ParVecMap { data: self.data, f }
    }
}

/// Mapped parallel vector iterator.
pub struct ParVecMap<T, F> {
    data: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Evaluate in parallel, preserving order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromOrderedVec<U>,
    {
        let mut slots: Vec<Option<U>> = Vec::with_capacity(self.data.len());
        slots.resize_with(self.data.len(), || None);
        let inputs: Vec<Option<T>> = self.data.into_iter().map(Some).collect();
        let in_base = inputs.as_ptr() as usize;
        let out_base = slots.as_mut_ptr() as usize;
        let f = &self.f;
        par_spans(inputs.len(), |lo, hi| {
            let ip = in_base as *mut Option<T>;
            let op = out_base as *mut Option<U>;
            for i in lo..hi {
                // SAFETY: spans are disjoint, so slot `i` of both the
                // input and output vectors is touched by exactly one
                // worker; `take` moves the value out without dropping
                // the (still-live) backing allocation.
                let v = unsafe { (*ip.add(i)).take().expect("input present") };
                unsafe { op.add(i).write(Some(f(v))) };
            }
        });
        drop(inputs);
        C::from_ordered_vec(slots.into_iter().map(|v| v.expect("all slots filled")).collect())
    }
}

/// Collection targets for ordered parallel collects.
pub trait FromOrderedVec<T> {
    /// Build from an in-order vector of results.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromOrderedVec<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Run two closures, potentially in parallel, returning both results.
/// `b` is published to the pool before `a` runs on the caller, so the
/// closures overlap whenever a worker is idle.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![0usize; 1000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks_in_order() {
        let mut v = vec![0usize; 103];
        v.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(c, chunk)| {
                for x in chunk.iter_mut() {
                    *x = c;
                }
            });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 10);
        }
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (5..205).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 200);
        for (j, v) in out.iter().enumerate() {
            assert_eq!(*v, (j + 5) * (j + 5));
        }
    }

    #[test]
    fn for_each_runs_once_per_index() {
        let count = AtomicUsize::new(0);
        (0..577usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 577);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().for_each(|_| unreachable!());
        let out: Vec<usize> = (3..3).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallel_calls_run_inline_and_correctly() {
        // A parallel call issued from inside a pool task must degrade
        // to inline-serial (single job slot), not deadlock.
        let mut v = vec![0usize; 64];
        v.par_iter_mut().enumerate().for_each(|(i, x)| {
            let inner: Vec<usize> = (0..8usize).into_par_iter().map(|j| i + j).collect();
            *x = inner.iter().sum();
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, 8 * i + 28);
        }
    }

    #[test]
    fn results_are_bit_identical_across_repeats() {
        // Chunk claiming order varies run to run; outputs must not.
        let compute = || -> Vec<f64> {
            (0..4096usize)
                .into_par_iter()
                .map(|i| {
                    let x = (i as f64) * 0.001 + 1.0;
                    x.sin() * x.sqrt() + 1.0 / x
                })
                .collect()
        };
        let first = compute();
        for _ in 0..5 {
            assert_eq!(first, compute());
        }
    }

    #[test]
    fn pool_survives_hammering_from_many_threads() {
        // Concurrent submitters contend for the single job slot; losers
        // run inline. Every combination must produce correct results.
        let hammers = 8;
        let rounds = 50;
        std::thread::scope(|scope| {
            for t in 0..hammers {
                scope.spawn(move || {
                    for r in 0..rounds {
                        let n = 100 + (t * 37 + r * 13) % 400;
                        let mut v = vec![0usize; n];
                        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * t);
                        for (i, x) in v.iter().enumerate() {
                            assert_eq!(*x, i * t);
                        }
                        let sq: Vec<usize> =
                            (0..n).into_par_iter().map(|i| i * i).collect();
                        for (i, s) in sq.iter().enumerate() {
                            assert_eq!(*s, i * i);
                        }
                        let count = AtomicUsize::new(0);
                        (0..n).into_par_iter().for_each(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(count.load(Ordering::Relaxed), n);
                    }
                });
            }
        });
    }

    #[test]
    fn panic_in_one_task_propagates_and_pool_recovers() {
        // The panic-policy stress test: 1 of N tasks panics. The job
        // must fail with the original payload on the submitting thread
        // (no abort), and the pool must serve subsequent jobs as if
        // nothing happened.
        for round in 0..10 {
            let err = std::panic::catch_unwind(|| {
                (0..512usize).into_par_iter().for_each(|i| {
                    if i == 313 {
                        panic!("task {i} failed on purpose");
                    }
                });
            })
            .expect_err("the poisoned job must fail");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("313"), "wrong payload: {msg}");
            // The very next job runs to completion with correct results.
            let n = 200 + round * 31;
            let sq: Vec<usize> = (0..n).into_par_iter().map(|i| i * i).collect();
            assert_eq!(sq.len(), n);
            for (i, s) in sq.iter().enumerate() {
                assert_eq!(*s, i * i);
            }
        }
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let err = std::panic::catch_unwind(|| {
            super::join(|| 1usize, || -> usize { panic!("side b failed") })
        })
        .expect_err("b's panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("side b"), "wrong payload: {msg}");
        let err = std::panic::catch_unwind(|| {
            super::join(|| -> usize { panic!("side a failed") }, || 2usize)
        })
        .expect_err("a's panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("side a"), "wrong payload: {msg}");
        // And join still works afterwards.
        let (a, b) = super::join(|| 6 * 7, || "fine");
        assert_eq!((a, b), (42, "fine"));
    }

    #[test]
    fn join_overlaps_and_returns_both_results() {
        // Repeated joins with work on both sides: exercises the
        // publish-before-a ordering and the caller-helps drain.
        for i in 0..100usize {
            let (a, b) = super::join(
                || (0..i).map(|j| j * 2).sum::<usize>(),
                || (0..i).map(|j| j * 3).sum::<usize>(),
            );
            let tri = i.saturating_sub(1) * i / 2;
            assert_eq!(a, 2 * tri);
            assert_eq!(b, 3 * tri);
        }
    }

    /// Measurement harness behind the workspace's parallel thresholds
    /// (`GEMM_PAR_MIN_FLOPS`, SpMV min-nnz, panel min-work):
    /// `cargo test -p rayon --release -- --ignored --nocapture dispatch`
    /// prints the pooled dispatch cost and the old scoped-spawn cost.
    #[test]
    #[ignore = "prints timings; run with --ignored --nocapture"]
    fn measure_dispatch_latency() {
        use std::time::Instant;
        // Warm the pool (first call spawns workers).
        (0..64usize).into_par_iter().for_each(|_| {});
        let reps = 2000;
        let n = super::current_num_threads() * 4;
        let t0 = Instant::now();
        for _ in 0..reps {
            (0..n).into_par_iter().for_each(|_| {});
        }
        let pool_us = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;
        let spawn_reps = 50;
        let t0 = Instant::now();
        for _ in 0..spawn_reps {
            std::thread::scope(|s| {
                s.spawn(|| {});
            });
        }
        let spawn_us = t0.elapsed().as_secs_f64() / spawn_reps as f64 * 1e6;
        println!(
            "pool dispatch: {pool_us:.1} us   scoped spawn: {spawn_us:.1} us   threads: {}",
            super::current_num_threads()
        );
    }

    #[test]
    fn num_threads_is_cached_and_positive() {
        let n = super::current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, super::current_num_threads());
    }
}
