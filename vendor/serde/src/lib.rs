//! Offline, dependency-free stand-in for the `serde` crate.
//!
//! Instead of upstream's zero-copy visitor machinery, this vendored
//! version serializes through an owned [`Value`] tree: `Serialize`
//! lowers a type to a `Value`, `Deserialize` lifts it back. That is
//! ample for this workspace, which (de)serializes modest model structs
//! to JSON for persistence, and it keeps the whole framework small
//! enough to audit at a glance.
//!
//! The derive macros (behind the `derive` feature, as upstream) support
//! exactly the shapes this workspace uses: structs with named fields
//! and enums of unit variants.

use std::collections::HashMap;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values land here).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (struct fields, hash maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Convert to the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the serialization tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helpers the derive macros call into.
pub mod de {
    pub use super::Error;
    use super::{Deserialize, Value};

    /// Extract and deserialize struct field `key` from `map`.
    pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
        let v = map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))?;
        T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::expected("2-element sequence", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        m.insert("b".to_string(), 2usize);
        assert_eq!(HashMap::<String, usize>::from_value(&m.to_value()).unwrap(), m);

        let arc: Arc<str> = Arc::from("doc-1");
        assert_eq!(&*Arc::<str>::from_value(&arc.to_value()).unwrap(), "doc-1");
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Bool(true)).is_err());
        let map = [("a".to_string(), Value::UInt(1))];
        assert!(de::field::<u64>(&map, "missing").is_err());
        assert_eq!(de::field::<u64>(&map, "a").unwrap(), 1);
    }
}
