//! Property tests: the iterative SVD drivers agree with the dense oracle
//! on arbitrary sparse matrices.

use lsi_svd::{dense_oracle, lanczos_svd, randomized_svd, LanczosOptions, RandomizedOptions};
use lsi_sparse::CooMatrix;
use proptest::prelude::*;

fn coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (3usize..14, 3usize..14)
        .prop_flat_map(|(m, n)| {
            let triplet = (0..m, 0..n, 1.0f64..5.0);
            (Just(m), Just(n), prop::collection::vec(triplet, 1..60))
        })
        .prop_map(|(m, n, trips)| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in trips {
                coo.push(r, c, v).unwrap();
            }
            coo
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lanczos_singular_values_match_oracle(coo in coo_strategy(), kfrac in 1usize..4) {
        let a = coo.to_csc();
        let maxk = a.nrows().min(a.ncols());
        let k = (maxk / kfrac).max(1);
        let (svd, _) = lanczos_svd(&a, k, &LanczosOptions::default()).unwrap();
        let oracle = dense_oracle(&a, k).unwrap();
        let scale = oracle.s.first().copied().unwrap_or(1.0).max(1.0);
        for (i, got) in svd.s.iter().enumerate() {
            prop_assert!((got - oracle.s[i]).abs() < 1e-7 * scale,
                "sigma_{}: {} vs {}", i, got, oracle.s[i]);
        }
        // Accepted count never exceeds the oracle's numerical rank. The
        // Lanczos driver cannot resolve singular values below
        // ~sqrt(eps)*sigma_1 (Gram squaring), so compare at 1e-5.
        let oracle_rank = oracle.s.iter().filter(|&&s| s > 1e-5 * scale).count();
        prop_assert!(svd.s.len() <= k);
        prop_assert!(svd.s.len() >= oracle_rank.min(k).saturating_sub(0));
    }

    #[test]
    fn lanczos_triplet_residuals_are_small(coo in coo_strategy()) {
        let a = coo.to_csc();
        let k = (a.nrows().min(a.ncols()) / 2).max(1);
        let (svd, _) = lanczos_svd(&a, k, &LanczosOptions::default()).unwrap();
        let dense = a.to_dense();
        let scale = svd.s.first().copied().unwrap_or(1.0).max(1.0);
        for i in 0..svd.s.len() {
            let av = lsi_linalg::ops::matvec(&dense, svd.v.col(i)).unwrap();
            let resid: f64 = av.iter().zip(svd.u.col(i).iter())
                .map(|(x, y)| (x - svd.s[i] * y).powi(2)).sum::<f64>().sqrt();
            prop_assert!(resid < 1e-7 * scale, "triplet {} residual {}", i, resid);
            let atu = lsi_linalg::ops::matvec_t(&dense, svd.u.col(i)).unwrap();
            let resid_t: f64 = atu.iter().zip(svd.v.col(i).iter())
                .map(|(x, y)| (x - svd.s[i] * y).powi(2)).sum::<f64>().sqrt();
            prop_assert!(resid_t < 1e-6 * scale, "triplet {} transposed residual {}", i, resid_t);
        }
    }

    #[test]
    fn randomized_with_power_iters_tracks_oracle(coo in coo_strategy()) {
        let a = coo.to_csc();
        let k = 2.min(a.nrows().min(a.ncols()));
        let opts = RandomizedOptions { power_iters: 4, ..Default::default() };
        let svd = randomized_svd(&a, k, &opts).unwrap();
        let oracle = dense_oracle(&a, k).unwrap();
        let scale = oracle.s.first().copied().unwrap_or(1.0).max(1.0);
        for (got, want) in svd.s.iter().zip(oracle.s.iter()) {
            prop_assert!((got - want).abs() < 0.02 * scale, "{} vs {}", got, want);
        }
    }
}
