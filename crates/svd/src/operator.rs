//! Gram-operator plumbing for the Lanczos driver.
//!
//! The Lanczos iteration tridiagonalizes the symmetric operator
//! `G = AᵀA` (or `AAᵀ`, whichever is smaller). [`GramSide`] picks the
//! orientation; [`CountingOperator`] wraps any [`MatVec`] and counts
//! products and flops so benchmarks can report the paper's §4.2 cost
//! terms directly.

use std::sync::atomic::{AtomicU64, Ordering};

use lsi_sparse::MatVec;

/// Which Gram operator the Lanczos iteration runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GramSide {
    /// `AᵀA` (dimension `ncols`): right singular vectors come out of the
    /// Lanczos basis, left vectors via `u = A v / σ`.
    AtA,
    /// `AAᵀ` (dimension `nrows`): the mirror image.
    AAt,
}

impl GramSide {
    /// The cheaper orientation for the given shape: run on the smaller
    /// Gram matrix.
    pub fn auto(nrows: usize, ncols: usize) -> GramSide {
        if ncols <= nrows {
            GramSide::AtA
        } else {
            GramSide::AAt
        }
    }

    /// Dimension of the chosen Gram operator.
    pub fn dim(self, nrows: usize, ncols: usize) -> usize {
        match self {
            GramSide::AtA => ncols,
            GramSide::AAt => nrows,
        }
    }
}

/// A [`MatVec`] wrapper that counts forward/transposed applications and
/// the flops they imply (2 flops per stored nonzero per product).
pub struct CountingOperator<'a, M: MatVec + ?Sized> {
    inner: &'a M,
    applies: AtomicU64,
    applies_t: AtomicU64,
}

impl<'a, M: MatVec + ?Sized> CountingOperator<'a, M> {
    /// Wrap `inner`.
    pub fn new(inner: &'a M) -> Self {
        CountingOperator {
            inner,
            applies: AtomicU64::new(0),
            applies_t: AtomicU64::new(0),
        }
    }

    /// Number of `A·x` products performed so far.
    pub fn apply_count(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }

    /// Number of `Aᵀ·x` products performed so far.
    pub fn apply_t_count(&self) -> u64 {
        self.applies_t.load(Ordering::Relaxed)
    }

    /// Estimated flops spent in sparse products:
    /// `2 · nnz · (applies + applies_t)`.
    pub fn flops(&self) -> u64 {
        2 * self.inner.nnz() as u64 * (self.apply_count() + self.apply_t_count())
    }
}

impl<'a, M: MatVec + ?Sized> MatVec for CountingOperator<'a, M> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply(x, y);
    }

    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        self.applies_t.fetch_add(1, Ordering::Relaxed);
        self.inner.apply_t(x, y);
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }
}

/// Apply the Gram operator `G x` for the chosen side, using `scratch`
/// (length `max(m, n)`) to avoid allocation in the hot loop.
pub fn gram_apply<M: MatVec + ?Sized>(
    a: &M,
    side: GramSide,
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) {
    match side {
        GramSide::AtA => {
            let mid = &mut scratch[..a.nrows()];
            a.apply(x, mid);
            a.apply_t(mid, y);
        }
        GramSide::AAt => {
            let mid = &mut scratch[..a.ncols()];
            a.apply_t(x, mid);
            a.apply(mid, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_sparse::CooMatrix;

    fn sample() -> lsi_sparse::CscMatrix {
        let mut coo = CooMatrix::new(3, 2);
        for (r, c, v) in [(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn auto_side_picks_smaller_dimension() {
        assert_eq!(GramSide::auto(10, 3), GramSide::AtA);
        assert_eq!(GramSide::auto(3, 10), GramSide::AAt);
        assert_eq!(GramSide::auto(5, 5), GramSide::AtA);
        assert_eq!(GramSide::AtA.dim(10, 3), 3);
        assert_eq!(GramSide::AAt.dim(10, 3), 10);
    }

    #[test]
    fn counting_operator_counts() {
        let a = sample();
        let counter = CountingOperator::new(&a);
        let mut y = vec![0.0; 3];
        counter.apply(&[1.0, 1.0], &mut y);
        counter.apply(&[0.0, 1.0], &mut y);
        let mut z = vec![0.0; 2];
        counter.apply_t(&[1.0, 0.0, 0.0], &mut z);
        assert_eq!(counter.apply_count(), 2);
        assert_eq!(counter.apply_t_count(), 1);
        assert_eq!(counter.flops(), 2 * 3 * 3);
    }

    #[test]
    fn gram_apply_ata_matches_explicit() {
        let a = sample();
        // A^T A = [[5, 0], [0, 9]].
        let mut y = vec![0.0; 2];
        let mut scratch = vec![0.0; 3];
        gram_apply(&a, GramSide::AtA, &[1.0, 1.0], &mut y, &mut scratch);
        assert_eq!(y, vec![5.0, 9.0]);
    }

    #[test]
    fn gram_apply_aat_matches_explicit() {
        let a = sample();
        // A A^T = [[1,2,0],[2,4,0],[0,0,9]].
        let mut y = vec![0.0; 3];
        let mut scratch = vec![0.0; 3];
        gram_apply(&a, GramSide::AAt, &[1.0, 0.0, 1.0], &mut y, &mut scratch);
        assert_eq!(y, vec![1.0, 2.0, 9.0]);
    }
}
