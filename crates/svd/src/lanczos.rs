//! Single-vector Lanczos truncated SVD with full reorthogonalization.
//!
//! This follows the structure the paper assumes for its §4.2 cost model
//! (and that SVDPACKC's `las2` implements): tridiagonalize the Gram
//! operator `G` with `I` Lanczos iterations, solve the small symmetric
//! tridiagonal eigenproblem, and extract each accepted triplet's other
//! singular vector with one extra sparse product (`u = A v / σ`).
//!
//! Full reorthogonalization (two-pass classical Gram–Schmidt against
//! the whole basis per step, run on blocked panel kernels — `y = Qᵀw`
//! then `w -= Q y`) is used instead of `las2`'s selective scheme: at
//! the scales exercised here the `O(I² · dim)` cost is small next to
//! the sparse products, and it eliminates spurious duplicate Ritz
//! values entirely. The ablation benchmark
//! `lsi-bench/benches/lanczos_scale.rs` quantifies that trade-off.
//! Ritz vectors are assembled with one blocked GEMM (`Y = Q S`), and
//! the report carries per-phase flop and wall-time accounting.
//!
//! Every hot phase runs on the persistent thread pool once the problem
//! crosses the calibrated thresholds: the Gram products use the
//! nnz-balanced sparse matvecs (`lsi-sparse`), the reorthogonalization
//! sweeps ride the parallel panel kernels (`lsi-linalg::gemm`), and
//! the Ritz GEMM splits output columns. All of them are element-
//! deterministic, so results are bit-identical for any
//! `LSI_NUM_THREADS` setting.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_linalg::ops::matmul;
use lsi_linalg::qr::{orthogonalize_against, orthogonalize_against_robust};
use lsi_linalg::svd::Svd;
use lsi_linalg::tridiag::{tridiag_eigen, tridiag_eigen_last_row, SymTridiag};
use lsi_linalg::{vecops, DenseMatrix};
use lsi_sparse::MatVec;

use crate::operator::{gram_apply, GramSide};
use crate::{Error, Result};

/// Reorthogonalization policy for the Lanczos basis.
///
/// In exact arithmetic the three-term recurrence keeps the basis
/// orthogonal by itself; in floating point it famously does not
/// (spurious duplicate Ritz values appear as soon as a triplet
/// converges). The strategies trade the `O(I² · dim)` cleanup cost
/// against that risk — `lsi-bench --bench lanczos` measures the
/// trade-off, and the duplicate-Ritz pathology of `ThreeTermOnly` is
/// demonstrated in this module's tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reorth {
    /// Two classical Gram–Schmidt panel passes against the whole basis
    /// each step (robust default; what SVDPACK calls full
    /// reorthogonalization).
    #[default]
    Full,
    /// Reorthogonalize only every `n`-th step (plus the recurrence's
    /// own two-term correction on other steps). Cheaper, usually
    /// adequate for well-separated spectra.
    Periodic(usize),
    /// The bare three-term recurrence. Fast and *unreliable* beyond a
    /// few dozen steps — present for the ablation, not for use.
    ThreeTermOnly,
}

/// Tuning knobs for [`lanczos_svd`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Lanczos basis size. `None` picks
    /// `min(dim, max(2k + 30, 4k))`, which comfortably brackets the
    /// usual "few iterations per wanted triplet" behaviour.
    pub max_steps: Option<usize>,
    /// Relative convergence tolerance on the Ritz residual bound
    /// (`|β_j s_last| ≤ tol · θ_max`).
    pub tol: f64,
    /// Seed for the random starting vector (the run is deterministic in
    /// this seed).
    pub seed: u64,
    /// How often (in steps) the tridiagonal eigenproblem is solved to
    /// test convergence.
    pub check_every: usize,
    /// Reorthogonalization policy.
    pub reorth: Reorth,
    /// Stagnation watchdog: abort with [`Error::Stalled`] after this
    /// many consecutive convergence checks in which the count of
    /// converged triplets never reached a new maximum. `None` (the
    /// default) disables the watchdog and preserves the historical
    /// accept-what-we-have behaviour; [`crate::robust_svd`] arms it so
    /// a wedged iteration falls through to the next rung of the
    /// fallback ladder instead of burning the full basis budget.
    pub stall_after: Option<usize>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_steps: None,
            tol: 1e-12,
            seed: 0x5EED,
            check_every: 8,
            reorth: Reorth::Full,
            stall_after: None,
        }
    }
}

/// Which rung of the staged SVD ladder produced the result (see
/// [`crate::robust_svd`]). Plain [`lanczos_svd`] always reports
/// [`Fallback::None`]; the robust driver upgrades the flag when the
/// Lanczos attempt failed and a lower rung served the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fallback {
    /// The Lanczos driver itself produced the decomposition.
    #[default]
    None,
    /// Lanczos failed; randomized subspace iteration served the request.
    Randomized,
    /// Both iterative drivers failed; the dense Jacobi oracle served it.
    Dense,
}

/// Flop and wall-clock accounting for one phase of the driver.
///
/// Since the observability refactor this is `lsi-obs`'s unified
/// [`PhaseStats`] (which adds call counts, byte accounting, and a
/// clamped [`PhaseStats::mflops`] that stays finite on sub-tick
/// phases); the re-export keeps the historical `lsi_svd::PhaseStats`
/// path working.
pub use lsi_obs::PhaseStats;

/// Execution report: the quantities of the paper's cost model, plus
/// per-phase flop/time accounting for the kernel work.
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosReport {
    /// Lanczos iterations performed — the `I` of §4.2's
    /// `I × cost(GᵀG x) + trp × cost(G x)`.
    pub steps: usize,
    /// Triplets that met the residual tolerance.
    pub converged: usize,
    /// Accepted triplets returned (`trp` in the cost model).
    pub accepted: usize,
    /// Invariant-subspace restarts performed.
    pub restarts: usize,
    /// Which Gram side was used.
    pub side_is_ata: bool,
    /// Sparse Gram-operator applies (`w = G q`, 4·nnz flops each).
    pub gram: PhaseStats,
    /// Reorthogonalization work: the CGS2 panel sweeps of every step,
    /// restart cleanups, and the other-side incremental cleanup.
    pub reorth: PhaseStats,
    /// Ritz-vector assembly (`Y = Q S`, one blocked GEMM) plus the
    /// other-side recovery products.
    pub ritz: PhaseStats,
    /// Which rung of the staged fallback ladder produced the result
    /// ([`Fallback::None`] unless [`crate::robust_svd`] degraded).
    pub fallback: Fallback,
}

/// Truncated SVD: the `k` largest singular triplets of `a`.
///
/// Returns the decomposition and a [`LanczosReport`]. If `a` has rank
/// `r < k`, only the `r` numerically nonzero triplets are returned (the
/// report's `accepted` reflects this).
pub fn lanczos_svd<M: MatVec + ?Sized>(
    a: &M,
    k: usize,
    opts: &LanczosOptions,
) -> Result<(Svd, LanczosReport)> {
    let _lanczos_span = lsi_obs::span("lanczos");
    let m = a.nrows();
    let n = a.ncols();
    let max_rank = m.min(n);
    if k > max_rank {
        return Err(Error::RankTooLarge {
            requested: k,
            max: max_rank,
        });
    }
    let side = GramSide::auto(m, n);
    let dim = side.dim(m, n);
    let report_empty = LanczosReport {
        steps: 0,
        converged: 0,
        accepted: 0,
        restarts: 0,
        side_is_ata: side == GramSide::AtA,
        gram: PhaseStats::default(),
        reorth: PhaseStats::default(),
        ritz: PhaseStats::default(),
        fallback: Fallback::None,
    };
    if k == 0 || dim == 0 {
        return Ok((
            Svd {
                u: DenseMatrix::zeros(m, 0),
                s: Vec::new(),
                v: DenseMatrix::zeros(n, 0),
            },
            report_empty,
        ));
    }

    let max_basis = opts
        .max_steps
        .unwrap_or_else(|| (2 * k + 30).max(4 * k))
        .min(dim)
        .max(k.min(dim));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut basis = DenseMatrix::zeros(dim, max_basis);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_basis);
    let mut betas: Vec<f64> = Vec::with_capacity(max_basis);
    let mut scratch = vec![0.0; m.max(n)];
    let mut w = vec![0.0; dim];
    let mut restarts = 0usize;

    // Random unit start vector.
    {
        let q0 = basis.col_mut(0);
        for v in q0.iter_mut() {
            *v = rng.random::<f64>() - 0.5;
        }
        vecops::normalize(q0);
    }

    let mut theta_max_est = 0.0f64;
    let mut steps = 0usize;
    let mut converged = 0usize;
    let mut gram_stats = PhaseStats::default();
    let mut reorth_stats = PhaseStats::default();
    let mut ritz_stats = PhaseStats::default();
    let gram_apply_flops = 4.0 * a.nnz() as f64;
    // One CGS2 sweep against `c` basis columns: two passes of
    // (y = Qᵀw, w -= Q y), each 4·c·dim flops.
    let cgs2_flops = |c: usize| 8.0 * c as f64 * dim as f64;

    // Stagnation watchdog state: checks since `converged` last reached
    // a new maximum (the ratchet ignores transient dips, which happen
    // when a new direction perturbs an almost-settled Ritz pair).
    let mut max_converged = 0usize;
    let mut checks_since_progress = 0usize;

    while steps < max_basis {
        let j = steps;
        // w = G q_j
        let inject_nan = match lsi_fault::eval(lsi_fault::points::SVD_LANCZOS_ITER) {
            Some(lsi_fault::Fired::ReturnErr) => {
                return Err(Error::Fault {
                    point: lsi_fault::points::SVD_LANCZOS_ITER,
                })
            }
            Some(lsi_fault::Fired::InjectNan) => true,
            None => false,
        };
        let t0 = Instant::now();
        gram_apply(a, side, basis.col(j), &mut w, &mut scratch);
        gram_stats.add(gram_apply_flops, t0.elapsed().as_secs_f64());
        if inject_nan {
            w[0] = f64::NAN;
        }
        // No debug_assert on `w` here: a non-finite Gram product is
        // *expected* hostile input (adversarial operator, injected
        // fault), handled by the checked alpha/beta guards below.
        let alpha = vecops::dot(basis.col(j), &w);
        // A single NaN/Inf escaping the operator poisons `alpha` (a dot
        // over all of `w`), so this one scalar check guards the whole
        // product without touching the hot loop's memory traffic.
        if !alpha.is_finite() {
            return Err(Error::NonFinite {
                what: "Lanczos diagonal alpha",
                step: j,
            });
        }
        alphas.push(alpha);
        theta_max_est = theta_max_est.max(alpha.abs());
        // Three-term recurrence then full reorthogonalization (the
        // reorthogonalization subsumes the recurrence's subtraction, but
        // doing the explicit subtraction first keeps the corrections
        // small and cheap). `w` is separate storage, so the basis
        // columns are borrowed in place — no copies.
        vecops::axpy(-alpha, basis.col(j), &mut w);
        if j > 0 {
            vecops::axpy(-betas[j - 1], basis.col(j - 1), &mut w);
        }
        let t0 = Instant::now();
        let beta = match opts.reorth {
            Reorth::Full => {
                let b = orthogonalize_against(&basis, j + 1, &mut w);
                reorth_stats.add(cgs2_flops(j + 1), t0.elapsed().as_secs_f64());
                b
            }
            Reorth::Periodic(n) => {
                if n != 0 && j % n == n - 1 {
                    // Period 1 never lets the basis drift, so it shares
                    // Full's adaptive path (and stays bit-identical to
                    // it). Sparser periods drift between sweeps, where
                    // the single-pass DGKS shortcut is not sound.
                    let b = if n == 1 {
                        orthogonalize_against(&basis, j + 1, &mut w)
                    } else {
                        orthogonalize_against_robust(&basis, j + 1, &mut w)
                    };
                    reorth_stats.add(cgs2_flops(j + 1), t0.elapsed().as_secs_f64());
                    b
                } else {
                    vecops::nrm2(&w)
                }
            }
            Reorth::ThreeTermOnly => vecops::nrm2(&w),
        };
        if !beta.is_finite() {
            return Err(Error::NonFinite {
                what: "Lanczos off-diagonal beta",
                step: j,
            });
        }
        steps += 1;

        let breakdown = beta <= f64::EPSILON * theta_max_est.max(1.0) * 16.0;
        if steps < max_basis {
            if breakdown {
                // Invariant subspace found. If it already spans at least
                // k directions we can stop; otherwise restart with a
                // fresh random vector orthogonal to the basis.
                betas.push(0.0);
                let mut fresh = vec![0.0; dim];
                let mut ok = false;
                for _try in 0..4 {
                    for v in fresh.iter_mut() {
                        *v = rng.random::<f64>() - 0.5;
                    }
                    let t0 = Instant::now();
                    // A restart vector is random, so most of it lies in
                    // the basis's span; use the robust variant (the
                    // basis may also have drifted under sparse
                    // reorthogonalization policies).
                    let rem = orthogonalize_against_robust(&basis, steps, &mut fresh);
                    reorth_stats.add(cgs2_flops(steps), t0.elapsed().as_secs_f64());
                    if rem > 1e-8 {
                        vecops::normalize(&mut fresh);
                        ok = true;
                        break;
                    }
                }
                if !ok {
                    // The basis spans the whole space; T is exact.
                    betas.pop();
                    break;
                }
                restarts += 1;
                basis.col_mut(steps).copy_from_slice(&fresh);
            } else {
                betas.push(beta);
                vecops::scal(1.0 / beta, &mut w);
                basis.col_mut(steps).copy_from_slice(&w);
            }
        } else if breakdown {
            // Final step ended on an invariant subspace: T is exact for
            // the spanned subspace.
        }

        // Convergence test.
        let at_end = steps == max_basis;
        if steps >= k && (steps.is_multiple_of(opts.check_every) || at_end || breakdown) {
            let t = SymTridiag::new(alphas.clone(), betas[..steps - 1].to_vec())
                .expect("consistent lengths by construction");
            // The residual bound only reads the last eigenvector row,
            // so the O(n²) last-row solver suffices here; the full
            // O(n³) decomposition runs once, at final extraction.
            let (theta, s_last) = tridiag_eigen_last_row(&t)?;
            let beta_last = if at_end || breakdown { 0.0 } else { beta };
            let theta_scale = theta.first().copied().unwrap_or(0.0).abs().max(1e-300);
            converged = 0;
            for i in 0..k.min(theta.len()) {
                let bound = (beta_last * s_last[i]).abs();
                if bound <= opts.tol * theta_scale {
                    converged += 1;
                } else {
                    break;
                }
            }
            if converged >= k || breakdown && steps >= dim {
                break;
            }
            // Stagnation watchdog: a healthy run keeps ratcheting the
            // converged count upward; a wedged one (non-symmetric or
            // inconsistent operator, hopeless tolerance) stops making
            // progress long before the basis budget runs out.
            if converged > max_converged {
                max_converged = converged;
                checks_since_progress = 0;
            } else {
                checks_since_progress += 1;
                if let Some(limit) = opts.stall_after {
                    if checks_since_progress >= limit {
                        lsi_obs::count("svd.lanczos.stalls.count", 1);
                        return Err(Error::Stalled { converged });
                    }
                }
            }
        }
    }

    // Final Ritz extraction.
    let t = SymTridiag::new(alphas.clone(), betas[..steps - 1].to_vec())
        .expect("consistent lengths by construction");
    let (theta, s) = tridiag_eigen(&t)?;
    let keep = k.min(theta.len());

    // Ritz vectors Y = Q S, assembled in one blocked GEMM over the
    // retained eigenvector columns.
    let basis_used = basis.truncate_cols(steps);
    let t0 = Instant::now();
    let mut ritz = matmul(&basis_used, &s.truncate_cols(keep)).map_err(Error::Linalg)?;
    for i in 0..keep {
        vecops::normalize(ritz.col_mut(i));
    }
    ritz_stats.add(
        2.0 * dim as f64 * steps as f64 * keep as f64,
        t0.elapsed().as_secs_f64(),
    );

    // Singular values; drop triplets whose Ritz value sits at the noise
    // floor of the Gram operator. Working on AᵀA squares the spectrum,
    // so eigenvalues below ~eps·θ₁ are indistinguishable from zero —
    // equivalently, singular values below ~sqrt(eps)·σ₁ cannot be
    // resolved (the same limitation SVDPACK's las2 documents).
    let sigma_all: Vec<f64> = theta
        .iter()
        .take(keep)
        .map(|&t| t.max(0.0).sqrt())
        .collect();
    let theta_scale = theta.first().copied().unwrap_or(0.0).max(0.0);
    let theta_floor = theta_scale * f64::EPSILON * 64.0;
    let rank_cut = theta[..keep]
        .iter()
        .take_while(|&&t| t > theta_floor && t > 0.0)
        .count();
    let sigma = sigma_all[..rank_cut].to_vec();
    let ritz = ritz.truncate_cols(rank_cut);

    // Recover the other side: other_i = Op(y_i) / sigma_i.
    let other_len = match side {
        GramSide::AtA => m,
        GramSide::AAt => n,
    };
    let mut other = DenseMatrix::zeros(other_len, rank_cut);
    let mut tmp = vec![0.0; other_len];
    for i in 0..rank_cut {
        let t0 = Instant::now();
        match side {
            GramSide::AtA => a.apply(ritz.col(i), &mut tmp),
            GramSide::AAt => a.apply_t(ritz.col(i), &mut tmp),
        }
        ritz_stats.add(2.0 * a.nnz() as f64, t0.elapsed().as_secs_f64());
        vecops::scal(1.0 / sigma[i], &mut tmp);
        // Clean residual non-orthogonality against previous columns.
        if i > 0 {
            let t0 = Instant::now();
            orthogonalize_against_robust(&other, i, &mut tmp);
            reorth_stats.add(
                8.0 * i as f64 * other_len as f64,
                t0.elapsed().as_secs_f64(),
            );
            vecops::normalize(&mut tmp);
        }
        other.col_mut(i).copy_from_slice(&tmp);
    }

    let (u, v) = match side {
        GramSide::AtA => (other, ritz),
        GramSide::AAt => (ritz, other),
    };

    // Publish the per-phase breakdown under the open span (e.g.
    // `build.svd.lanczos.gram` when the model builder drives this).
    // These phases were timed out-of-band, so they sit alongside the
    // span's own totals rather than adding into them.
    lsi_obs::record_phase("gram", &gram_stats);
    lsi_obs::record_phase("reorth", &reorth_stats);
    lsi_obs::record_phase("ritz", &ritz_stats);
    lsi_obs::count("svd.lanczos.steps.count", steps as u64);
    lsi_obs::count("svd.lanczos.restarts.count", restarts as u64);

    let report = LanczosReport {
        steps,
        converged: converged.min(rank_cut),
        accepted: rank_cut,
        restarts,
        side_is_ata: side == GramSide::AtA,
        gram: gram_stats,
        reorth: reorth_stats,
        ritz: ritz_stats,
        fallback: Fallback::None,
    };
    Ok((Svd { u, s: sigma, v }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_oracle;
    use lsi_linalg::ops::matmul_tn;
    use lsi_sparse::gen::{planted_spectrum, random_term_doc, RowProfile};
    use lsi_sparse::CooMatrix;

    fn check_against_oracle(a: &lsi_sparse::CscMatrix, k: usize, tol: f64) {
        let (svd, report) = lanczos_svd(a, k, &LanczosOptions::default()).unwrap();
        let oracle = dense_oracle(a, k).unwrap();
        assert!(report.accepted <= k);
        for (i, (got, want)) in svd.s.iter().zip(oracle.s.iter()).enumerate() {
            assert!(
                (got - want).abs() < tol * want.max(1.0),
                "sigma_{i}: {got} vs oracle {want}"
            );
        }
        // Residual check: ||A v - sigma u|| small.
        let dense = a.to_dense();
        for i in 0..svd.s.len() {
            let av = lsi_linalg::ops::matvec(&dense, svd.v.col(i)).unwrap();
            let r: f64 = av
                .iter()
                .zip(svd.u.col(i).iter())
                .map(|(x, y)| (x - svd.s[i] * y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(r < tol * svd.s[0].max(1.0), "triplet {i} residual {r}");
        }
        // Orthonormality of both factors.
        let r = svd.s.len();
        let utu = matmul_tn(&svd.u, &svd.u).unwrap();
        assert!(utu.fro_distance(&DenseMatrix::identity(r)).unwrap() < 1e-8);
        let vtv = matmul_tn(&svd.v, &svd.v).unwrap();
        assert!(vtv.fro_distance(&DenseMatrix::identity(r)).unwrap() < 1e-8);
    }

    #[test]
    fn lanczos_matches_oracle_on_random_tall() {
        let a = random_term_doc(60, 25, 0.15, RowProfile::Uniform, 3, 1);
        check_against_oracle(&a, 8, 1e-8);
    }

    #[test]
    fn lanczos_matches_oracle_on_random_wide() {
        let a = random_term_doc(20, 70, 0.12, RowProfile::Uniform, 3, 2);
        check_against_oracle(&a, 6, 1e-8);
    }

    #[test]
    fn lanczos_recovers_planted_spectrum() {
        let (a, sigmas) = planted_spectrum(40, 30, &[9.0, 5.0, 2.0, 0.5], 3);
        let (svd, _) = lanczos_svd(&a, 4, &LanczosOptions::default()).unwrap();
        for (got, want) in svd.s.iter().zip(sigmas.iter()) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn lanczos_handles_rank_deficiency() {
        // Rank-2 matrix, ask for 5 triplets: only 2 returned.
        let (a, _) = planted_spectrum(15, 12, &[4.0, 1.0], 9);
        let (svd, report) = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(svd.s.len(), 2);
        assert!((svd.s[0] - 4.0).abs() < 1e-7);
        assert!((svd.s[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn lanczos_k_zero_returns_empty() {
        let a = random_term_doc(10, 8, 0.2, RowProfile::Uniform, 2, 4);
        let (svd, report) = lanczos_svd(&a, 0, &LanczosOptions::default()).unwrap();
        assert!(svd.s.is_empty());
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn lanczos_rejects_oversized_rank() {
        let a = random_term_doc(5, 4, 0.5, RowProfile::Uniform, 2, 4);
        assert!(matches!(
            lanczos_svd(&a, 5, &LanczosOptions::default()),
            Err(Error::RankTooLarge { requested: 5, max: 4 })
        ));
    }

    #[test]
    fn lanczos_full_rank_small_matrix() {
        // k = min(m, n): complete decomposition.
        let mut coo = CooMatrix::new(4, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (1, 1, -1.0),
            (2, 2, 3.0),
            (3, 0, 1.0),
            (0, 2, 0.5),
        ] {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csc();
        check_against_oracle(&a, 3, 1e-9);
    }

    #[test]
    fn lanczos_is_deterministic_in_seed() {
        let a = random_term_doc(30, 30, 0.1, RowProfile::Uniform, 3, 5);
        let o = LanczosOptions::default();
        let (s1, _) = lanczos_svd(&a, 4, &o).unwrap();
        let (s2, _) = lanczos_svd(&a, 4, &o).unwrap();
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn lanczos_on_zero_matrix() {
        let a = lsi_sparse::CscMatrix::zeros(6, 5);
        let (svd, report) = lanczos_svd(&a, 3, &LanczosOptions::default()).unwrap();
        assert!(svd.s.is_empty(), "zero matrix has no nonzero triplets");
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn lanczos_identity_like_matrix_with_restarts() {
        // Identity has one eigenvalue with multiplicity n; Lanczos needs
        // restarts to find repeated values.
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0).unwrap();
        }
        let a = coo.to_csc();
        let (svd, _) = lanczos_svd(&a, 4, &LanczosOptions::default()).unwrap();
        assert_eq!(svd.s.len(), 4);
        for &sv in &svd.s {
            assert!((sv - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn periodic_every_step_is_exactly_full() {
        let a = random_term_doc(80, 60, 0.08, RowProfile::Zipf { s: 1.0 }, 3, 12);
        let full = lanczos_svd(&a, 6, &LanczosOptions::default()).unwrap().0;
        let every = lanczos_svd(
            &a,
            6,
            &LanczosOptions {
                reorth: Reorth::Periodic(1),
                ..Default::default()
            },
        )
        .unwrap()
        .0;
        assert_eq!(full.s, every.s);
    }

    #[test]
    fn sparse_periodic_reorth_admits_ghost_ritz_values() {
        // The ablation's point: reorthogonalizing only every 4th step on
        // a matrix with a dominant singular value lets ghost copies of
        // sigma_1 re-enter the basis. The extreme value itself is still
        // computed correctly; the *interior* values are what ghosting
        // corrupts.
        let a = random_term_doc(80, 60, 0.08, RowProfile::Zipf { s: 1.0 }, 3, 12);
        let full = lanczos_svd(&a, 6, &LanczosOptions::default()).unwrap().0;
        let periodic = lanczos_svd(
            &a,
            6,
            &LanczosOptions {
                reorth: Reorth::Periodic(4),
                ..Default::default()
            },
        )
        .unwrap()
        .0;
        // sigma_1 agrees...
        assert!((full.s[0] - periodic.s[0]).abs() < 1e-6 * full.s[0]);
        // ...and the sparse-reorth spectrum contains a ghost: some value
        // duplicates sigma_1 where the full-reorth spectrum has a gap.
        let ghosts = periodic
            .s
            .iter()
            .skip(1)
            .filter(|&&s| (s - full.s[0]).abs() < 1e-6 * full.s[0])
            .count();
        let true_dups = full
            .s
            .iter()
            .skip(1)
            .filter(|&&s| (s - full.s[0]).abs() < 1e-6 * full.s[0])
            .count();
        assert!(
            ghosts > true_dups,
            "expected ghost Ritz values under sparse reorthogonalization \
             (periodic spectrum {:?} vs full {:?})",
            periodic.s,
            full.s
        );
    }

    #[test]
    fn full_cgs2_has_no_ghost_duplicates_where_three_term_only_does() {
        // Regression for the panel-CGS2 rewrite of Reorth::Full: the
        // adaptive one-or-two-pass orthogonalization must still keep
        // every Ritz value distinct on a run long enough that bare
        // three-term Lanczos manufactures ghost copies of sigma_1.
        let (a, _) = planted_spectrum(120, 100, &[50.0, 10.0, 5.0, 2.0, 1.0, 0.5, 0.2], 4);
        let run = |reorth: Reorth| {
            let opts = LanczosOptions {
                reorth,
                max_steps: Some(90),
                tol: 1e-14,
                ..Default::default()
            };
            lanczos_svd(&a, 7, &opts).unwrap().0
        };
        let dup_count = |s: &[f64]| {
            s.windows(2)
                .filter(|w| (w[0] - w[1]).abs() < 1e-6 * s[0].max(1.0))
                .count()
        };
        let full = run(Reorth::Full);
        let bare = run(Reorth::ThreeTermOnly);
        assert_eq!(
            dup_count(&full.s),
            0,
            "full CGS2 reorthogonalization admitted a duplicate: {:?}",
            full.s
        );
        assert!(
            dup_count(&bare.s) > 0,
            "expected ghost duplicates without reorthogonalization: {:?}",
            bare.s
        );
    }

    #[test]
    fn three_term_only_degrades_basis_orthogonality() {
        // The classic Lanczos pathology: without reorthogonalization the
        // computed factors lose orthogonality once extreme Ritz values
        // converge. Compare the orthogonality defect of V across
        // strategies on a long run.
        let (a, _) = planted_spectrum(120, 100, &[50.0, 10.0, 5.0, 2.0, 1.0, 0.5, 0.2], 4);
        let run = |reorth: Reorth| -> f64 {
            let opts = LanczosOptions {
                reorth,
                max_steps: Some(90),
                tol: 1e-14,
                ..Default::default()
            };
            let (svd, _) = lanczos_svd(&a, 7, &opts).unwrap();
            lsi_linalg::ortho::orthogonality_defect_fro(&svd.v, svd.s.len()).unwrap()
        };
        let full = run(Reorth::Full);
        let bare = run(Reorth::ThreeTermOnly);
        assert!(full < 1e-8, "full reorthogonalization defect {full}");
        assert!(
            bare > full * 100.0 || bare > 1e-6,
            "three-term-only should visibly degrade: {bare} vs {full}"
        );
    }

    #[test]
    fn report_counts_iterations() {
        let a = random_term_doc(50, 40, 0.1, RowProfile::Uniform, 3, 6);
        let (_, report) = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
        assert!(report.steps >= 5);
        assert!(report.steps <= 40);
        assert!(report.side_is_ata);
    }

    #[test]
    fn report_accounts_per_phase_flops() {
        let a = random_term_doc(60, 50, 0.1, RowProfile::Uniform, 3, 8);
        let (_, report) = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
        // Every phase ran and did arithmetic.
        assert_eq!(report.gram.flops, report.steps as f64 * 4.0 * a.nnz() as f64);
        assert!(report.reorth.flops > 0.0, "full reorth accounted");
        assert!(report.ritz.flops > 0.0, "ritz assembly accounted");
        assert!(report.gram.secs >= 0.0 && report.reorth.secs >= 0.0);
        for phase in [report.gram, report.reorth, report.ritz] {
            assert!(phase.mflops().is_finite());
        }
        // ThreeTermOnly performs no panel reorthogonalization at all.
        let bare = lanczos_svd(
            &a,
            5,
            &LanczosOptions {
                reorth: Reorth::ThreeTermOnly,
                ..Default::default()
            },
        )
        .unwrap()
        .1;
        // (Other-side cleanup still contributes, so compare step work.)
        assert!(bare.reorth.flops < report.reorth.flops);
    }
}
