//! Single-vector Lanczos truncated SVD with full reorthogonalization.
//!
//! This follows the structure the paper assumes for its §4.2 cost model
//! (and that SVDPACKC's `las2` implements): tridiagonalize the Gram
//! operator `G` with `I` Lanczos iterations, solve the small symmetric
//! tridiagonal eigenproblem, and extract each accepted triplet's other
//! singular vector with one extra sparse product (`u = A v / σ`).
//!
//! Full reorthogonalization (two passes of modified Gram–Schmidt against
//! the whole basis per step) is used instead of `las2`'s selective
//! scheme: at the scales exercised here the `O(I² · dim)` cost is small
//! next to the sparse products, and it eliminates spurious duplicate
//! Ritz values entirely. The ablation benchmark
//! `lsi-bench/benches/lanczos_scale.rs` quantifies that trade-off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_linalg::qr::orthogonalize_against;
use lsi_linalg::svd::Svd;
use lsi_linalg::tridiag::{tridiag_eigen, SymTridiag};
use lsi_linalg::{vecops, DenseMatrix};
use lsi_sparse::MatVec;

use crate::operator::{gram_apply, GramSide};
use crate::{Error, Result};

/// Reorthogonalization policy for the Lanczos basis.
///
/// In exact arithmetic the three-term recurrence keeps the basis
/// orthogonal by itself; in floating point it famously does not
/// (spurious duplicate Ritz values appear as soon as a triplet
/// converges). The strategies trade the `O(I² · dim)` cleanup cost
/// against that risk — `lsi-bench --bench lanczos` measures the
/// trade-off, and the duplicate-Ritz pathology of `ThreeTermOnly` is
/// demonstrated in this module's tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reorth {
    /// Two MGS passes against the whole basis each step (robust
    /// default; what SVDPACK calls full reorthogonalization).
    #[default]
    Full,
    /// Reorthogonalize only every `n`-th step (plus the recurrence's
    /// own two-term correction on other steps). Cheaper, usually
    /// adequate for well-separated spectra.
    Periodic(usize),
    /// The bare three-term recurrence. Fast and *unreliable* beyond a
    /// few dozen steps — present for the ablation, not for use.
    ThreeTermOnly,
}

/// Tuning knobs for [`lanczos_svd`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Lanczos basis size. `None` picks
    /// `min(dim, max(2k + 30, 4k))`, which comfortably brackets the
    /// usual "few iterations per wanted triplet" behaviour.
    pub max_steps: Option<usize>,
    /// Relative convergence tolerance on the Ritz residual bound
    /// (`|β_j s_last| ≤ tol · θ_max`).
    pub tol: f64,
    /// Seed for the random starting vector (the run is deterministic in
    /// this seed).
    pub seed: u64,
    /// How often (in steps) the tridiagonal eigenproblem is solved to
    /// test convergence.
    pub check_every: usize,
    /// Reorthogonalization policy.
    pub reorth: Reorth,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_steps: None,
            tol: 1e-12,
            seed: 0x5EED,
            check_every: 8,
            reorth: Reorth::Full,
        }
    }
}

/// Execution report: the quantities of the paper's cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanczosReport {
    /// Lanczos iterations performed — the `I` of §4.2's
    /// `I × cost(GᵀG x) + trp × cost(G x)`.
    pub steps: usize,
    /// Triplets that met the residual tolerance.
    pub converged: usize,
    /// Accepted triplets returned (`trp` in the cost model).
    pub accepted: usize,
    /// Invariant-subspace restarts performed.
    pub restarts: usize,
    /// Which Gram side was used.
    pub side_is_ata: bool,
}

/// Truncated SVD: the `k` largest singular triplets of `a`.
///
/// Returns the decomposition and a [`LanczosReport`]. If `a` has rank
/// `r < k`, only the `r` numerically nonzero triplets are returned (the
/// report's `accepted` reflects this).
pub fn lanczos_svd<M: MatVec + ?Sized>(
    a: &M,
    k: usize,
    opts: &LanczosOptions,
) -> Result<(Svd, LanczosReport)> {
    let m = a.nrows();
    let n = a.ncols();
    let max_rank = m.min(n);
    if k > max_rank {
        return Err(Error::RankTooLarge {
            requested: k,
            max: max_rank,
        });
    }
    let side = GramSide::auto(m, n);
    let dim = side.dim(m, n);
    let report_empty = LanczosReport {
        steps: 0,
        converged: 0,
        accepted: 0,
        restarts: 0,
        side_is_ata: side == GramSide::AtA,
    };
    if k == 0 || dim == 0 {
        return Ok((
            Svd {
                u: DenseMatrix::zeros(m, 0),
                s: Vec::new(),
                v: DenseMatrix::zeros(n, 0),
            },
            report_empty,
        ));
    }

    let max_basis = opts
        .max_steps
        .unwrap_or_else(|| (2 * k + 30).max(4 * k))
        .min(dim)
        .max(k.min(dim));

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut basis = DenseMatrix::zeros(dim, max_basis);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_basis);
    let mut betas: Vec<f64> = Vec::with_capacity(max_basis);
    let mut scratch = vec![0.0; m.max(n)];
    let mut w = vec![0.0; dim];
    let mut restarts = 0usize;

    // Random unit start vector.
    {
        let q0 = basis.col_mut(0);
        for v in q0.iter_mut() {
            *v = rng.random::<f64>() - 0.5;
        }
        vecops::normalize(q0);
    }

    let mut theta_max_est = 0.0f64;
    let mut steps = 0usize;
    let mut converged = 0usize;

    while steps < max_basis {
        let j = steps;
        // w = G q_j
        gram_apply(a, side, basis.col(j), &mut w, &mut scratch);
        let alpha = vecops::dot(basis.col(j), &w);
        alphas.push(alpha);
        theta_max_est = theta_max_est.max(alpha.abs());
        // Three-term recurrence then full reorthogonalization (the
        // reorthogonalization subsumes the recurrence's subtraction, but
        // doing the explicit subtraction first keeps the corrections
        // small and cheap).
        {
            let qj = basis.col(j).to_vec();
            vecops::axpy(-alpha, &qj, &mut w);
            if j > 0 {
                let beta_prev = betas[j - 1];
                let qprev = basis.col(j - 1).to_vec();
                vecops::axpy(-beta_prev, &qprev, &mut w);
            }
        }
        let beta = match opts.reorth {
            Reorth::Full => orthogonalize_against(&basis, j + 1, &mut w),
            Reorth::Periodic(n) => {
                if n != 0 && j % n == n - 1 {
                    orthogonalize_against(&basis, j + 1, &mut w)
                } else {
                    vecops::nrm2(&w)
                }
            }
            Reorth::ThreeTermOnly => vecops::nrm2(&w),
        };
        steps += 1;

        let breakdown = beta <= f64::EPSILON * theta_max_est.max(1.0) * 16.0;
        if steps < max_basis {
            if breakdown {
                // Invariant subspace found. If it already spans at least
                // k directions we can stop; otherwise restart with a
                // fresh random vector orthogonal to the basis.
                betas.push(0.0);
                let mut fresh = vec![0.0; dim];
                let mut ok = false;
                for _try in 0..4 {
                    for v in fresh.iter_mut() {
                        *v = rng.random::<f64>() - 0.5;
                    }
                    let rem = orthogonalize_against(&basis, steps, &mut fresh);
                    if rem > 1e-8 {
                        vecops::normalize(&mut fresh);
                        ok = true;
                        break;
                    }
                }
                if !ok {
                    // The basis spans the whole space; T is exact.
                    betas.pop();
                    break;
                }
                restarts += 1;
                basis.col_mut(steps).copy_from_slice(&fresh);
            } else {
                betas.push(beta);
                vecops::scal(1.0 / beta, &mut w);
                basis.col_mut(steps).copy_from_slice(&w);
            }
        } else if breakdown {
            // Final step ended on an invariant subspace: T is exact for
            // the spanned subspace.
        }

        // Convergence test.
        let at_end = steps == max_basis;
        if steps >= k && (steps.is_multiple_of(opts.check_every) || at_end || breakdown) {
            let t = SymTridiag::new(alphas.clone(), betas[..steps - 1].to_vec())
                .expect("consistent lengths by construction");
            let (theta, s) = tridiag_eigen(&t)?;
            let beta_last = if at_end || breakdown { 0.0 } else { beta };
            let theta_scale = theta.first().copied().unwrap_or(0.0).abs().max(1e-300);
            converged = 0;
            for i in 0..k.min(theta.len()) {
                let bound = (beta_last * s.get(steps - 1, i)).abs();
                if bound <= opts.tol * theta_scale {
                    converged += 1;
                } else {
                    break;
                }
            }
            if converged >= k || breakdown && steps >= dim {
                break;
            }
        }
    }

    // Final Ritz extraction.
    let t = SymTridiag::new(alphas.clone(), betas[..steps - 1].to_vec())
        .expect("consistent lengths by construction");
    let (theta, s) = tridiag_eigen(&t)?;
    let keep = k.min(theta.len());

    // Ritz vectors y_i = Q s_i.
    let basis_used = basis.truncate_cols(steps);
    let mut ritz = DenseMatrix::zeros(dim, keep);
    for i in 0..keep {
        let si = s.col(i);
        let yi = ritz.col_mut(i);
        for (jj, &sji) in si.iter().enumerate() {
            vecops::axpy(sji, basis_used.col(jj), yi);
        }
        vecops::normalize(yi);
    }

    // Singular values; drop triplets whose Ritz value sits at the noise
    // floor of the Gram operator. Working on AᵀA squares the spectrum,
    // so eigenvalues below ~eps·θ₁ are indistinguishable from zero —
    // equivalently, singular values below ~sqrt(eps)·σ₁ cannot be
    // resolved (the same limitation SVDPACK's las2 documents).
    let sigma_all: Vec<f64> = theta
        .iter()
        .take(keep)
        .map(|&t| t.max(0.0).sqrt())
        .collect();
    let theta_scale = theta.first().copied().unwrap_or(0.0).max(0.0);
    let theta_floor = theta_scale * f64::EPSILON * 64.0;
    let rank_cut = theta[..keep]
        .iter()
        .take_while(|&&t| t > theta_floor && t > 0.0)
        .count();
    let sigma = sigma_all[..rank_cut].to_vec();
    let ritz = ritz.truncate_cols(rank_cut);

    // Recover the other side: other_i = Op(y_i) / sigma_i.
    let other_len = match side {
        GramSide::AtA => m,
        GramSide::AAt => n,
    };
    let mut other = DenseMatrix::zeros(other_len, rank_cut);
    let mut tmp = vec![0.0; other_len];
    for i in 0..rank_cut {
        match side {
            GramSide::AtA => a.apply(ritz.col(i), &mut tmp),
            GramSide::AAt => a.apply_t(ritz.col(i), &mut tmp),
        }
        vecops::scal(1.0 / sigma[i], &mut tmp);
        // Clean residual non-orthogonality against previous columns.
        if i > 0 {
            orthogonalize_against(&other, i, &mut tmp);
            vecops::normalize(&mut tmp);
        }
        other.col_mut(i).copy_from_slice(&tmp);
    }

    let (u, v) = match side {
        GramSide::AtA => (other, ritz),
        GramSide::AAt => (ritz, other),
    };

    let report = LanczosReport {
        steps,
        converged: converged.min(rank_cut),
        accepted: rank_cut,
        restarts,
        side_is_ata: side == GramSide::AtA,
    };
    Ok((Svd { u, s: sigma, v }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_oracle;
    use lsi_linalg::ops::matmul_tn;
    use lsi_sparse::gen::{planted_spectrum, random_term_doc, RowProfile};
    use lsi_sparse::CooMatrix;

    fn check_against_oracle(a: &lsi_sparse::CscMatrix, k: usize, tol: f64) {
        let (svd, report) = lanczos_svd(a, k, &LanczosOptions::default()).unwrap();
        let oracle = dense_oracle(a, k).unwrap();
        assert!(report.accepted <= k);
        for (i, (got, want)) in svd.s.iter().zip(oracle.s.iter()).enumerate() {
            assert!(
                (got - want).abs() < tol * want.max(1.0),
                "sigma_{i}: {got} vs oracle {want}"
            );
        }
        // Residual check: ||A v - sigma u|| small.
        let dense = a.to_dense();
        for i in 0..svd.s.len() {
            let av = lsi_linalg::ops::matvec(&dense, svd.v.col(i)).unwrap();
            let r: f64 = av
                .iter()
                .zip(svd.u.col(i).iter())
                .map(|(x, y)| (x - svd.s[i] * y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(r < tol * svd.s[0].max(1.0), "triplet {i} residual {r}");
        }
        // Orthonormality of both factors.
        let r = svd.s.len();
        let utu = matmul_tn(&svd.u, &svd.u).unwrap();
        assert!(utu.fro_distance(&DenseMatrix::identity(r)).unwrap() < 1e-8);
        let vtv = matmul_tn(&svd.v, &svd.v).unwrap();
        assert!(vtv.fro_distance(&DenseMatrix::identity(r)).unwrap() < 1e-8);
    }

    #[test]
    fn lanczos_matches_oracle_on_random_tall() {
        let a = random_term_doc(60, 25, 0.15, RowProfile::Uniform, 3, 1);
        check_against_oracle(&a, 8, 1e-8);
    }

    #[test]
    fn lanczos_matches_oracle_on_random_wide() {
        let a = random_term_doc(20, 70, 0.12, RowProfile::Uniform, 3, 2);
        check_against_oracle(&a, 6, 1e-8);
    }

    #[test]
    fn lanczos_recovers_planted_spectrum() {
        let (a, sigmas) = planted_spectrum(40, 30, &[9.0, 5.0, 2.0, 0.5], 3);
        let (svd, _) = lanczos_svd(&a, 4, &LanczosOptions::default()).unwrap();
        for (got, want) in svd.s.iter().zip(sigmas.iter()) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn lanczos_handles_rank_deficiency() {
        // Rank-2 matrix, ask for 5 triplets: only 2 returned.
        let (a, _) = planted_spectrum(15, 12, &[4.0, 1.0], 9);
        let (svd, report) = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(svd.s.len(), 2);
        assert!((svd.s[0] - 4.0).abs() < 1e-7);
        assert!((svd.s[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn lanczos_k_zero_returns_empty() {
        let a = random_term_doc(10, 8, 0.2, RowProfile::Uniform, 2, 4);
        let (svd, report) = lanczos_svd(&a, 0, &LanczosOptions::default()).unwrap();
        assert!(svd.s.is_empty());
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn lanczos_rejects_oversized_rank() {
        let a = random_term_doc(5, 4, 0.5, RowProfile::Uniform, 2, 4);
        assert!(matches!(
            lanczos_svd(&a, 5, &LanczosOptions::default()),
            Err(Error::RankTooLarge { requested: 5, max: 4 })
        ));
    }

    #[test]
    fn lanczos_full_rank_small_matrix() {
        // k = min(m, n): complete decomposition.
        let mut coo = CooMatrix::new(4, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (1, 1, -1.0),
            (2, 2, 3.0),
            (3, 0, 1.0),
            (0, 2, 0.5),
        ] {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csc();
        check_against_oracle(&a, 3, 1e-9);
    }

    #[test]
    fn lanczos_is_deterministic_in_seed() {
        let a = random_term_doc(30, 30, 0.1, RowProfile::Uniform, 3, 5);
        let o = LanczosOptions::default();
        let (s1, _) = lanczos_svd(&a, 4, &o).unwrap();
        let (s2, _) = lanczos_svd(&a, 4, &o).unwrap();
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn lanczos_on_zero_matrix() {
        let a = lsi_sparse::CscMatrix::zeros(6, 5);
        let (svd, report) = lanczos_svd(&a, 3, &LanczosOptions::default()).unwrap();
        assert!(svd.s.is_empty(), "zero matrix has no nonzero triplets");
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn lanczos_identity_like_matrix_with_restarts() {
        // Identity has one eigenvalue with multiplicity n; Lanczos needs
        // restarts to find repeated values.
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0).unwrap();
        }
        let a = coo.to_csc();
        let (svd, _) = lanczos_svd(&a, 4, &LanczosOptions::default()).unwrap();
        assert_eq!(svd.s.len(), 4);
        for &sv in &svd.s {
            assert!((sv - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn periodic_every_step_is_exactly_full() {
        let a = random_term_doc(80, 60, 0.08, RowProfile::Zipf { s: 1.0 }, 3, 12);
        let full = lanczos_svd(&a, 6, &LanczosOptions::default()).unwrap().0;
        let every = lanczos_svd(
            &a,
            6,
            &LanczosOptions {
                reorth: Reorth::Periodic(1),
                ..Default::default()
            },
        )
        .unwrap()
        .0;
        assert_eq!(full.s, every.s);
    }

    #[test]
    fn sparse_periodic_reorth_admits_ghost_ritz_values() {
        // The ablation's point: reorthogonalizing only every 4th step on
        // a matrix with a dominant singular value lets ghost copies of
        // sigma_1 re-enter the basis. The extreme value itself is still
        // computed correctly; the *interior* values are what ghosting
        // corrupts.
        let a = random_term_doc(80, 60, 0.08, RowProfile::Zipf { s: 1.0 }, 3, 12);
        let full = lanczos_svd(&a, 6, &LanczosOptions::default()).unwrap().0;
        let periodic = lanczos_svd(
            &a,
            6,
            &LanczosOptions {
                reorth: Reorth::Periodic(4),
                ..Default::default()
            },
        )
        .unwrap()
        .0;
        // sigma_1 agrees...
        assert!((full.s[0] - periodic.s[0]).abs() < 1e-6 * full.s[0]);
        // ...and the sparse-reorth spectrum contains a ghost: some value
        // duplicates sigma_1 where the full-reorth spectrum has a gap.
        let ghosts = periodic
            .s
            .iter()
            .skip(1)
            .filter(|&&s| (s - full.s[0]).abs() < 1e-6 * full.s[0])
            .count();
        let true_dups = full
            .s
            .iter()
            .skip(1)
            .filter(|&&s| (s - full.s[0]).abs() < 1e-6 * full.s[0])
            .count();
        assert!(
            ghosts > true_dups,
            "expected ghost Ritz values under sparse reorthogonalization \
             (periodic spectrum {:?} vs full {:?})",
            periodic.s,
            full.s
        );
    }

    #[test]
    fn three_term_only_degrades_basis_orthogonality() {
        // The classic Lanczos pathology: without reorthogonalization the
        // computed factors lose orthogonality once extreme Ritz values
        // converge. Compare the orthogonality defect of V across
        // strategies on a long run.
        let (a, _) = planted_spectrum(120, 100, &[50.0, 10.0, 5.0, 2.0, 1.0, 0.5, 0.2], 4);
        let run = |reorth: Reorth| -> f64 {
            let opts = LanczosOptions {
                reorth,
                max_steps: Some(90),
                tol: 1e-14,
                ..Default::default()
            };
            let (svd, _) = lanczos_svd(&a, 7, &opts).unwrap();
            lsi_linalg::ortho::orthogonality_defect_fro(&svd.v, svd.s.len()).unwrap()
        };
        let full = run(Reorth::Full);
        let bare = run(Reorth::ThreeTermOnly);
        assert!(full < 1e-8, "full reorthogonalization defect {full}");
        assert!(
            bare > full * 100.0 || bare > 1e-6,
            "three-term-only should visibly degrade: {bare} vs {full}"
        );
    }

    #[test]
    fn report_counts_iterations() {
        let a = random_term_doc(50, 40, 0.1, RowProfile::Uniform, 3, 6);
        let (_, report) = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
        assert!(report.steps >= 5);
        assert!(report.steps <= 40);
        assert!(report.side_is_ata);
    }
}
