//! Truncated SVD of large sparse matrices.
//!
//! "The bulk of LSI processing time is spent in computing the truncated
//! SVD of the large sparse term by document matrices" (§1 of the paper).
//! This crate provides that kernel:
//!
//! * [`lanczos::lanczos_svd`] — a single-vector Lanczos procedure on the
//!   Gram operator with full reorthogonalization, in the style of
//!   SVDPACKC's `las2` (the paper's reference \[4\]). The paper's §4.2
//!   cost model `I × cost(GᵀG x) + trp × cost(G x)` maps directly onto
//!   this implementation, and [`operator::CountingOperator`] measures
//!   exactly those two quantities.
//! * [`randomized::randomized_svd`] — randomized subspace iteration, a
//!   modern baseline used in the ablation benchmarks.
//! * [`dense_oracle`] — dense Jacobi SVD of a sparse matrix, the
//!   ground-truth oracle for tests and small problems.
//! * [`robust::robust_svd`] — the hardened production entry point: runs
//!   Lanczos under a non-finite/stagnation watchdog and degrades down a
//!   staged ladder (Lanczos → randomized → dense) instead of failing,
//!   reporting which rung served the request via
//!   [`lanczos::LanczosReport::fallback`].

// Index-based loops over parallel arrays are the clearest idiom in
// numerical kernels; clippy's iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]


pub mod lanczos;
pub mod operator;
pub mod randomized;
pub mod robust;

pub use lanczos::{lanczos_svd, Fallback, LanczosOptions, LanczosReport, PhaseStats, Reorth};
pub use operator::{CountingOperator, GramSide};
pub use randomized::{randomized_svd, RandomizedOptions};
pub use robust::{robust_svd, RobustOptions};

use lsi_linalg::svd::Svd;
use lsi_sparse::CscMatrix;

/// Errors from the truncated-SVD drivers.
#[derive(Debug)]
pub enum Error {
    /// The requested rank exceeds `min(m, n)`.
    RankTooLarge {
        /// Requested rank.
        requested: usize,
        /// Maximum possible rank.
        max: usize,
    },
    /// An underlying dense kernel failed.
    Linalg(lsi_linalg::Error),
    /// The iteration stalled before finding `k` triplets (rank-deficient
    /// input with fewer than `k` nonzero singular values is reported
    /// through a successful result instead).
    Stalled {
        /// Triplets converged before the stall.
        converged: usize,
    },
    /// A non-finite value (NaN/Inf) escaped the operator or a recurrence
    /// scalar — the iteration's state is unusable from this point on.
    NonFinite {
        /// Which quantity went non-finite.
        what: &'static str,
        /// Lanczos step at which it was detected.
        step: usize,
    },
    /// An armed `lsi-fault` failpoint forced this failure (test/ops
    /// fault injection, never spontaneous).
    Fault {
        /// Name of the failpoint that fired.
        point: &'static str,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::RankTooLarge { requested, max } => {
                write!(f, "requested rank {requested} exceeds maximum {max}")
            }
            Error::Linalg(e) => write!(f, "dense kernel failure: {e}"),
            Error::Stalled { converged } => {
                write!(f, "Lanczos stalled with only {converged} converged triplets")
            }
            Error::NonFinite { what, step } => {
                write!(f, "non-finite {what} at Lanczos step {step}")
            }
            Error::Fault { point } => {
                write!(f, "fault injected at failpoint `{point}`")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<lsi_linalg::Error> for Error {
    fn from(e: lsi_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Ground-truth truncated SVD via densification + one-sided Jacobi.
///
/// Only sensible for small matrices; tests use it to validate the
/// iterative drivers.
pub fn dense_oracle(a: &CscMatrix, k: usize) -> Result<Svd> {
    let dense = a.to_dense();
    let svd = lsi_linalg::dense_svd(&dense)?;
    Ok(svd.truncate(k))
}
