//! Hardened truncated-SVD driver: Lanczos under a watchdog, with a
//! staged fallback ladder.
//!
//! [`lanczos_svd`] is the fast path, but it can fail in ways a
//! production pipeline must survive: a non-finite value escaping the
//! operator (hardware fault, corrupted input, injected via
//! `lsi-fault`), or a stagnating iteration (inconsistent operator,
//! hopeless tolerance). [`robust_svd`] converts those failures into
//! *degradation*:
//!
//! 1. **Lanczos** with the stagnation watchdog armed
//!    ([`LanczosOptions::stall_after`]) and every returned factor
//!    checked finite;
//! 2. **randomized subspace iteration** ([`randomized_svd`]) — slower
//!    to equal accuracy but structurally immune to Lanczos's recurrence
//!    pathologies, likewise finite-checked;
//! 3. **dense Jacobi** on an explicitly materialized operator — the
//!    last resort, gated on problem size.
//!
//! Every degradation is visible: the returned
//! [`LanczosReport::fallback`] names the rung that served the request,
//! a warn-level event fires, and `svd.fallback.{randomized,dense}.count`
//! tick in the metrics registry. Only configuration errors
//! ([`Error::RankTooLarge`]) and a ladder with no rung left propagate
//! as errors.

use lsi_linalg::svd::Svd;
use lsi_linalg::DenseMatrix;
use lsi_sparse::MatVec;

use crate::lanczos::{lanczos_svd, Fallback, LanczosOptions, LanczosReport};
use crate::randomized::{randomized_svd, RandomizedOptions};
use crate::{Error, Result};

/// Tuning for [`robust_svd`].
#[derive(Debug, Clone)]
pub struct RobustOptions {
    /// Options for the Lanczos rung. The default arms the stagnation
    /// watchdog at 64 progress-free convergence checks (= 512 steps at
    /// the default `check_every`), far beyond anything a healthy run
    /// exhibits before its basis budget ends.
    pub lanczos: LanczosOptions,
    /// Options for the randomized rung.
    pub randomized: RandomizedOptions,
    /// The dense rung materializes the full `m × n` operator; skip it
    /// when `m * n` exceeds this bound (the default, `1 << 22` ≈ 32 MB
    /// of doubles, covers every corpus in this workspace's test tier).
    pub dense_max_elems: usize,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            lanczos: LanczosOptions {
                stall_after: Some(64),
                ..LanczosOptions::default()
            },
            randomized: RandomizedOptions::default(),
            dense_max_elems: 1 << 22,
        }
    }
}

/// Every factor entry and singular value is finite (a decomposition
/// with a NaN/Inf anywhere is worse than no decomposition: it poisons
/// every query that touches it).
fn svd_is_finite(svd: &Svd) -> bool {
    if !svd.s.iter().all(|s| s.is_finite()) {
        return false;
    }
    for i in 0..svd.u.ncols() {
        if !svd.u.col(i).iter().all(|x| x.is_finite()) {
            return false;
        }
    }
    for i in 0..svd.v.ncols() {
        if !svd.v.col(i).iter().all(|x| x.is_finite()) {
            return false;
        }
    }
    true
}

/// Synthesize a report for a fallback rung: the Lanczos phase stats are
/// genuinely zero (the rung bypassed the recurrence entirely).
fn fallback_report(svd: &Svd, rung: Fallback, side_is_ata: bool) -> LanczosReport {
    LanczosReport {
        steps: 0,
        converged: svd.s.len(),
        accepted: svd.s.len(),
        restarts: 0,
        side_is_ata,
        gram: Default::default(),
        reorth: Default::default(),
        ritz: Default::default(),
        fallback: rung,
    }
}

/// Truncated SVD that degrades instead of failing: Lanczos →
/// randomized → dense, returning the first finite decomposition and a
/// report whose `fallback` field names the rung that produced it.
///
/// Errors surface only for configuration mistakes (`RankTooLarge`) or
/// when every rung failed or was gated off.
pub fn robust_svd<M: MatVec + ?Sized>(
    a: &M,
    k: usize,
    opts: &RobustOptions,
) -> Result<(Svd, LanczosReport)> {
    // No span of its own: the happy path must keep recording Lanczos
    // phases under the caller's span name (e.g. `build.svd.lanczos.*`),
    // which an extra stack level here would rename. Fallback rungs are
    // reported through counts and warn events instead.
    let side_is_ata = a.ncols() <= a.nrows();
    let first_failure = match lanczos_svd(a, k, &opts.lanczos) {
        Ok((svd, report)) => {
            if svd_is_finite(&svd) {
                return Ok((svd, report));
            }
            Error::NonFinite {
                what: "Lanczos result factor",
                step: report.steps,
            }
        }
        Err(e @ Error::RankTooLarge { .. }) => return Err(e),
        Err(e) => e,
    };
    lsi_obs::warn!(
        "robust_svd: Lanczos failed ({first_failure}); falling back to randomized SVD"
    );
    lsi_obs::count("svd.fallback.randomized.count", 1);
    match randomized_svd(a, k, &opts.randomized) {
        // An *empty* result for k > 0 is how the randomized driver
        // reports "every Ritz value sat at the noise floor" — on a
        // poisoned operator that means it saw garbage, not a zero
        // matrix, so it does not count as usable here.
        Ok(svd) if svd_is_finite(&svd) && (!svd.s.is_empty() || k == 0) => {
            let report = fallback_report(&svd, Fallback::Randomized, side_is_ata);
            return Ok((svd, report));
        }
        Ok(_) => lsi_obs::warn!(
            "robust_svd: randomized SVD produced non-finite or empty factors"
        ),
        Err(e) => lsi_obs::warn!("robust_svd: randomized SVD failed ({e})"),
    }
    let (m, n) = (a.nrows(), a.ncols());
    if m.saturating_mul(n) > opts.dense_max_elems {
        lsi_obs::warn!(
            "robust_svd: dense fallback gated off ({m}x{n} exceeds {} elements); \
             surfacing the original failure",
            opts.dense_max_elems
        );
        return Err(first_failure);
    }
    lsi_obs::count("svd.fallback.dense.count", 1);
    lsi_obs::warn!("robust_svd: falling back to dense Jacobi on the materialized operator");
    // Materialize column by column through the operator's own `apply`
    // (unit basis vectors), so the rung works for any `MatVec` — not
    // just explicit sparse matrices.
    let mut dense = DenseMatrix::zeros(m, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        a.apply(&e, dense.col_mut(j));
        e[j] = 0.0;
    }
    let svd = lsi_linalg::dense_svd(&dense)
        .map_err(Error::Linalg)?
        .truncate(k);
    if !svd_is_finite(&svd) {
        // Even the oracle saw non-finite data: the operator itself is
        // poisoned, and the most informative error is the first one.
        return Err(first_failure);
    }
    let report = fallback_report(&svd, Fallback::Dense, side_is_ata);
    Ok((svd, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_oracle;
    use lsi_sparse::gen::{random_term_doc, RowProfile};
    use lsi_sparse::CscMatrix;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// An operator that poisons its output with NaN — but only for
    /// non-basis inputs, so the dense rung (which materializes through
    /// unit vectors) can still see the clean matrix. `budget` bounds
    /// how many applies get poisoned (`usize::MAX` = every one).
    struct NanInjector<'a> {
        inner: &'a CscMatrix,
        budget: AtomicUsize,
    }

    impl NanInjector<'_> {
        fn poison(&self, x: &[f64], y: &mut [f64]) {
            let basis_vector = x.iter().filter(|v| **v != 0.0).count() <= 1;
            if !basis_vector
                && self
                    .budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_ok()
            {
                if let Some(y0) = y.first_mut() {
                    *y0 = f64::NAN;
                }
            }
        }
    }

    impl lsi_sparse::MatVec for NanInjector<'_> {
        fn nrows(&self) -> usize {
            self.inner.nrows()
        }
        fn ncols(&self) -> usize {
            self.inner.ncols()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply(x, y);
            self.poison(x, y);
        }
        fn apply_t(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply_t(x, y);
            self.poison(x, y);
        }
        fn nnz(&self) -> usize {
            self.inner.nnz()
        }
    }

    /// An operator whose `apply_t` is *not* the transpose of `apply`:
    /// the implied Gram operator is non-symmetric, so Lanczos Ritz
    /// values never settle — the canonical stagnation adversary.
    struct Inconsistent<'a> {
        inner: &'a CscMatrix,
    }

    impl lsi_sparse::MatVec for Inconsistent<'_> {
        fn nrows(&self) -> usize {
            self.inner.nrows()
        }
        fn ncols(&self) -> usize {
            self.inner.ncols()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply(x, y);
        }
        fn apply_t(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply_t(x, y);
            // Shear the result: y_i += 0.7 * y_{i+1}. Deterministic,
            // finite, and decisively not Aᵀ.
            for i in 0..y.len().saturating_sub(1) {
                y[i] += 0.7 * y[i + 1];
            }
        }
        fn nnz(&self) -> usize {
            self.inner.nnz()
        }
    }

    #[test]
    fn clean_operator_takes_the_lanczos_rung() {
        let a = random_term_doc(40, 30, 0.15, RowProfile::Uniform, 3, 7);
        let (svd, report) = robust_svd(&a, 5, &RobustOptions::default()).unwrap();
        assert_eq!(report.fallback, Fallback::None);
        assert!(report.steps > 0, "the Lanczos rung actually ran");
        let oracle = dense_oracle(&a, 5).unwrap();
        for (got, want) in svd.s.iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 1e-8 * want.max(1.0));
        }
    }

    #[test]
    fn nan_budget_falls_back_to_randomized() {
        // One poisoned apply kills the Lanczos attempt; the randomized
        // rung then runs against the (now clean) operator.
        let a = random_term_doc(40, 30, 0.15, RowProfile::Uniform, 3, 7);
        let adversary = NanInjector {
            inner: &a,
            budget: AtomicUsize::new(1),
        };
        let (svd, report) = robust_svd(&adversary, 4, &RobustOptions::default()).unwrap();
        assert_eq!(report.fallback, Fallback::Randomized);
        assert!(svd.s.iter().all(|s| s.is_finite()));
        // Usable result: singular values match the clean oracle.
        let oracle = dense_oracle(&a, 4).unwrap();
        // Subspace iteration at default settings is a coarser tool than
        // Lanczos — "usable" here means percent-level agreement, not
        // convergence-tolerance agreement.
        for (got, want) in svd.s.iter().zip(oracle.s.iter()) {
            assert!(
                (got - want).abs() < 2e-2 * want.max(1.0),
                "randomized fallback should still be usable: {got} vs {want}"
            );
        }
    }

    #[test]
    fn persistent_nan_falls_back_to_dense() {
        // Every non-basis apply is poisoned: Lanczos and randomized both
        // fail, and the dense rung (materializing via unit vectors)
        // recovers the true decomposition.
        let a = random_term_doc(25, 20, 0.2, RowProfile::Uniform, 3, 11);
        let adversary = NanInjector {
            inner: &a,
            budget: AtomicUsize::new(usize::MAX),
        };
        let (svd, report) = robust_svd(&adversary, 3, &RobustOptions::default()).unwrap();
        assert_eq!(report.fallback, Fallback::Dense);
        let oracle = dense_oracle(&a, 3).unwrap();
        for (got, want) in svd.s.iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 1e-8 * want.max(1.0));
        }
    }

    #[test]
    fn lanczos_alone_reports_nonfinite_error() {
        let a = random_term_doc(30, 20, 0.2, RowProfile::Uniform, 3, 3);
        let adversary = NanInjector {
            inner: &a,
            budget: AtomicUsize::new(usize::MAX),
        };
        let err = lanczos_svd(&adversary, 3, &LanczosOptions::default()).unwrap_err();
        assert!(
            matches!(err, Error::NonFinite { .. }),
            "expected NonFinite, got {err:?}"
        );
    }

    #[test]
    fn stagnating_operator_trips_the_watchdog_and_degrades() {
        let a = random_term_doc(60, 50, 0.15, RowProfile::Uniform, 3, 13);
        let adversary = Inconsistent { inner: &a };
        // Directly: the watchdog converts endless iteration into a
        // typed stall. `max_steps` must stay below the Gram dimension
        // (50): exhausting the whole space makes the tridiagonal
        // problem exact, which legitimately marks everything converged.
        let opts = LanczosOptions {
            stall_after: Some(6),
            max_steps: Some(40),
            tol: 1e-14,
            check_every: 1,
            ..LanczosOptions::default()
        };
        match lanczos_svd(&adversary, 5, &opts) {
            Err(Error::Stalled { .. }) => {}
            Ok((_, report)) => panic!(
                "non-symmetric Gram should not converge cleanly: {report:?}"
            ),
            Err(other) => panic!("expected Stalled, got {other:?}"),
        }
        // Through the ladder: robust_svd still hands back a finite,
        // flagged decomposition.
        let robust_opts = RobustOptions {
            lanczos: opts,
            ..RobustOptions::default()
        };
        let (svd, report) = robust_svd(&adversary, 5, &robust_opts).unwrap();
        assert_ne!(report.fallback, Fallback::None);
        assert!(svd.s.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn dense_rung_respects_the_size_gate() {
        let a = random_term_doc(25, 20, 0.2, RowProfile::Uniform, 3, 11);
        let adversary = NanInjector {
            inner: &a,
            budget: AtomicUsize::new(usize::MAX),
        };
        let opts = RobustOptions {
            dense_max_elems: 10, // 25*20 = 500 > 10: gated off
            ..RobustOptions::default()
        };
        let err = robust_svd(&adversary, 3, &opts).unwrap_err();
        assert!(
            matches!(err, Error::NonFinite { .. }),
            "the original Lanczos failure should surface, got {err:?}"
        );
    }

    #[test]
    fn rank_too_large_is_not_retried() {
        let a = random_term_doc(10, 8, 0.3, RowProfile::Uniform, 2, 5);
        let err = robust_svd(&a, 9, &RobustOptions::default()).unwrap_err();
        assert!(matches!(err, Error::RankTooLarge { requested: 9, max: 8 }));
    }
}
