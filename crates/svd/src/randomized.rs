//! Randomized subspace-iteration SVD.
//!
//! A modern alternative to Lanczos (Halko–Martinsson–Tropp style):
//! sketch the range with a Gaussian test matrix, optionally run power
//! iterations to sharpen the spectrum, orthonormalize, and solve the
//! small projected problem densely. Included as the ablation baseline
//! the DESIGN document calls for — the benchmark compares its
//! product count and accuracy against the Lanczos driver on the same
//! matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_linalg::qr::mgs_orthonormalize;
use lsi_linalg::svd::Svd;
use lsi_linalg::{dense_svd, ops, vecops, DenseMatrix};
use lsi_sparse::MatVec;

use crate::{Error, Result};

/// Options for [`randomized_svd`].
#[derive(Debug, Clone)]
pub struct RandomizedOptions {
    /// Oversampling beyond the target rank (default 10).
    pub oversample: usize,
    /// Number of power iterations (default 2); each costs one extra
    /// round trip `A Aᵀ` but sharpens decaying spectra considerably.
    pub power_iters: usize,
    /// RNG seed (deterministic in this seed).
    pub seed: u64,
}

impl Default for RandomizedOptions {
    fn default() -> Self {
        RandomizedOptions {
            oversample: 10,
            power_iters: 2,
            seed: 0xDECADE,
        }
    }
}

/// Approximate truncated SVD of `a` with target rank `k`.
pub fn randomized_svd<M: MatVec + ?Sized>(
    a: &M,
    k: usize,
    opts: &RandomizedOptions,
) -> Result<Svd> {
    let _span = lsi_obs::span("randomized_svd");
    let m = a.nrows();
    let n = a.ncols();
    let max_rank = m.min(n);
    if k > max_rank {
        return Err(Error::RankTooLarge {
            requested: k,
            max: max_rank,
        });
    }
    if k == 0 {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            v: DenseMatrix::zeros(n, 0),
        });
    }
    let l = (k + opts.oversample).min(max_rank);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Y = A * Omega, Omega n x l uniform(-0.5, 0.5).
    let mut y = DenseMatrix::zeros(m, l);
    let mut omega_col = vec![0.0; n];
    for j in 0..l {
        for v in omega_col.iter_mut() {
            *v = rng.random::<f64>() - 0.5;
        }
        a.apply(&omega_col, y.col_mut(j));
    }

    // Power iterations with re-orthonormalization for stability:
    // Y <- A (Aᵀ Q) after Q = orth(Y).
    let mut tmp_n = vec![0.0; n];
    for _ in 0..opts.power_iters {
        mgs_orthonormalize(&mut y);
        let mut z = DenseMatrix::zeros(n, l);
        for j in 0..l {
            a.apply_t(y.col(j), &mut tmp_n);
            z.col_mut(j).copy_from_slice(&tmp_n);
        }
        mgs_orthonormalize(&mut z);
        for j in 0..l {
            a.apply(z.col(j), y.col_mut(j));
        }
    }
    let kept = mgs_orthonormalize(&mut y);
    // Drop dependent columns (rank < l).
    let q_cols: Vec<Vec<f64>> = (0..l)
        .filter(|&j| kept[j])
        .map(|j| y.col(j).to_vec())
        .collect();
    if q_cols.is_empty() {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            v: DenseMatrix::zeros(n, 0),
        });
    }
    let q = DenseMatrix::from_cols(&q_cols).expect("uniform column length");
    let ql = q.ncols();

    // B = Qᵀ A  (ql x n), computed row-wise via Aᵀ q_j.
    let mut b = DenseMatrix::zeros(ql, n);
    for j in 0..ql {
        a.apply_t(q.col(j), &mut tmp_n);
        for (c, &val) in tmp_n.iter().enumerate() {
            b.set(j, c, val);
        }
    }

    let small = dense_svd(&b)?;
    let take = k.min(small.s.len());
    // Filter numerically-zero singular values like the Lanczos driver.
    let scale = small.s.first().copied().unwrap_or(0.0);
    let rank_cut = small.s[..take]
        .iter()
        .take_while(|&&sv| sv > scale * 1e-10 && sv > 0.0)
        .count();

    let u = ops::matmul(&q, &small.u.truncate_cols(rank_cut))?;
    let v = small.v.truncate_cols(rank_cut);
    let s = small.s[..rank_cut].to_vec();
    // Normalize U columns (matmul of orthonormal factors is orthonormal
    // up to rounding; cheap cleanup keeps tests tight).
    let mut u = u;
    for j in 0..u.ncols() {
        vecops::normalize(u.col_mut(j));
    }
    Ok(Svd { u, s, v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_oracle;
    use lsi_sparse::gen::{planted_spectrum, random_term_doc, RowProfile};

    #[test]
    fn randomized_matches_oracle_on_decaying_spectrum() {
        let (a, sigmas) = planted_spectrum(50, 35, &[10.0, 6.0, 3.0, 1.0, 0.3], 21);
        let svd = randomized_svd(&a, 5, &RandomizedOptions::default()).unwrap();
        for (got, want) in svd.s.iter().zip(sigmas.iter()) {
            assert!((got - want).abs() < 1e-6 * want.max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn randomized_close_to_oracle_on_random_matrix() {
        let a = random_term_doc(60, 40, 0.15, RowProfile::Uniform, 3, 33);
        let svd = randomized_svd(&a, 6, &RandomizedOptions::default()).unwrap();
        let oracle = dense_oracle(&a, 6).unwrap();
        // Randomized SVD is approximate on flat spectra; 1 % is enough
        // to show correctness of the machinery.
        for (got, want) in svd.s.iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 0.01 * want.max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn randomized_rank_deficient() {
        let (a, _) = planted_spectrum(20, 20, &[5.0, 2.0], 5);
        let svd = randomized_svd(&a, 6, &RandomizedOptions::default()).unwrap();
        assert_eq!(svd.s.len(), 2, "only the two true triplets survive");
    }

    #[test]
    fn randomized_deterministic_in_seed() {
        let a = random_term_doc(30, 30, 0.2, RowProfile::Uniform, 2, 8);
        let o = RandomizedOptions::default();
        let s1 = randomized_svd(&a, 4, &o).unwrap();
        let s2 = randomized_svd(&a, 4, &o).unwrap();
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn randomized_rejects_oversized_rank() {
        let a = random_term_doc(5, 4, 0.5, RowProfile::Uniform, 2, 4);
        assert!(randomized_svd(&a, 10, &RandomizedOptions::default()).is_err());
    }

    #[test]
    fn randomized_k_zero() {
        let a = random_term_doc(5, 4, 0.5, RowProfile::Uniform, 2, 4);
        let svd = randomized_svd(&a, 0, &RandomizedOptions::default()).unwrap();
        assert!(svd.s.is_empty());
    }

    #[test]
    fn randomized_zero_matrix() {
        let a = lsi_sparse::CscMatrix::zeros(6, 6);
        let svd = randomized_svd(&a, 3, &RandomizedOptions::default()).unwrap();
        assert!(svd.s.is_empty());
    }
}
