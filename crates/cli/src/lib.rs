//! Library backing the `lsi` command-line tool: argument parsing and
//! the individual subcommand implementations, factored out so they are
//! unit-testable without spawning processes.
//!
//! Subcommands:
//!
//! * `lsi index` — build an LSI database from text files or a TSV,
//! * `lsi query` — rank documents for a free-text query,
//! * `lsi terms` — nearest terms (the automatic-thesaurus view, §5.4),
//! * `lsi add` — grow an existing database by folding-in or
//!   SVD-updating,
//! * `lsi info` — describe a stored database.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command};

/// CLI error type: a message for the user plus a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// A runtime failure (exit code 1).
    pub fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<lsi_core::Error> for CliError {
    fn from(e: lsi_core::Error) -> Self {
        CliError::runtime(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CliError>;
