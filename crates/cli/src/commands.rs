//! Subcommand implementations. Each returns its report as a `String`
//! so the binary stays a thin shell and tests can assert on output.

use std::io::Write as _;
use std::path::Path;

use lsi_core::{IndexPolicy, LsiModel, LsiOptions, Precision};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

use crate::{CliError, Result};

/// Parse a `--weighting` name into a scheme.
pub fn weighting_by_name(name: &str) -> Result<TermWeighting> {
    match name {
        "raw" => Ok(TermWeighting::none()),
        "log-entropy" => Ok(TermWeighting::log_entropy()),
        "tf-idf" => Ok(TermWeighting::tf_idf()),
        other => Err(CliError::usage(format!("unknown weighting {other:?}"))),
    }
}

/// Parse a `--precision` name into a scoring mode.
pub fn precision_by_name(name: &str) -> Result<Precision> {
    Precision::parse(name)
        .ok_or_else(|| CliError::usage(format!("unknown precision {name:?}")))
}

/// Load documents from input paths: `.tsv` files contribute one
/// document per `id<TAB>text` line, anything else is one document whose
/// id is the file stem.
pub fn load_corpus(inputs: &[String]) -> Result<Corpus> {
    let mut corpus = Corpus::new();
    for input in inputs {
        let path = Path::new(input);
        let content = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {input}: {e}")))?;
        if path.extension().and_then(|e| e.to_str()) == Some("tsv") {
            for (lineno, line) in content.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let Some((id, text)) = line.split_once('\t') else {
                    return Err(CliError::runtime(format!(
                        "{input}:{}: expected id<TAB>text",
                        lineno + 1
                    )));
                };
                corpus.push(Document::new(id.trim(), text.trim()));
            }
        } else {
            let id = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(input)
                .to_string();
            corpus.push(Document::new(id, content));
        }
    }
    if corpus.is_empty() {
        return Err(CliError::runtime("no documents found in the inputs"));
    }
    Ok(corpus)
}

/// Load a stored database.
pub fn load_model(db: &str) -> Result<LsiModel> {
    let json = std::fs::read_to_string(db)
        .map_err(|e| CliError::runtime(format!("cannot read database {db}: {e}")))?;
    Ok(LsiModel::from_json(&json)?)
}

/// Save a database atomically: write to a sibling temp file, sync, then
/// rename over the target. A crash or injected fault mid-write leaves
/// either the old database or nothing at the target path — never a
/// truncated file (which the checksum trailer would reject on load,
/// but the previous good database would already be gone).
pub fn save_model(model: &LsiModel, out: &str) -> Result<()> {
    let json = model.to_json()?;
    let out_path = Path::new(out);
    let tmp_path = std::path::PathBuf::from(format!("{out}.tmp"));
    let write_err =
        |e: std::io::Error| CliError::runtime(format!("cannot write {out}: {e}"));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp_path, out_path)
    })();
    if let Err(e) = result {
        std::fs::remove_file(&tmp_path).ok();
        return Err(write_err(e));
    }
    Ok(())
}

/// Route top-k scoring through the cluster-pruned index at the given
/// probe depth, training the index if the model has none. A probe
/// depth beyond the list count is a usage error (exit 2), like
/// `--nprobe 0` — the caller asked for something the index cannot do.
fn apply_nprobe(model: &mut LsiModel, nprobe: usize) -> Result<()> {
    model.set_index_policy(IndexPolicy::Pruned { nprobe })?;
    let n_lists = model.index_n_lists().unwrap_or(0);
    if nprobe > n_lists {
        return Err(CliError::usage(format!(
            "--nprobe {nprobe} exceeds the index's {n_lists} lists \
             (use --nprobe {n_lists} for an exact-equivalent scan)"
        )));
    }
    Ok(())
}

/// `lsi index`.
#[allow(clippy::too_many_arguments)]
pub fn cmd_index(
    inputs: &[String],
    out: &str,
    k: usize,
    min_df: usize,
    weighting: &str,
    phrases: bool,
    precision: &str,
    nprobe: Option<usize>,
) -> Result<String> {
    let corpus = load_corpus(inputs)?;
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df,
            word_ngrams: if phrases { 2 } else { 1 },
            ..Default::default()
        },
        weighting: weighting_by_name(weighting)?,
        svd_seed: 0x5EED,
    };
    let (mut model, report) = LsiModel::build(&corpus, &options)?;
    model.set_precision(precision_by_name(precision)?);
    let index_note = match nprobe {
        Some(n) => {
            apply_nprobe(&mut model, n)?;
            format!(
                "; trained cluster index ({} lists, nprobe={n})",
                model.index_n_lists().unwrap_or(0)
            )
        }
        None => String::new(),
    };
    save_model(&model, out)?;
    Ok(format!(
        "indexed {} documents, {} terms -> {} factors ({} Lanczos steps){index_note}; wrote {}",
        model.n_docs(),
        model.n_terms(),
        model.k(),
        report.steps,
        out
    ) + "\n")
}

/// `lsi query`.
pub fn cmd_query(
    db: &str,
    text: &str,
    top: usize,
    threshold: Option<f64>,
    precision: Option<&str>,
    nprobe: Option<usize>,
) -> Result<String> {
    let mut model = load_model(db)?;
    if let Some(p) = precision {
        model.set_precision(precision_by_name(p)?);
    }
    if let Some(n) = nprobe {
        apply_nprobe(&mut model, n)?;
    }
    // A cosine threshold needs every document's score; a plain top-N
    // goes through the partial selection (and, under a reduced
    // precision, the compressed candidate sweep or the cluster-pruned
    // probe).
    let ranked = match threshold {
        Some(t) => model.query(text)?.at_threshold(t),
        None => model.query_top(text, top)?,
    };
    let mut out = String::new();
    for m in ranked.top(top).matches {
        out.push_str(&format!("{:.4}\t{}\n", m.cosine, m.id));
    }
    if out.is_empty() {
        out.push_str("(no documents matched)\n");
    }
    Ok(out)
}

/// `lsi terms`.
pub fn cmd_terms(db: &str, word: &str, top: usize) -> Result<String> {
    let model = load_model(db)?;
    let qhat = model.project_text(word)?;
    if qhat.iter().all(|&x| x == 0.0) {
        return Err(CliError::runtime(format!("{word:?} is not an indexed term")));
    }
    let mut out = String::new();
    for (_, name, cos) in model.nearest_terms(&qhat, top)? {
        out.push_str(&format!("{cos:.4}\t{name}\n"));
    }
    Ok(out)
}

/// `lsi add`.
pub fn cmd_add(db: &str, inputs: &[String], out: &str, method: &str) -> Result<String> {
    let mut model = load_model(db)?;
    let corpus = load_corpus(inputs)?;
    match method {
        "fold" => model.fold_in_documents(&corpus)?,
        "update" => {
            let d = model.vocabulary().count_matrix(&corpus);
            let ids: Vec<String> = corpus.docs.iter().map(|d| d.id.clone()).collect();
            model.svd_update_documents(&d, &ids)?;
        }
        other => return Err(CliError::usage(format!("unknown method {other:?}"))),
    }
    save_model(&model, out)?;
    Ok(format!(
        "added {} documents by {method}; database now holds {} docs; wrote {}",
        corpus.len(),
        model.n_docs(),
        out
    ) + "\n")
}

/// Everything `lsi serve` needs beyond the database path, mirroring
/// the parsed flags (see [`crate::args::Command::Serve`]).
#[derive(Debug, Clone)]
pub struct ServeParams {
    pub addr: String,
    pub port: u16,
    pub threads: usize,
    pub queue_depth: usize,
    pub max_batch: usize,
    pub timeout_ms: u64,
    pub max_timeout_ms: u64,
    pub degrade: bool,
    pub precision: Option<String>,
    pub nprobe: Option<usize>,
}

/// `lsi serve`: load the model once, bind, announce the address on
/// stdout (flushed, so wrappers can scrape the port before the first
/// request), then serve until SIGTERM/SIGINT. The returned report —
/// the command's stdout — is the final serving `RunReport`.
pub fn cmd_serve(db: &str, params: &ServeParams) -> Result<String> {
    let mut model = load_model(db)?;
    if let Some(p) = &params.precision {
        model.set_precision(precision_by_name(p)?);
    }
    if let Some(n) = params.nprobe {
        apply_nprobe(&mut model, n)?;
    }
    if params.degrade {
        // The degradation ladder falls back to cluster-pruned probes
        // under load; train the index up front so the first overloaded
        // batch does not pay the k-means build.
        model.train_index()?;
    }
    let server = lsi_serve::Server::bind(lsi_serve::ServeConfig {
        addr: params.addr.clone(),
        port: params.port,
        threads: params.threads,
        queue_depth: params.queue_depth,
        max_batch: params.max_batch,
        default_timeout_ms: params.timeout_ms,
        max_timeout_ms: params.max_timeout_ms.max(params.timeout_ms),
        degrade: params.degrade,
        ..lsi_serve::ServeConfig::default()
    })
    .map_err(|e| {
        CliError::runtime(format!("cannot bind {}:{}: {e}", params.addr, params.port))
    })?;
    lsi_serve::install_signal_handlers();
    {
        // The listening line goes out before run() blocks; stdout is
        // otherwise silent until the final report after drain.
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "listening on {}", server.local_addr());
        let _ = out.flush();
    }
    let report = server.run(model);
    let mut json = report.to_json().to_string_compact();
    json.push('\n');
    Ok(json)
}

/// `lsi info`.
pub fn cmd_info(db: &str) -> Result<String> {
    let model = load_model(db)?;
    let loss = model.orthogonality_loss()?;
    let folded = model
        .doc_origins()
        .iter()
        .filter(|o| matches!(o, lsi_core::model::DocOrigin::FoldedIn))
        .count();
    let index_line = match model.index_n_lists() {
        Some(n_lists) => format!(
            "{}, {} lists ({} index bytes)",
            model.index_policy().describe(),
            n_lists,
            model.index_resident_bytes().unwrap_or(0)
        ),
        None => model.index_policy().describe(),
    };
    Ok(format!(
        "documents : {}  ({} folded-in)\n\
         terms     : {}\n\
         factors   : {}\n\
         precision : {}  ({} scoring bytes)\n\
         index     : {index_line}\n\
         sigma_1   : {:.6}\n\
         sigma_k   : {:.6}\n\
         V-defect  : {:.3e}  (||V^T V - I||_2, grows with folding-in)\n",
        model.n_docs(),
        folded,
        model.n_terms(),
        model.k(),
        model.precision().name(),
        model.scoring_resident_bytes(),
        model.singular_values().first().copied().unwrap_or(0.0),
        model.singular_values().last().copied().unwrap_or(0.0),
        loss.doc_defect
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lsi-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, content: &str) -> String {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn index_query_info_roundtrip() {
        let dir = tmpdir();
        let tsv = write(
            &dir,
            "docs.tsv",
            "cars1\tcar engine wheel motor car\n\
             cars2\tautomobile engine motor chassis\n\
             cars3\tcar automobile driver wheel\n\
             zoo1\telephant lion zebra elephant\n\
             zoo2\tlion zebra giraffe elephant\n\
             zoo3\tzebra giraffe lion safari\n",
        );
        let db = dir.join("db.json").to_string_lossy().into_owned();
        let msg = cmd_index(&[tsv], &db, 2, 2, "raw", false, "f64", None).unwrap();
        assert!(msg.contains("6 documents"), "{msg}");

        let q = cmd_query(&db, "lion zebra", 3, None, None, None).unwrap();
        let first = q.lines().next().unwrap();
        assert!(first.contains("zoo"), "top hit should be a zoo doc: {q}");

        let info = cmd_info(&db).unwrap();
        assert!(info.contains("documents : 6"));
        assert!(info.contains("factors   : 2"));

        let terms = cmd_terms(&db, "elephant", 3).unwrap();
        assert!(terms.lines().count() == 3);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn precision_persists_and_overrides() {
        let dir = tmpdir();
        let tsv = write(
            &dir,
            "docs.tsv",
            "cars1\tcar engine wheel motor car\n\
             cars2\tautomobile engine motor chassis\n\
             cars3\tcar automobile driver wheel\n\
             zoo1\telephant lion zebra elephant\n\
             zoo2\tlion zebra giraffe elephant\n\
             zoo3\tzebra giraffe lion safari\n",
        );
        let db = dir.join("db.json").to_string_lossy().into_owned();
        cmd_index(&[tsv], &db, 2, 2, "raw", false, "f32", None).unwrap();
        // The mode survives the save/load roundtrip...
        let info = cmd_info(&db).unwrap();
        assert!(info.contains("precision : f32"), "{info}");
        // ...queries serve through it, agreeing with the exact scan...
        let compressed = cmd_query(&db, "lion zebra", 3, None, None, None).unwrap();
        let exact = cmd_query(&db, "lion zebra", 3, None, Some("f64"), None).unwrap();
        assert_eq!(compressed, exact);
        // ...and a per-run override does not touch the stored database.
        let quantized = cmd_query(&db, "lion zebra", 3, None, Some("i8"), None).unwrap();
        assert_eq!(quantized.lines().count(), 3);
        let info = cmd_info(&db).unwrap();
        assert!(info.contains("precision : f32"), "{info}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nprobe_persists_overrides_and_validates() {
        let dir = tmpdir();
        let tsv = write(
            &dir,
            "docs.tsv",
            "cars1\tcar engine wheel motor car\n\
             cars2\tautomobile engine motor chassis\n\
             cars3\tcar automobile driver wheel\n\
             zoo1\telephant lion zebra elephant\n\
             zoo2\tlion zebra giraffe elephant\n\
             zoo3\tzebra giraffe lion safari\n",
        );
        let db = dir.join("db.json").to_string_lossy().into_owned();
        let db_flat = dir.join("flat.json").to_string_lossy().into_owned();
        // 6 docs -> round(sqrt(6)) = 2 lists; nprobe=2 probes them all.
        let msg =
            cmd_index(&[tsv.clone()], &db, 2, 2, "raw", false, "f64", Some(2)).unwrap();
        assert!(msg.contains("trained cluster index"), "{msg}");
        cmd_index(&[tsv], &db_flat, 2, 2, "raw", false, "f64", None).unwrap();
        let info = cmd_info(&db).unwrap();
        assert!(info.contains("pruned (nprobe=2)"), "{info}");
        // Full-depth pruned output matches the exact scan exactly.
        let pruned = cmd_query(&db, "lion zebra", 3, None, None, None).unwrap();
        let exact = cmd_query(&db_flat, "lion zebra", 3, None, None, None).unwrap();
        assert_eq!(pruned, exact);
        // A per-run --nprobe beyond the list count is a usage error...
        let e = cmd_query(&db, "lion zebra", 3, None, None, Some(99)).unwrap_err();
        assert_eq!(e.code, 2, "{e}");
        // ...while a valid per-run override serves (and leaves the
        // stored policy alone).
        let narrowed = cmd_query(&db, "lion zebra", 3, None, None, Some(1)).unwrap();
        assert!(!narrowed.is_empty());
        assert!(pruned.lines().count() >= narrowed.lines().count());
        let info = cmd_info(&db).unwrap();
        assert!(info.contains("pruned (nprobe=2)"), "{info}");
        // index-time validation mirrors it.
        let db2 = dir.join("db2.json").to_string_lossy().into_owned();
        let tsv2 = write(&dir, "d2.tsv", "a\tapple banana\nb\tbanana apple\nc\tapple cherry banana\n");
        let e = cmd_index(&[tsv2], &db2, 1, 1, "raw", false, "f64", Some(50)).unwrap_err();
        assert_eq!(e.code, 2, "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_by_update_grows_database() {
        let dir = tmpdir();
        let tsv = write(
            &dir,
            "docs.tsv",
            "a\tapple banana apple cherry\nb\tbanana cherry date\nc\tapple cherry date\nd\tdate banana apple\n",
        );
        let db = dir.join("db.json").to_string_lossy().into_owned();
        cmd_index(&[tsv], &db, 2, 2, "log-entropy", false, "f64", None).unwrap();

        let newdoc = write(&dir, "fresh.txt", "banana date cherry banana");
        let db2 = dir.join("db2.json").to_string_lossy().into_owned();
        let msg = cmd_add(&db, std::slice::from_ref(&newdoc), &db2, "update").unwrap();
        assert!(msg.contains("5 docs"), "{msg}");

        let db3 = dir.join("db3.json").to_string_lossy().into_owned();
        let msg = cmd_add(&db, &[newdoc], &db3, "fold").unwrap();
        assert!(msg.contains("fold"), "{msg}");
        let info = cmd_info(&db3).unwrap();
        assert!(info.contains("(1 folded-in)"), "{info}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn txt_files_use_stem_as_id() {
        let dir = tmpdir();
        let f1 = write(&dir, "alpha.txt", "apple banana apple");
        let f2 = write(&dir, "beta.txt", "banana apple cherry banana");
        let db = dir.join("db.json").to_string_lossy().into_owned();
        cmd_index(&[f1, f2], &db, 1, 1, "raw", false, "f64", None).unwrap();
        let q = cmd_query(&db, "banana", 2, None, None, None).unwrap();
        assert!(q.contains("alpha") && q.contains("beta"), "{q}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_validates_before_listening() {
        let params = ServeParams {
            addr: "127.0.0.1".into(),
            port: 0,
            threads: 2,
            queue_depth: 8,
            max_batch: 4,
            timeout_ms: 1_000,
            max_timeout_ms: 5_000,
            degrade: true,
            precision: None,
            nprobe: None,
        };
        // A missing database is a runtime error before any socket work.
        let e = cmd_serve("/nonexistent/db.json", &params).unwrap_err();
        assert_eq!(e.code, 1, "{e}");

        let dir = tmpdir();
        let tsv = write(&dir, "d.tsv", "a\tapple banana\nb\tbanana apple\nc\tapple cherry\n");
        let db = dir.join("db.json").to_string_lossy().into_owned();
        cmd_index(&[tsv], &db, 1, 1, "raw", false, "f64", None).unwrap();
        // An impossible probe depth is the same usage error as `query`.
        let e = cmd_serve(
            &db,
            &ServeParams {
                nprobe: Some(99),
                ..params.clone()
            },
        )
        .unwrap_err();
        assert_eq!(e.code, 2, "{e}");
        // An unbindable address is a typed runtime error, not a panic.
        let e = cmd_serve(
            &db,
            &ServeParams {
                addr: "198.51.100.1".into(), // TEST-NET-2: not routable here
                ..params
            },
        )
        .unwrap_err();
        assert_eq!(e.code, 1, "{e}");
        assert!(e.to_string().contains("cannot bind"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(load_model("/nonexistent/path.json").is_err());
        assert!(load_corpus(&["/nonexistent/file.txt".to_string()]).is_err());
        assert!(weighting_by_name("magic").is_err());
        let dir = tmpdir();
        let bad = write(&dir, "bad.tsv", "no-tab-here\n");
        assert!(load_corpus(&[bad]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terms_rejects_unknown_words() {
        let dir = tmpdir();
        let tsv = write(&dir, "d.tsv", "a\tapple banana\nb\tbanana apple\n");
        let db = dir.join("db.json").to_string_lossy().into_owned();
        cmd_index(&[tsv], &db, 1, 1, "raw", false, "f64", None).unwrap();
        assert!(cmd_terms(&db, "unicorn", 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phrases_flag_indexes_word_pairs() {
        let dir = tmpdir();
        let tsv = write(
            &dir,
            "d.tsv",
            "a\thigh blood pressure danger\nb\thigh blood pressure treatment\nc\tblood test results\n",
        );
        let db = dir.join("db.json").to_string_lossy().into_owned();
        let msg_plain = cmd_index(std::slice::from_ref(&tsv), &db, 2, 2, "raw", false, "f64", None).unwrap();
        let plain_terms: usize = msg_plain
            .split(" terms")
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let msg_phrases = cmd_index(&[tsv], &db, 2, 2, "raw", true, "f64", None).unwrap();
        let phrase_terms: usize = msg_phrases
            .split(" terms")
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            phrase_terms > plain_terms,
            "phrases should add terms: {plain_terms} -> {phrase_terms}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
