//! Hand-rolled argument parsing (no external dependency).

use crate::{CliError, Result};

/// Weighting scheme names accepted by `--weighting`.
pub const WEIGHTING_NAMES: &[&str] = &["raw", "log-entropy", "tf-idf"];

/// Scoring precision names accepted by `--precision`.
pub const PRECISION_NAMES: &[&str] = &["f64", "f32", "i8"];

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `lsi index <inputs...> --out FILE [--k N] [--min-df N]
    /// [--weighting NAME] [--phrases]`
    Index {
        /// Input paths: `.txt` files (one document each) or `.tsv`
        /// files (`id<TAB>text` per line).
        inputs: Vec<String>,
        /// Output database path.
        out: String,
        /// Factor count.
        k: usize,
        /// Minimum document frequency.
        min_df: usize,
        /// Weighting scheme name.
        weighting: String,
        /// Index adjacent word pairs as phrase terms.
        phrases: bool,
        /// Scoring precision persisted with the database.
        precision: String,
        /// Probe depth: train a cluster-pruned index and persist a
        /// `Pruned { nprobe }` policy with the database.
        nprobe: Option<usize>,
    },
    /// `lsi query <db> <text...> [--top N] [--threshold T]
    /// [--precision P] [--nprobe N]`
    Query {
        /// Database path.
        db: String,
        /// Query text.
        text: String,
        /// Number of results.
        top: usize,
        /// Optional cosine threshold.
        threshold: Option<f64>,
        /// Optional scoring-precision override for this query run.
        precision: Option<String>,
        /// Optional probe-depth override: route top-k scoring through
        /// the cluster index, probing this many lists.
        nprobe: Option<usize>,
    },
    /// `lsi terms <db> <word> [--top N]`
    Terms {
        /// Database path.
        db: String,
        /// Probe word.
        word: String,
        /// Number of neighbours.
        top: usize,
    },
    /// `lsi add <db> <inputs...> --out FILE [--method fold|update]`
    Add {
        /// Database path.
        db: String,
        /// New document inputs.
        inputs: Vec<String>,
        /// Output database path.
        out: String,
        /// `fold` or `update`.
        method: String,
    },
    /// `lsi info <db>`
    Info {
        /// Database path.
        db: String,
    },
    /// `lsi serve <db> [--addr A] [--port N] [--threads N]
    /// [--queue-depth N] [--max-batch N] [--timeout-ms N]
    /// [--max-timeout-ms N] [--no-degrade] [--precision P] [--nprobe N]`
    Serve {
        /// Database path.
        db: String,
        /// Bind address (default 127.0.0.1 — the daemon has no auth).
        addr: String,
        /// Bind port; 0 picks an ephemeral port.
        port: u16,
        /// Connection-worker count.
        threads: usize,
        /// Scoring-queue bound; queries past it shed with 503.
        queue_depth: usize,
        /// Max queries coalesced into one scoring batch.
        max_batch: usize,
        /// Default per-request deadline (ms).
        timeout_ms: u64,
        /// Hard cap on client-requested deadlines (ms).
        max_timeout_ms: u64,
        /// Whether the batcher walks the degradation ladder under load
        /// (`--no-degrade` turns it off).
        degrade: bool,
        /// Optional scoring-precision override for the serving run.
        precision: Option<String>,
        /// Optional probe-depth override: serve through the
        /// cluster-pruned index at this depth.
        nprobe: Option<usize>,
    },
    /// `lsi help` or `--help`.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
lsi — Latent Semantic Indexing toolbox

usage:
  lsi index  <inputs...> --out DB [--k N] [--min-df N] [--weighting W] [--phrases]
             [--precision P] [--nprobe N]
  lsi query  <DB> <text...> [--top N] [--threshold T] [--precision P] [--nprobe N]
  lsi terms  <DB> <word> [--top N]
  lsi add    <DB> <inputs...> --out DB2 [--method fold|update]
  lsi info   <DB>
  lsi serve  <DB> [--addr A] [--port N] [--threads N] [--queue-depth N]
             [--max-batch N] [--timeout-ms N] [--max-timeout-ms N]
             [--no-degrade] [--precision P] [--nprobe N]

global flags (any subcommand):
  --metrics        print a timing/flop report to stderr after the command
  --metrics=json   same, as a machine-readable JSON document
  --trace=FILE     write a Chrome-trace JSON of all spans (with per-span
                   alloc/flop attribution and pool-worker lanes) to FILE;
                   open in chrome://tracing or https://ui.perfetto.dev

inputs are .txt files (one document each) or .tsv files (id<TAB>text per line).
weighting W: raw | log-entropy (default) | tf-idf
precision P: f64 (default, exact scan) | f32 | i8 — reduced-precision candidate
  sweep with exact f64 re-rank of the top hits; `index` persists the mode,
  `query` overrides it for one run.
nprobe N: cluster-pruned retrieval — score ~sqrt(n_docs) centroid lists and sweep
  only the N best lists' documents (N >= 1; N = number of lists reproduces the
  exact scan bit-for-bit). `index` trains and persists the index with the
  policy, `query` overrides the probe depth (training the index on the fly if
  the database has none).
serve: HTTP/1.1 daemon over a persistent in-memory model (default 127.0.0.1:7171).
  GET /query?q=TEXT[&top=N][&timeout_ms=N], POST /query with the same JSON keys,
  GET /healthz | /readyz | /stats. Concurrent queries coalesce into one scoring
  batch; past --queue-depth the server sheds with 503 + Retry-After; SIGTERM
  drains in-flight requests and prints a final JSON report to stdout.
set RUST_LSI_LOG=off|error|warn|info|debug|trace to filter diagnostics (default warn).
set RUST_LSI_TRACE=pat[,pat...] to keep only matching spans in --trace output
  (`score.*` keeps a subtree, `query` one span; default: everything).
set LSI_QUERY_LOG=FILE (or `-` for stderr) to append one JSON line per query
  (trace id, phase latencies, precision path, candidates, score margin).
";

/// How the user asked for the metrics report, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// No `--metrics` flag: instrumentation stays disabled.
    #[default]
    Off,
    /// `--metrics`: human-readable table on stderr.
    Table,
    /// `--metrics=json`: JSON document on stderr.
    Json,
}

/// Strip the global `--metrics[=json]` flag from `args` before
/// subcommand parsing (which rejects unrecognized `--` flags).
pub fn take_metrics(args: &mut Vec<String>) -> Result<MetricsMode> {
    let mut mode = MetricsMode::Off;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                mode = MetricsMode::Table;
                args.remove(i);
            }
            "--metrics=json" => {
                mode = MetricsMode::Json;
                args.remove(i);
            }
            other if other.starts_with("--metrics=") => {
                let value = &other["--metrics=".len()..];
                return Err(CliError::usage(format!(
                    "--metrics accepts only `json`, got {value:?}"
                )));
            }
            _ => i += 1,
        }
    }
    Ok(mode)
}

/// Strip the global `--trace=FILE` flag from `args` before subcommand
/// parsing, returning the trace output path if requested.
pub fn take_trace(args: &mut Vec<String>) -> Result<Option<String>> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                return Err(CliError::usage(
                    "--trace requires an output file: --trace=FILE",
                ));
            }
            other if other.starts_with("--trace=") => {
                let value = other["--trace=".len()..].to_string();
                if value.is_empty() {
                    return Err(CliError::usage("--trace=FILE needs a non-empty path"));
                }
                path = Some(value);
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    Ok(path)
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(CliError::usage(format!("{flag} needs a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_precision(args: &mut Vec<String>) -> Result<Option<String>> {
    match take_value(args, "--precision")? {
        None => Ok(None),
        Some(p) if PRECISION_NAMES.contains(&p.as_str()) => Ok(Some(p)),
        Some(p) => Err(CliError::usage(format!(
            "unknown precision {p:?}; expected one of {PRECISION_NAMES:?}"
        ))),
    }
}

/// `--nprobe N` / `--nprobe=N`: a probe depth of at least 1. Zero is a
/// usage error (exit 2) — probing no lists can never serve a query;
/// the upper bound (`n_lists`) is checked at runtime once the model is
/// loaded, with the same typed usage exit.
fn take_nprobe(args: &mut Vec<String>) -> Result<Option<usize>> {
    let raw = match take_value(args, "--nprobe")? {
        Some(v) => Some(v),
        None => match args.iter().position(|a| a.starts_with("--nprobe=")) {
            Some(pos) => {
                let a = args.remove(pos);
                Some(a["--nprobe=".len()..].to_string())
            }
            None => None,
        },
    };
    match raw {
        None => Ok(None),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| {
                CliError::usage(format!("--nprobe expects a positive integer, got {v:?}"))
            })?;
            if n == 0 {
                return Err(CliError::usage(
                    "--nprobe must be at least 1 (0 lists would never serve a query)",
                ));
            }
            Ok(Some(n))
        }
    }
}

fn parse_usize(value: Option<String>, default: usize, flag: &str) -> Result<usize> {
    match value {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("{flag} expects an integer, got {v:?}"))),
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Command> {
    let mut args: Vec<String> = argv.to_vec();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        return Ok(Command::Help);
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "index" => {
            let out = take_value(&mut args, "--out")?
                .ok_or_else(|| CliError::usage("index requires --out FILE"))?;
            let k = parse_usize(take_value(&mut args, "--k")?, 100, "--k")?;
            if k == 0 {
                return Err(CliError::usage("--k must be at least 1"));
            }
            let min_df = parse_usize(take_value(&mut args, "--min-df")?, 2, "--min-df")?;
            let weighting =
                take_value(&mut args, "--weighting")?.unwrap_or_else(|| "log-entropy".into());
            if !WEIGHTING_NAMES.contains(&weighting.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown weighting {weighting:?}; expected one of {WEIGHTING_NAMES:?}"
                )));
            }
            let phrases = take_flag(&mut args, "--phrases");
            let precision = take_precision(&mut args)?.unwrap_or_else(|| "f64".into());
            let nprobe = take_nprobe(&mut args)?;
            reject_unknown_flags(&args)?;
            if args.is_empty() {
                return Err(CliError::usage("index requires at least one input file"));
            }
            Ok(Command::Index {
                inputs: args,
                out,
                k,
                min_df,
                weighting,
                phrases,
                precision,
                nprobe,
            })
        }
        "query" => {
            let top = parse_usize(take_value(&mut args, "--top")?, 10, "--top")?;
            let threshold = match take_value(&mut args, "--threshold")? {
                None => None,
                Some(v) => {
                    let t: f64 = v.parse().map_err(|_| {
                        CliError::usage(format!("--threshold expects a number, got {v:?}"))
                    })?;
                    if !t.is_finite() {
                        return Err(CliError::usage(format!(
                            "--threshold must be finite, got {v:?}"
                        )));
                    }
                    Some(t)
                }
            };
            let precision = take_precision(&mut args)?;
            let nprobe = take_nprobe(&mut args)?;
            reject_unknown_flags(&args)?;
            if args.len() < 2 {
                return Err(CliError::usage("query requires a database and query text"));
            }
            let db = args.remove(0);
            Ok(Command::Query {
                db,
                text: args.join(" "),
                top,
                threshold,
                precision,
                nprobe,
            })
        }
        "terms" => {
            let top = parse_usize(take_value(&mut args, "--top")?, 10, "--top")?;
            reject_unknown_flags(&args)?;
            if args.len() != 2 {
                return Err(CliError::usage("terms requires a database and one word"));
            }
            Ok(Command::Terms {
                db: args.remove(0),
                word: args.remove(0),
                top,
            })
        }
        "add" => {
            let out = take_value(&mut args, "--out")?
                .ok_or_else(|| CliError::usage("add requires --out FILE"))?;
            let method = take_value(&mut args, "--method")?.unwrap_or_else(|| "update".into());
            if method != "fold" && method != "update" {
                return Err(CliError::usage(format!(
                    "--method must be fold or update, got {method:?}"
                )));
            }
            reject_unknown_flags(&args)?;
            if args.len() < 2 {
                return Err(CliError::usage("add requires a database and input files"));
            }
            let db = args.remove(0);
            Ok(Command::Add {
                db,
                inputs: args,
                out,
                method,
            })
        }
        "info" => {
            reject_unknown_flags(&args)?;
            if args.len() != 1 {
                return Err(CliError::usage("info requires exactly one database path"));
            }
            Ok(Command::Info {
                db: args.remove(0),
            })
        }
        "serve" => {
            let addr = take_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1".into());
            let port = match take_value(&mut args, "--port")? {
                None => 7171,
                Some(v) => v.parse::<u16>().map_err(|_| {
                    CliError::usage(format!("--port expects 0..=65535, got {v:?}"))
                })?,
            };
            let threads = parse_usize(take_value(&mut args, "--threads")?, 4, "--threads")?;
            if threads == 0 {
                return Err(CliError::usage("--threads must be at least 1"));
            }
            let queue_depth =
                parse_usize(take_value(&mut args, "--queue-depth")?, 64, "--queue-depth")?;
            if queue_depth == 0 {
                return Err(CliError::usage(
                    "--queue-depth must be at least 1 (a zero-depth queue sheds everything)",
                ));
            }
            let max_batch = parse_usize(take_value(&mut args, "--max-batch")?, 32, "--max-batch")?;
            if max_batch == 0 {
                return Err(CliError::usage("--max-batch must be at least 1"));
            }
            let timeout_ms =
                parse_usize(take_value(&mut args, "--timeout-ms")?, 2_000, "--timeout-ms")? as u64;
            let max_timeout_ms = parse_usize(
                take_value(&mut args, "--max-timeout-ms")?,
                30_000,
                "--max-timeout-ms",
            )? as u64;
            if timeout_ms == 0 || max_timeout_ms == 0 {
                return Err(CliError::usage("timeouts must be at least 1 ms"));
            }
            let degrade = !take_flag(&mut args, "--no-degrade");
            let precision = take_precision(&mut args)?;
            let nprobe = take_nprobe(&mut args)?;
            reject_unknown_flags(&args)?;
            if args.len() != 1 {
                return Err(CliError::usage("serve requires exactly one database path"));
            }
            Ok(Command::Serve {
                db: args.remove(0),
                addr,
                port,
                threads,
                queue_depth,
                max_batch,
                timeout_ms,
                max_timeout_ms,
                degrade,
                precision,
                nprobe,
            })
        }
        other => Err(CliError::usage(format!(
            "unknown subcommand {other:?}; try lsi --help"
        ))),
    }
}

fn reject_unknown_flags(args: &[String]) -> Result<()> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(CliError::usage(format!("unknown flag {flag}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["query", "-h"])).unwrap(), Command::Help);
    }

    #[test]
    fn index_with_defaults() {
        let c = parse_args(&v(&["index", "a.txt", "b.txt", "--out", "db.json"])).unwrap();
        assert_eq!(
            c,
            Command::Index {
                inputs: v(&["a.txt", "b.txt"]),
                out: "db.json".into(),
                k: 100,
                min_df: 2,
                weighting: "log-entropy".into(),
                phrases: false,
                precision: "f64".into(),
                nprobe: None,
            }
        );
    }

    #[test]
    fn index_with_options_any_order() {
        let c = parse_args(&v(&[
            "index", "--k", "50", "a.txt", "--weighting", "raw", "--out", "x", "--min-df", "1",
            "--phrases",
        ]))
        .unwrap();
        match c {
            Command::Index {
                k,
                min_df,
                weighting,
                phrases,
                inputs,
                ..
            } => {
                assert_eq!(k, 50);
                assert_eq!(min_df, 1);
                assert_eq!(weighting, "raw");
                assert!(phrases);
                assert_eq!(inputs, v(&["a.txt"]));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn index_requires_out_and_inputs() {
        assert!(parse_args(&v(&["index", "a.txt"])).is_err());
        assert!(parse_args(&v(&["index", "--out", "x"])).is_err());
        assert!(parse_args(&v(&["index", "a.txt", "--out"])).is_err());
    }

    #[test]
    fn index_rejects_bad_weighting_and_flags() {
        assert!(parse_args(&v(&["index", "a", "--out", "x", "--weighting", "magic"])).is_err());
        assert!(parse_args(&v(&["index", "a", "--out", "x", "--frobnicate"])).is_err());
        assert!(parse_args(&v(&["index", "a", "--out", "x", "--k", "NaN"])).is_err());
    }

    #[test]
    fn query_joins_text() {
        let c = parse_args(&v(&["query", "db.json", "blood", "abnormalities", "--top", "3"]))
            .unwrap();
        assert_eq!(
            c,
            Command::Query {
                db: "db.json".into(),
                text: "blood abnormalities".into(),
                top: 3,
                threshold: None,
                precision: None,
                nprobe: None,
            }
        );
    }

    #[test]
    fn query_threshold() {
        let c = parse_args(&v(&["query", "db", "q", "--threshold", "0.85"])).unwrap();
        match c {
            Command::Query { threshold, .. } => assert_eq!(threshold, Some(0.85)),
            _ => panic!(),
        }
        assert!(parse_args(&v(&["query", "db", "q", "--threshold", "high"])).is_err());
        assert!(parse_args(&v(&["query", "db", "q", "--threshold", "NaN"])).is_err());
        assert!(parse_args(&v(&["query", "db", "q", "--threshold", "inf"])).is_err());
    }

    #[test]
    fn index_rejects_zero_k() {
        assert!(parse_args(&v(&["index", "a.txt", "--out", "x", "--k", "0"])).is_err());
    }

    #[test]
    fn precision_flag_parses_and_validates() {
        let c = parse_args(&v(&["index", "a.txt", "--out", "x", "--precision", "f32"])).unwrap();
        match c {
            Command::Index { precision, .. } => assert_eq!(precision, "f32"),
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&["query", "db", "text", "--precision", "i8"])).unwrap();
        match c {
            Command::Query { precision, .. } => assert_eq!(precision, Some("i8".into())),
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["query", "db", "q", "--precision", "f16"])).is_err());
        assert!(parse_args(&v(&["index", "a", "--out", "x", "--precision", "int8"])).is_err());
    }

    #[test]
    fn nprobe_flag_parses_and_validates() {
        // Both spellings, on both subcommands.
        let c = parse_args(&v(&["index", "a.txt", "--out", "x", "--nprobe", "4"])).unwrap();
        match c {
            Command::Index { nprobe, .. } => assert_eq!(nprobe, Some(4)),
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&["query", "db", "text", "--nprobe=16"])).unwrap();
        match c {
            Command::Query { nprobe, .. } => assert_eq!(nprobe, Some(16)),
            _ => panic!("wrong command"),
        }
        // Zero, garbage, and a missing value are usage errors (exit 2).
        for bad in [
            v(&["query", "db", "q", "--nprobe", "0"]),
            v(&["query", "db", "q", "--nprobe=0"]),
            v(&["index", "a", "--out", "x", "--nprobe", "many"]),
            v(&["query", "db", "q", "--nprobe"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, 2, "args {bad:?}");
        }
    }

    #[test]
    fn add_method_validation() {
        let c = parse_args(&v(&["add", "db", "new.txt", "--out", "db2"])).unwrap();
        match c {
            Command::Add { method, .. } => assert_eq!(method, "update"),
            _ => panic!(),
        }
        assert!(parse_args(&v(&["add", "db", "n.txt", "--out", "x", "--method", "magic"])).is_err());
        assert!(parse_args(&v(&["add", "db", "--out", "x"])).is_err());
    }

    #[test]
    fn terms_and_info_arity() {
        assert!(parse_args(&v(&["terms", "db"])).is_err());
        assert!(parse_args(&v(&["terms", "db", "w", "x"])).is_err());
        assert!(parse_args(&v(&["info"])).is_err());
        assert!(parse_args(&v(&["info", "db", "extra"])).is_err());
        assert!(matches!(parse_args(&v(&["info", "db"])).unwrap(), Command::Info { .. }));
    }

    #[test]
    fn serve_defaults_and_overrides() {
        let c = parse_args(&v(&["serve", "db.json"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                db: "db.json".into(),
                addr: "127.0.0.1".into(),
                port: 7171,
                threads: 4,
                queue_depth: 64,
                max_batch: 32,
                timeout_ms: 2_000,
                max_timeout_ms: 30_000,
                degrade: true,
                precision: None,
                nprobe: None,
            }
        );
        let c = parse_args(&v(&[
            "serve", "db", "--port", "0", "--threads", "8", "--queue-depth", "16",
            "--max-batch", "4", "--timeout-ms", "500", "--no-degrade", "--precision", "f32",
            "--nprobe", "2",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                port,
                threads,
                queue_depth,
                max_batch,
                timeout_ms,
                degrade,
                precision,
                nprobe,
                ..
            } => {
                assert_eq!(port, 0);
                assert_eq!(threads, 8);
                assert_eq!(queue_depth, 16);
                assert_eq!(max_batch, 4);
                assert_eq!(timeout_ms, 500);
                assert!(!degrade);
                assert_eq!(precision, Some("f32".into()));
                assert_eq!(nprobe, Some(2));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn serve_rejects_bad_values() {
        for bad in [
            v(&["serve"]),
            v(&["serve", "db", "extra"]),
            v(&["serve", "db", "--port", "70000"]),
            v(&["serve", "db", "--threads", "0"]),
            v(&["serve", "db", "--queue-depth", "0"]),
            v(&["serve", "db", "--max-batch", "0"]),
            v(&["serve", "db", "--timeout-ms", "0"]),
            v(&["serve", "db", "--precision", "f16"]),
            v(&["serve", "db", "--frobnicate"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, 2, "args {bad:?}");
        }
    }

    #[test]
    fn unknown_subcommand() {
        let e = parse_args(&v(&["frobnicate"])).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn metrics_flag_is_stripped_anywhere() {
        let mut args = v(&["index", "a.txt", "--metrics", "--out", "db"]);
        assert_eq!(take_metrics(&mut args).unwrap(), MetricsMode::Table);
        assert_eq!(args, v(&["index", "a.txt", "--out", "db"]));
        assert!(parse_args(&args).is_ok());

        let mut args = v(&["--metrics=json", "query", "db", "text"]);
        assert_eq!(take_metrics(&mut args).unwrap(), MetricsMode::Json);
        assert_eq!(args, v(&["query", "db", "text"]));
    }

    #[test]
    fn metrics_flag_absent_and_invalid() {
        let mut args = v(&["query", "db", "text"]);
        assert_eq!(take_metrics(&mut args).unwrap(), MetricsMode::Off);
        assert_eq!(args.len(), 3);

        let mut args = v(&["query", "--metrics=xml", "db", "text"]);
        assert!(take_metrics(&mut args).is_err());
    }

    #[test]
    fn metrics_flag_reaches_parse_args_as_error_if_not_stripped() {
        // Without take_metrics the subcommand parser must reject it —
        // the flag only works through the documented front door.
        assert!(parse_args(&v(&["query", "db", "text", "--metrics"])).is_err());
    }

    #[test]
    fn trace_flag_is_stripped_anywhere() {
        let mut args = v(&["index", "a.txt", "--trace=out.json", "--out", "db"]);
        assert_eq!(take_trace(&mut args).unwrap(), Some("out.json".into()));
        assert_eq!(args, v(&["index", "a.txt", "--out", "db"]));
        assert!(parse_args(&args).is_ok());

        let mut args = v(&["--trace=t.json", "query", "db", "text"]);
        assert_eq!(take_trace(&mut args).unwrap(), Some("t.json".into()));
        assert_eq!(args, v(&["query", "db", "text"]));
    }

    #[test]
    fn trace_flag_absent_and_invalid() {
        let mut args = v(&["query", "db", "text"]);
        assert_eq!(take_trace(&mut args).unwrap(), None);
        assert_eq!(args.len(), 3);

        // Bare --trace (no =FILE) and an empty path are usage errors.
        let mut args = v(&["query", "--trace", "db", "text"]);
        assert!(take_trace(&mut args).is_err());
        let mut args = v(&["query", "--trace=", "db", "text"]);
        assert!(take_trace(&mut args).is_err());
    }

    #[test]
    fn trace_flag_reaches_parse_args_as_error_if_not_stripped() {
        assert!(parse_args(&v(&["query", "db", "text", "--trace=x.json"])).is_err());
    }
}
