//! The `lsi` command-line tool. See `lsi --help`.

use lsi_cli::args::{parse_args, Command, USAGE};
use lsi_cli::commands;

fn run() -> lsi_cli::Result<String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Index {
            inputs,
            out,
            k,
            min_df,
            weighting,
            phrases,
        } => commands::cmd_index(&inputs, &out, k, min_df, &weighting, phrases),
        Command::Query {
            db,
            text,
            top,
            threshold,
        } => commands::cmd_query(&db, &text, top, threshold),
        Command::Terms { db, word, top } => commands::cmd_terms(&db, &word, top),
        Command::Add {
            db,
            inputs,
            out,
            method,
        } => commands::cmd_add(&db, &inputs, &out, &method),
        Command::Info { db } => commands::cmd_info(&db),
    }
}

fn main() {
    match run() {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("lsi: {e}");
            std::process::exit(e.code);
        }
    }
}
