//! The `lsi` command-line tool. See `lsi --help`.

use lsi_cli::args::{parse_args, take_metrics, take_trace, Command, MetricsMode, USAGE};
use lsi_cli::commands;

fn run(argv: &[String]) -> lsi_cli::Result<String> {
    match parse_args(argv)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Index {
            inputs,
            out,
            k,
            min_df,
            weighting,
            phrases,
            precision,
            nprobe,
        } => commands::cmd_index(
            &inputs, &out, k, min_df, &weighting, phrases, &precision, nprobe,
        ),
        Command::Query {
            db,
            text,
            top,
            threshold,
            precision,
            nprobe,
        } => commands::cmd_query(&db, &text, top, threshold, precision.as_deref(), nprobe),
        Command::Terms { db, word, top } => commands::cmd_terms(&db, &word, top),
        Command::Add {
            db,
            inputs,
            out,
            method,
        } => commands::cmd_add(&db, &inputs, &out, &method),
        Command::Info { db } => commands::cmd_info(&db),
        Command::Serve {
            db,
            addr,
            port,
            threads,
            queue_depth,
            max_batch,
            timeout_ms,
            max_timeout_ms,
            degrade,
            precision,
            nprobe,
        } => commands::cmd_serve(
            &db,
            &commands::ServeParams {
                addr,
                port,
                threads,
                queue_depth,
                max_batch,
                timeout_ms,
                max_timeout_ms,
                degrade,
                precision,
                nprobe,
            },
        ),
    }
}

/// Print the collected metrics to stderr so stdout stays exactly the
/// command's report (pipelines keep working with `--metrics` on).
fn report_metrics(mode: MetricsMode) {
    use std::io::Write as _;
    let snapshot = lsi_obs::snapshot();
    let text = match mode {
        MetricsMode::Off => return,
        MetricsMode::Table => lsi_obs::render_table(&snapshot),
        MetricsMode::Json => {
            let mut s = lsi_obs::snapshot_to_json(&snapshot).to_string_compact();
            s.push('\n');
            s
        }
    };
    let _ = std::io::stderr().write_all(text.as_bytes());
}

/// Write the report to stdout without panicking on a closed pipe:
/// `lsi query ... | head -1` must exit 0 when `head` hangs up early.
fn write_report(output: &str) -> i32 {
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let result = lock.write_all(output.as_bytes()).and_then(|()| lock.flush());
    match result {
        Ok(()) => 0,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            lsi_obs::error!("lsi: cannot write to stdout: {e}");
            1
        }
    }
}

/// Serialize the trace buffer to `path` after the command ran (in
/// every outcome arm — a trace of a failing run is the one you want).
/// Returns the exit-code floor: 1 when the write failed.
fn write_trace(path: &str) -> i32 {
    match lsi_obs::write_chrome_trace(path) {
        Ok((events, dropped)) => {
            lsi_obs::info!("lsi: wrote {events} trace events to {path}");
            if dropped > 0 {
                lsi_obs::warn!(
                    "lsi: trace buffer overflowed; {dropped} events dropped \
                     (narrow with RUST_LSI_TRACE=prefix.*)"
                );
            }
            0
        }
        Err(e) => {
            lsi_obs::error!("lsi: cannot write trace to {path}: {e}");
            1
        }
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let metrics = match take_metrics(&mut argv) {
        Ok(mode) => mode,
        Err(e) => {
            lsi_obs::error!("lsi: {e}");
            std::process::exit(e.code);
        }
    };
    let trace = match take_trace(&mut argv) {
        Ok(path) => path,
        Err(e) => {
            lsi_obs::error!("lsi: {e}");
            std::process::exit(e.code);
        }
    };
    if metrics != MetricsMode::Off {
        lsi_obs::set_enabled(true);
    }
    if trace.is_some() {
        // Tracing needs the span machinery armed even without
        // --metrics; the main thread gets a named lane.
        lsi_obs::set_enabled(true);
        lsi_obs::set_trace_enabled(true);
        lsi_obs::register_thread("main");
    }
    // Last-resort panic boundary: a bug (or an armed `panic` failpoint)
    // anywhere below must still exit with a diagnostic and a
    // conventional code (EX_SOFTWARE), not an abort trace. The panic
    // hook already printed the message/backtrace to stderr.
    let outcome = std::panic::catch_unwind(|| run(&argv));
    let mut code = match outcome {
        Ok(Ok(output)) => {
            let code = write_report(&output);
            report_metrics(metrics);
            code
        }
        Ok(Err(e)) => {
            lsi_obs::error!("lsi: {e}");
            report_metrics(metrics);
            e.code
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            lsi_obs::error!("lsi: internal error: {msg}");
            report_metrics(metrics);
            70
        }
    };
    if let Some(path) = &trace {
        code = code.max(write_trace(path));
    }
    std::process::exit(code);
}
