//! End-to-end metrics coverage: the full CLI pipeline on the paper's
//! MED example must report every stage with nonzero wall time, flop
//! counts, and allocation attribution, via the same JSON exporter
//! `lsi --metrics=json` prints — plus the Chrome trace the same run
//! produces under `--trace=FILE`, including pool-worker lanes.

use lsi_cli::commands;
use lsi_corpora::MedExample;
use lsi_obs::Json;

/// The stages the ISSUE acceptance criterion enumerates: parsing,
/// matrix build, SVD (with its Lanczos phase breakdown), database
/// assembly, query, and folding-in.
const REQUIRED_STAGES: &[&str] = &[
    "build.parse",
    "build.matrix",
    "build.svd",
    "build.assemble",
    "query",
    "fold_in",
];

const LANCZOS_PHASES: &[&str] = &[
    "build.svd.lanczos.gram",
    "build.svd.lanczos.reorth",
    "build.svd.lanczos.ritz",
];

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsi-metrics-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn med_pipeline_reports_all_six_stages_with_nonzero_work() {
    // One test body: the obs registry is process-global, so the whole
    // pipeline runs under a single enable/snapshot cycle. Tracing is
    // armed alongside metrics — exactly what `lsi --trace=FILE
    // --metrics=json` does — so one pipeline validates both exports.
    lsi_obs::reset();
    lsi_obs::reset_trace();
    lsi_obs::set_trace_filter(Some("*"));
    lsi_obs::set_enabled(true);
    lsi_obs::set_trace_enabled(true);
    lsi_obs::register_thread("main");

    let ex = MedExample::build();
    let dir = tmpdir();
    // Arm the structured query log before the first query runs (the
    // sink spec is read once per process).
    let qlog_path = dir.join("queries.jsonl");
    std::env::set_var("LSI_QUERY_LOG", &qlog_path);
    let tsv_path = dir.join("med.tsv");
    let mut tsv = String::new();
    for doc in &ex.corpus.docs {
        tsv.push_str(&format!("{}\t{}\n", doc.id, doc.text.replace('\n', " ")));
    }
    std::fs::write(&tsv_path, &tsv).unwrap();
    let tsv_path = tsv_path.to_string_lossy().into_owned();
    let db = dir.join("med.json").to_string_lossy().into_owned();

    // index → query → add (fold): the three commands that touch every
    // stage of the span taxonomy.
    commands::cmd_index(&[tsv_path], &db, 8, 2, "log-entropy", false, "f64", None).unwrap();
    let hits =
        commands::cmd_query(&db, "the generation of blood cells", 5, None, None, None).unwrap();
    assert!(!hits.trim().is_empty(), "query produced no output");
    // A cluster-pruned query rides the same pipeline and must stamp the
    // index fields into the structured query log.
    let pruned_hits =
        commands::cmd_query(&db, "the generation of blood cells", 5, None, None, Some(1))
            .unwrap();
    assert!(!pruned_hits.trim().is_empty(), "pruned query produced no output");
    let new_doc = dir.join("fresh.txt");
    std::fs::write(
        &new_doc,
        "fibrin products of the blood and their measurement in pressure chambers",
    )
    .unwrap();
    let db2 = dir.join("med2.json").to_string_lossy().into_owned();
    commands::cmd_add(
        &db,
        &[new_doc.to_string_lossy().into_owned()],
        &db2,
        "fold",
    )
    .unwrap();

    // The thesaurus sweep behind `terms` is the one pool dispatch with
    // no size threshold, so it reliably puts task spans on the worker
    // lanes of the trace (when the pool has workers at all).
    let terms = commands::cmd_terms(&db, "blood", 5).unwrap();
    assert!(!terms.trim().is_empty(), "terms produced no output");

    let snapshot = lsi_obs::snapshot();
    let trace = lsi_obs::chrome_trace_json();
    lsi_obs::set_trace_enabled(false);
    lsi_obs::set_enabled(false);
    lsi_obs::reset_trace();
    let qlog = std::fs::read_to_string(&qlog_path).expect("query log written");
    std::fs::remove_dir_all(&dir).ok();

    // --- The structured query log from the same pipeline -------------
    // Every served query emits one line with the shared schema keys;
    // the pruned run additionally carries the index fields.
    assert!(qlog.lines().count() >= 2, "expected >=2 query-log lines: {qlog}");
    for key in ["trace_id", "kind", "n_docs", "z", "precision", "path", "total_us"] {
        assert!(
            qlog.lines().all(|l| l.contains(&format!("\"{key}\""))),
            "every query-log line carries {key:?}: {qlog}"
        );
    }
    let pruned_line = qlog
        .lines()
        .find(|l| l.contains("\"path\":\"pruned\""))
        .unwrap_or_else(|| panic!("no pruned query-log line: {qlog}"));
    for key in ["nprobe", "lists_probed", "survivors", "probe_us"] {
        assert!(
            pruned_line.contains(&format!("\"{key}\"")),
            "pruned query-log line missing {key:?}: {pruned_line}"
        );
    }

    // Validate through the JSON exporter — the exact document
    // `lsi --metrics=json` emits — not the in-memory snapshot.
    let text = lsi_obs::snapshot_to_json(&snapshot).to_string_compact();
    let json = lsi_obs::parse_json(&text).unwrap();
    let spans = json.get("spans").expect("report has a spans section");

    for stage in REQUIRED_STAGES {
        let span = spans
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}; report: {text}"));
        let secs = span.get("secs").unwrap().as_f64().unwrap();
        let flops = span.get("flops").unwrap().as_f64().unwrap();
        let calls = span.get("calls").unwrap().as_f64().unwrap();
        assert!(secs > 0.0, "{stage} reports zero wall time");
        assert!(flops > 0.0, "{stage} reports zero flops");
        assert!(calls >= 1.0, "{stage} reports zero calls");
    }

    // The SVD stage additionally breaks down into Lanczos phases.
    for phase in LANCZOS_PHASES {
        let span = spans
            .get(phase)
            .unwrap_or_else(|| panic!("missing lanczos phase {phase}; report: {text}"));
        assert!(
            span.get("secs").unwrap().as_f64().unwrap() > 0.0,
            "{phase} reports zero wall time"
        );
    }

    // Stage flops must roll up: the parent build span holds at least
    // the sum of what its children attributed.
    let build = spans.get("build").expect("missing build span");
    let build_flops = build.get("flops").unwrap().as_f64().unwrap();
    let child_sum: f64 = ["build.parse", "build.matrix", "build.svd", "build.assemble"]
        .iter()
        .map(|s| spans.get(s).unwrap().get("flops").unwrap().as_f64().unwrap())
        .sum();
    assert!(
        build_flops >= child_sum * (1.0 - 1e-9),
        "parent flops {build_flops} < sum of children {child_sum}"
    );

    // Query latency histogram recorded at least the one query.
    let hist = json
        .get("histograms")
        .unwrap()
        .get("query.time.us")
        .expect("query latency histogram present");
    assert!(hist.get("count").unwrap().as_f64().unwrap() >= 1.0);

    // Per-span memory attribution reaches the JSON export: parsing
    // builds the vocabulary and count matrix, which cannot happen
    // without allocating.
    let parse = spans.get("build.parse").unwrap();
    for key in ["allocs", "alloc_bytes", "alloc_peak"] {
        assert!(
            parse.get(key).is_some(),
            "span JSON missing allocation field {key}; report: {text}"
        );
    }
    assert!(
        parse.get("alloc_bytes").unwrap().as_f64().unwrap() > 0.0,
        "build.parse allocated nothing?"
    );

    // --- The Chrome trace from the same pipeline ---------------------
    let trace_text = trace.to_string_compact();
    let trace = lsi_obs::parse_json(&trace_text).expect("trace JSON parses");
    let Some(Json::Arr(events)) = trace.get("traceEvents") else {
        panic!("trace has no traceEvents array");
    };
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
    let name = |e: &Json| e.get("name").and_then(Json::as_str).unwrap_or("").to_string();
    let begins: Vec<&Json> = events.iter().filter(|e| ph(e) == "B").collect();
    assert!(
        begins.iter().any(|e| name(e) == "build.svd"),
        "pipeline stages appear as B events"
    );
    // The E event for build.parse carries the same allocation args the
    // metrics table reported.
    let parse_end = events
        .iter()
        .find(|e| ph(e) == "E" && name(e) == "build.parse")
        .expect("build.parse E event in trace");
    let parse_alloc = parse_end
        .get("args")
        .and_then(|a| a.get("alloc_bytes"))
        .and_then(Json::as_f64)
        .expect("E event carries alloc_bytes");
    assert!(parse_alloc > 0.0);

    // Pool-worker lanes: with more than one thread, the terms sweep's
    // task spans ride worker tids with `pool.worker.N` lane names.
    // (verify.sh reruns the suite with LSI_NUM_THREADS=1, where the
    // pool has no workers and everything stays on the main lane.)
    let pooled = std::env::var("LSI_NUM_THREADS")
        .map(|v| v.trim() != "1")
        .unwrap_or(true)
        && std::thread::available_parallelism().map(|n| n.get() > 1).unwrap_or(false);
    if pooled {
        let worker_tids: Vec<f64> = events
            .iter()
            .filter(|e| {
                ph(e) == "M"
                    && name(e) == "thread_name"
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.starts_with("pool.worker."))
            })
            .map(|e| e.get("tid").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(
            !worker_tids.is_empty(),
            "pool workers must register trace lanes; trace: {trace_text}"
        );
        let task_on_worker = events.iter().any(|e| {
            ph(e) == "B"
                && name(e).ends_with(".task")
                && e.get("tid")
                    .and_then(Json::as_f64)
                    .is_some_and(|tid| worker_tids.contains(&tid))
        });
        assert!(
            task_on_worker,
            "task spans must appear on pool-worker lanes; trace: {trace_text}"
        );
    }
}
