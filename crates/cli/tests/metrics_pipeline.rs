//! End-to-end metrics coverage: the full CLI pipeline on the paper's
//! MED example must report every stage with nonzero wall time and flop
//! counts, via the same JSON exporter `lsi --metrics=json` prints.

use lsi_cli::commands;
use lsi_corpora::MedExample;

/// The stages the ISSUE acceptance criterion enumerates: parsing,
/// matrix build, SVD (with its Lanczos phase breakdown), database
/// assembly, query, and folding-in.
const REQUIRED_STAGES: &[&str] = &[
    "build.parse",
    "build.matrix",
    "build.svd",
    "build.assemble",
    "query",
    "fold_in",
];

const LANCZOS_PHASES: &[&str] = &[
    "build.svd.lanczos.gram",
    "build.svd.lanczos.reorth",
    "build.svd.lanczos.ritz",
];

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsi-metrics-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn med_pipeline_reports_all_six_stages_with_nonzero_work() {
    // One test body: the obs registry is process-global, so the whole
    // pipeline runs under a single enable/snapshot cycle.
    lsi_obs::reset();
    lsi_obs::set_enabled(true);

    let ex = MedExample::build();
    let dir = tmpdir();
    let tsv_path = dir.join("med.tsv");
    let mut tsv = String::new();
    for doc in &ex.corpus.docs {
        tsv.push_str(&format!("{}\t{}\n", doc.id, doc.text.replace('\n', " ")));
    }
    std::fs::write(&tsv_path, &tsv).unwrap();
    let tsv_path = tsv_path.to_string_lossy().into_owned();
    let db = dir.join("med.json").to_string_lossy().into_owned();

    // index → query → add (fold): the three commands that touch every
    // stage of the span taxonomy.
    commands::cmd_index(&[tsv_path], &db, 8, 2, "log-entropy", false, "f64").unwrap();
    let hits = commands::cmd_query(&db, "the generation of blood cells", 5, None, None).unwrap();
    assert!(!hits.trim().is_empty(), "query produced no output");
    let new_doc = dir.join("fresh.txt");
    std::fs::write(
        &new_doc,
        "fibrin products of the blood and their measurement in pressure chambers",
    )
    .unwrap();
    let db2 = dir.join("med2.json").to_string_lossy().into_owned();
    commands::cmd_add(
        &db,
        &[new_doc.to_string_lossy().into_owned()],
        &db2,
        "fold",
    )
    .unwrap();

    let snapshot = lsi_obs::snapshot();
    lsi_obs::set_enabled(false);
    std::fs::remove_dir_all(&dir).ok();

    // Validate through the JSON exporter — the exact document
    // `lsi --metrics=json` emits — not the in-memory snapshot.
    let text = lsi_obs::snapshot_to_json(&snapshot).to_string_compact();
    let json = lsi_obs::parse_json(&text).unwrap();
    let spans = json.get("spans").expect("report has a spans section");

    for stage in REQUIRED_STAGES {
        let span = spans
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}; report: {text}"));
        let secs = span.get("secs").unwrap().as_f64().unwrap();
        let flops = span.get("flops").unwrap().as_f64().unwrap();
        let calls = span.get("calls").unwrap().as_f64().unwrap();
        assert!(secs > 0.0, "{stage} reports zero wall time");
        assert!(flops > 0.0, "{stage} reports zero flops");
        assert!(calls >= 1.0, "{stage} reports zero calls");
    }

    // The SVD stage additionally breaks down into Lanczos phases.
    for phase in LANCZOS_PHASES {
        let span = spans
            .get(phase)
            .unwrap_or_else(|| panic!("missing lanczos phase {phase}; report: {text}"));
        assert!(
            span.get("secs").unwrap().as_f64().unwrap() > 0.0,
            "{phase} reports zero wall time"
        );
    }

    // Stage flops must roll up: the parent build span holds at least
    // the sum of what its children attributed.
    let build = spans.get("build").expect("missing build span");
    let build_flops = build.get("flops").unwrap().as_f64().unwrap();
    let child_sum: f64 = ["build.parse", "build.matrix", "build.svd", "build.assemble"]
        .iter()
        .map(|s| spans.get(s).unwrap().get("flops").unwrap().as_f64().unwrap())
        .sum();
    assert!(
        build_flops >= child_sum * (1.0 - 1e-9),
        "parent flops {build_flops} < sum of children {child_sum}"
    );

    // Query latency histogram recorded at least the one query.
    let hist = json
        .get("histograms")
        .unwrap()
        .get("query.time.us")
        .expect("query latency histogram present");
    assert!(hist.get("count").unwrap().as_f64().unwrap() >= 1.0);
}
