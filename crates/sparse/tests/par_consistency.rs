//! Pooled-vs-serial consistency for the nnz-balanced parallel matvecs.
//!
//! The parallel kernels promise *bit-for-bit* agreement with their
//! serial counterparts: every output element is produced by exactly one
//! task running the identical reduction loop, so no floating-point
//! reassociation can occur regardless of thread count or scheduling.
//! These tests pin that contract on matrices large enough to actually
//! take the parallel path (above `PAR_NNZ_THRESHOLD`), including the
//! pathologies nnz-balancing exists for: one dense row holding most of
//! the nonzeros, and long runs of empty rows. The whole suite must also
//! pass under `LSI_NUM_THREADS=1`, where every kernel is forced serial.

use lsi_sparse::gen::{random_term_doc, RowProfile};
use lsi_sparse::{nnz_balanced_spans, CooMatrix, CscMatrix, CsrMatrix, PAR_NNZ_THRESHOLD};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_x(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
}

/// A Zipf-shaped term-document pair comfortably above the parallel
/// threshold (the skew RowProfile is the matrix shape the nnz-balanced
/// spans are designed around).
fn skewed_pair(seed: u64) -> (CsrMatrix, CscMatrix) {
    let csc = random_term_doc(2400, 1800, 0.06, RowProfile::Zipf { s: 1.1 }, 8, seed);
    let csr = csc.to_csr();
    assert!(
        csr.nnz() >= PAR_NNZ_THRESHOLD,
        "test matrix too small to exercise the parallel path ({} nnz)",
        csr.nnz()
    );
    (csr, csc)
}

#[test]
fn par_matvec_is_bit_identical_on_zipf_matrices() {
    for seed in [3u64, 17, 99] {
        let (csr, csc) = skewed_pair(seed);
        let x = random_x(csr.ncols(), seed ^ 0xA5);
        let xt = random_x(csr.nrows(), seed ^ 0x5A);
        // Exact equality — not a tolerance — is the determinism contract.
        assert_eq!(csr.matvec(&x).unwrap(), csr.par_matvec(&x).unwrap());
        assert_eq!(csc.matvec_t(&xt).unwrap(), csc.par_matvec_t(&xt).unwrap());
    }
}

#[test]
fn one_dense_row_is_bit_identical_and_balanced() {
    // Row 7 is fully dense and holds the overwhelming majority of the
    // nonzeros; the rest of the matrix is a sparse sprinkle. Row-count
    // partitioning would hand almost all work to one span.
    let nrows = 4000;
    let ncols = 3000;
    let mut coo = CooMatrix::new(nrows, ncols);
    for c in 0..ncols {
        coo.push(7, c, (c as f64).sin() + 2.0).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..150_000 {
        let r = rng.random_range(0..nrows);
        let c = rng.random_range(0..ncols);
        if r != 7 {
            coo.push(r, c, rng.random::<f64>() - 0.5).unwrap();
        }
    }
    let csr = coo.to_csr();
    let csc = coo.to_csc();
    assert!(csr.nnz() >= PAR_NNZ_THRESHOLD);

    let x = random_x(ncols, 42);
    assert_eq!(csr.matvec(&x).unwrap(), csr.par_matvec(&x).unwrap());
    let xt = random_x(nrows, 43);
    assert_eq!(csc.matvec_t(&xt).unwrap(), csc.par_matvec_t(&xt).unwrap());

    // The span partition must not let the dense row's span swallow the
    // rows after it: with 4 requested spans something must start at or
    // after row 8.
    let (indptr, _, _) = csr.raw();
    let spans = nnz_balanced_spans(indptr, 4);
    assert!(spans.iter().any(|&(lo, _)| lo >= 8), "spans: {spans:?}");
}

#[test]
fn empty_rows_are_bit_identical_and_zero() {
    // Rows [0, 1000) and [3000, 4000) are empty; the middle band is
    // dense enough to cross the threshold.
    let nrows = 4000;
    let ncols = 500;
    let mut coo = CooMatrix::new(nrows, ncols);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..170_000 {
        let r = rng.random_range(1000..3000);
        let c = rng.random_range(0..ncols);
        coo.push(r, c, rng.random::<f64>() - 0.5).unwrap();
    }
    let csr = coo.to_csr();
    assert!(csr.nnz() >= PAR_NNZ_THRESHOLD);
    let x = random_x(ncols, 7);
    let serial = csr.matvec(&x).unwrap();
    let parallel = csr.par_matvec(&x).unwrap();
    assert_eq!(serial, parallel);
    assert!(parallel[..1000].iter().all(|&v| v == 0.0));
    assert!(parallel[3000..].iter().all(|&v| v == 0.0));
}

#[test]
fn par_matvec_is_reproducible_across_repeats() {
    // Same inputs, many runs: scheduling may differ every time, the
    // bits may not.
    let (csr, csc) = skewed_pair(5);
    let x = random_x(csr.ncols(), 1);
    let xt = random_x(csr.nrows(), 2);
    let y0 = csr.par_matvec(&x).unwrap();
    let z0 = csc.par_matvec_t(&xt).unwrap();
    for _ in 0..20 {
        assert_eq!(y0, csr.par_matvec(&x).unwrap());
        assert_eq!(z0, csc.par_matvec_t(&xt).unwrap());
    }
}

/// Calibration harness behind `PAR_NNZ_THRESHOLD`: prints serial vs
/// pooled SpMV time across nnz sizes straddling the threshold. Rows
/// below the threshold show the serial fallback (pooled ≈ serial, as
/// shipped); to probe the raw pooled kernel down there, temporarily
/// lower `PAR_NNZ_THRESHOLD` and rerun:
/// `cargo test -p lsi-sparse --release --test par_consistency -- --ignored --nocapture`
#[test]
#[ignore = "prints timings; run with --ignored --nocapture"]
fn measure_spmv_break_even() {
    use std::time::Instant;
    fn best(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut b = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            b = b.min(t.elapsed().as_secs_f64());
        }
        b
    }
    for (nrows, ncols, density) in [
        (1200, 900, 0.04),
        (2000, 1500, 0.04),
        (3000, 2200, 0.04),
        (4500, 3500, 0.04),
        (9000, 7000, 0.04),
    ] {
        let csc = random_term_doc(nrows, ncols, density, RowProfile::Zipf { s: 1.1 }, 4, 77);
        let csr = csc.to_csr();
        let x = random_x(csr.ncols(), 9);
        let mut y = vec![0.0; csr.nrows()];
        let serial = best(50, || csr.matvec_into(&x, &mut y));
        let par = best(50, || csr.par_matvec_into(&x, &mut y));
        println!(
            "spmv nnz {:>8}: serial {:>7.1} us  pooled {:>7.1} us  ({:.2}x)",
            csr.nnz(),
            serial * 1e6,
            par * 1e6,
            serial / par
        );
    }
}

#[test]
fn spans_partition_random_indptrs() {
    // Property: for arbitrary nnz profiles the spans always form a
    // contiguous, non-empty, complete partition.
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..200 {
        let n = rng.random_range(1..200);
        let mut indptr = vec![0usize];
        for _ in 0..n {
            let step = if rng.random::<f64>() < 0.3 {
                0
            } else {
                rng.random_range(0..50)
            };
            indptr.push(indptr.last().unwrap() + step);
        }
        for n_spans in [1usize, 2, 3, 8, 64] {
            let spans = nnz_balanced_spans(&indptr, n_spans);
            let mut next = 0;
            for &(lo, hi) in &spans {
                assert_eq!(lo, next);
                assert!(hi > lo);
                next = hi;
            }
            assert_eq!(next, n);
            assert!(spans.len() <= n_spans);
        }
    }
}
