//! Property-based tests for the sparse formats: CSR/CSC/dense agreement,
//! transpose involution, and matvec linearity on arbitrary matrices.

use lsi_sparse::{CooMatrix, MatVec};
use proptest::prelude::*;

/// Strategy: shape plus a set of triplets within that shape.
fn coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (1usize..12, 1usize..12)
        .prop_flat_map(|(m, n)| {
            let triplet = (0..m, 0..n, -5.0f64..5.0);
            (
                Just(m),
                Just(n),
                prop::collection::vec(triplet, 0..40),
            )
        })
        .prop_map(|(m, n, trips)| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in trips {
                coo.push(r, c, v).unwrap();
            }
            coo
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_csc_dense_all_agree(coo in coo_strategy()) {
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let d1 = csr.to_dense();
        let d2 = csc.to_dense();
        prop_assert!(d1.fro_distance(&d2).unwrap() < 1e-12);
        prop_assert_eq!(csr.nnz(), csc.nnz());
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy()) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn matvec_matches_dense(coo in coo_strategy(), xseed in 0u64..1000) {
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.ncols())
            .map(|i| ((xseed as usize + i * 37) % 13) as f64 - 6.0)
            .collect();
        let sparse_y = csr.matvec(&x).unwrap();
        let dense_y = lsi_linalg::ops::matvec(&csr.to_dense(), &x).unwrap();
        for (a, b) in sparse_y.iter().zip(dense_y.iter()) {
            prop_assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
        }
    }

    #[test]
    fn matvec_t_matches_dense(coo in coo_strategy(), xseed in 0u64..1000) {
        let csc = coo.to_csc();
        let x: Vec<f64> = (0..csc.nrows())
            .map(|i| ((xseed as usize + i * 17) % 11) as f64 - 5.0)
            .collect();
        let sparse_y = csc.matvec_t(&x).unwrap();
        let dense_y = lsi_linalg::ops::matvec_t(&csc.to_dense(), &x).unwrap();
        for (a, b) in sparse_y.iter().zip(dense_y.iter()) {
            prop_assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
        }
    }

    #[test]
    fn matvec_is_linear(coo in coo_strategy()) {
        let csr = coo.to_csr();
        let n = csr.ncols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let combined: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let lhs = csr.matvec(&combined).unwrap();
        let ax = csr.matvec(&x).unwrap();
        let ay = csr.matvec(&y).unwrap();
        for i in 0..lhs.len() {
            let rhs = 2.0 * ax[i] - 3.0 * ay[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_kernels_match_serial(coo in coo_strategy()) {
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let x: Vec<f64> = (0..csr.ncols()).map(|i| i as f64 + 1.0).collect();
        prop_assert_eq!(csr.matvec(&x).unwrap(), csr.par_matvec(&x).unwrap());
        let xt: Vec<f64> = (0..csr.nrows()).map(|i| i as f64 - 2.0).collect();
        prop_assert_eq!(csc.matvec_t(&xt).unwrap(), csc.par_matvec_t(&xt).unwrap());
    }

    #[test]
    fn matrix_market_roundtrip(coo in coo_strategy()) {
        let csc = coo.to_csc();
        let mut buf = Vec::new();
        lsi_sparse::io::write_matrix_market(&csc, &mut buf).unwrap();
        let back = lsi_sparse::io::read_matrix_market(std::io::Cursor::new(buf))
            .unwrap()
            .to_csc();
        prop_assert!(back.to_dense().fro_distance(&csc.to_dense()).unwrap() < 1e-12);
    }

    #[test]
    fn trait_object_consistency(coo in coo_strategy()) {
        // MatVec::apply through the trait equals the inherent method.
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i % 3) as f64).collect();
        let mut y = vec![0.0; csr.nrows()];
        MatVec::apply(&csr, &x, &mut y);
        prop_assert_eq!(y, csr.matvec(&x).unwrap());
    }
}
