//! Hostile-input property tests for the MatrixMarket reader: whatever
//! bytes arrive — truncations, bit flips, splices, or pure garbage —
//! `read_matrix_market` must return a typed error or a matrix, never
//! panic (a panic fails the proptest case outright).

use std::io::Cursor;

use lsi_sparse::io::{read_matrix_market, write_matrix_market};
use lsi_sparse::CooMatrix;
use proptest::prelude::*;

/// A valid MatrixMarket document to corrupt.
fn valid_mm() -> Vec<u8> {
    let mut coo = CooMatrix::new(6, 4);
    for (r, c, v) in [
        (0usize, 0usize, 1.5f64),
        (2, 1, -2.25),
        (5, 3, 0.75),
        (3, 2, 4.0),
        (1, 0, -0.5),
    ] {
        coo.push(r, c, v).unwrap();
    }
    let mut buf = Vec::new();
    write_matrix_market(&coo.to_csc(), &mut buf).unwrap();
    buf
}

/// The reader must not panic; when it errors, the error must render
/// (Display is part of the typed-error contract).
fn read_never_panics(bytes: &[u8]) {
    if let Err(e) = read_matrix_market(Cursor::new(bytes)) {
        let _ = e.to_string();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncated_files_never_panic(cut in 0usize..400) {
        let doc = valid_mm();
        let cut = cut.min(doc.len());
        read_never_panics(&doc[..cut]);
    }

    #[test]
    fn byte_mutations_never_panic(
        pos in 0usize..400,
        byte in 0u8..=255,
    ) {
        let mut doc = valid_mm();
        let pos = pos % doc.len();
        doc[pos] = byte;
        read_never_panics(&doc);
    }

    #[test]
    fn spliced_index_lines_never_panic(
        r in prop::sample::select(vec![0u64, 1, 6, 7, 1 << 20, u64::MAX - 1, u64::MAX]),
        c in prop::sample::select(vec![0u64, 1, 4, 5, 1 << 20, u64::MAX - 1, u64::MAX]),
        v in prop::sample::select(vec![
            f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1e308, -1e-308, 42.5,
        ]),
    ) {
        // Oversized or zero indices, NaN/Inf values: splice an
        // adversarial entry line into an otherwise-valid file.
        let doc = format!(
            "%%MatrixMarket matrix coordinate real general\n6 4 1\n{r} {c} {v}\n"
        );
        read_never_panics(doc.as_bytes());
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        read_never_panics(&bytes);
    }

    #[test]
    fn garbage_headers_never_panic(
        header in prop::collection::vec(0x20u8..0x7f, 0..60),
        // 0 maps to a newline so multi-line garbage appears too.
        rest in prop::collection::vec(0u8..96, 0..120),
    ) {
        let mut doc = header;
        doc.push(b'\n');
        doc.extend(rest.iter().map(|&b| if b == 0 { b'\n' } else { 0x1f + b }));
        read_never_panics(&doc);
    }

    #[test]
    fn symmetric_shapes_never_panic(
        nrows in 1usize..8,
        ncols in 1usize..8,
        r in 1usize..10,
        c in 1usize..10,
    ) {
        // Mirrored pushes on declared-symmetric files were a panic path
        // once; any shape/index combination must now parse or error.
        let doc = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n{nrows} {ncols} 1\n{r} {c} 1.0\n"
        );
        read_never_panics(doc.as_bytes());
    }
}
