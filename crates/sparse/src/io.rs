//! MatrixMarket coordinate-format I/O.
//!
//! SVDPACKC (the paper's reference \[4\]) consumed Harwell–Boeing files;
//! MatrixMarket is its modern, human-readable successor and lets the
//! term-document matrices built here be exchanged with other tools.

use std::io::{BufRead, Write};

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::{Error, Result};

/// Write `m` in MatrixMarket coordinate format (1-based indices).
pub fn write_matrix_market<W: Write>(m: &CscMatrix, out: &mut W) -> Result<()> {
    writeln!(out, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(out, "% written by lsi-sparse")?;
    writeln!(out, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(out, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Read a MatrixMarket coordinate-format stream into a [`CooMatrix`].
///
/// Supports `real` and `integer` fields, `general` and `symmetric`
/// symmetry (symmetric entries are mirrored).
pub fn read_matrix_market<R: BufRead>(input: R) -> Result<CooMatrix> {
    match lsi_fault::eval(lsi_fault::points::SPARSE_IO_READ) {
        Some(_) => {
            // Both return-err and inject-nan surface as a read failure:
            // there is no buffer to poison before parsing begins.
            return Err(Error::Parse {
                line: 0,
                message: format!(
                    "fault injected at failpoint `{}`",
                    lsi_fault::points::SPARSE_IO_READ
                ),
            });
        }
        None => {}
    }
    let mut lines = input.lines().enumerate();

    // Header line.
    let (lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(Error::Parse {
                    line: 0,
                    message: "empty stream".to_string(),
                })
            }
        }
    };
    let header_lower = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lower.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(Error::Parse {
            line: lineno,
            message: format!("bad MatrixMarket header: {header}"),
        });
    }
    if fields[2] != "coordinate" {
        return Err(Error::Parse {
            line: lineno,
            message: format!("only coordinate format supported, got {}", fields[2]),
        });
    }
    if fields[3] != "real" && fields[3] != "integer" {
        return Err(Error::Parse {
            line: lineno,
            message: format!("only real/integer fields supported, got {}", fields[3]),
        });
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(Error::Parse {
                line: lineno,
                message: format!("unsupported symmetry {other}"),
            })
        }
    };

    // Size line (skipping comments).
    let (size_lineno, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(Error::Parse {
                    line: lineno,
                    message: "missing size line".to_string(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| Error::Parse {
            line: size_lineno,
            message: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(Error::Parse {
            line: size_lineno,
            message: format!("size line has {} fields, expected 3", dims.len()),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    if symmetric && nrows != ncols {
        return Err(Error::Parse {
            line: size_lineno,
            message: format!("symmetric matrix must be square, got {nrows}x{ncols}"),
        });
    }

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse_idx = |p: Option<&str>, what: &str| -> Result<usize> {
            p.ok_or_else(|| Error::Parse {
                line: i + 1,
                message: format!("missing {what}"),
            })?
            .parse::<usize>()
            .map_err(|e| Error::Parse {
                line: i + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let r = parse_idx(parts.next(), "row index")?;
        let c = parse_idx(parts.next(), "column index")?;
        let v: f64 = parts
            .next()
            .ok_or_else(|| Error::Parse {
                line: i + 1,
                message: "missing value".to_string(),
            })?
            .parse()
            .map_err(|e| Error::Parse {
                line: i + 1,
                message: format!("bad value: {e}"),
            })?;
        if r == 0 || c == 0 {
            return Err(Error::Parse {
                line: i + 1,
                message: "MatrixMarket indices are 1-based".to_string(),
            });
        }
        coo.push(r - 1, c - 1, v).map_err(|_| Error::Parse {
            line: i + 1,
            message: format!("index ({r}, {c}) exceeds declared shape {nrows}x{ncols}"),
        })?;
        if symmetric && r != c {
            // The matrix is square (checked at the size line) and the
            // direct entry was in range, so the mirror is too — but a
            // parser must never panic on its input, so map the error.
            coo.push(c - 1, r - 1, v).map_err(|_| Error::Parse {
                line: i + 1,
                message: format!("mirrored index ({c}, {r}) exceeds declared shape"),
            })?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(Error::Parse {
            line: 0,
            message: format!("declared {nnz} entries but found {seen}"),
        });
    }
    Ok(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_csc() -> CscMatrix {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 1, -2.25).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.to_csc()
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = sample_csc();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let coo = read_matrix_market(Cursor::new(buf)).unwrap();
        let back = coo.to_csc();
        assert_eq!(back.shape(), m.shape());
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(back.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn reads_integer_field_and_comments() {
        let text = "%%MatrixMarket matrix coordinate integer general\n% a comment\n\n2 2 2\n1 1 3\n2 2 4\n";
        let coo = read_matrix_market(Cursor::new(text)).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn reads_symmetric_matrices() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 1 5.0\n";
        let coo = read_matrix_market(Cursor::new(text)).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%NotMatrixMarket nope\n1 1 0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_non_square_symmetric_matrices() {
        // The mirrored entry (1, 3) would land outside a 3x2 shape —
        // this used to panic in the mirror push; now it is a parse error.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 2 1\n3 1 1.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("square"), "got {err}");
    }
}
