//! Sparse matrix substrate for the LSI reproduction.
//!
//! Term-document matrices are "usually sparse" (§2.1 of the paper; the
//! TREC matrices of §5.3 are 0.001–0.002 % dense), so everything the SVD
//! and retrieval layers touch is built on the formats here:
//!
//! * [`coo::CooMatrix`] — triplet accumulator used while parsing text,
//! * [`csr::CsrMatrix`] — row-major compressed storage, serial and
//!   rayon-parallel `A·x`,
//! * [`csc::CscMatrix`] — column-major compressed storage (a column is a
//!   document), `Aᵀ·x`, and per-document access,
//! * [`io`] — MatrixMarket coordinate-format reader/writer,
//! * [`hb`] — Harwell–Boeing `RUA` reader/writer (SVDPACKC's native
//!   format, the paper's reference \[4\]),
//! * [`gen`] — random sparse generators used by the TREC-scale
//!   experiments,
//! * [`stats`] — density/nnz diagnostics reported by the benchmarks.

// Index-based loops over parallel arrays are the clearest idiom in
// numerical kernels; clippy's iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]


pub mod coo;
pub mod csc;
pub mod csr;
pub mod gen;
pub mod hb;
pub mod io;
pub mod ops;
pub mod spans;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use ops::MatVec;
pub use spans::nnz_balanced_spans;

/// Number of stored nonzeros below which the parallel matvecs stay
/// serial.
///
/// Calibration, two measurements on this 2-core container:
///
/// * `cargo test -p rayon --release -- --ignored --nocapture dispatch`
///   puts a warm pooled parallel region at ~38 µs (vs ~0.6 ms per
///   scoped spawn).
/// * `cargo test -p lsi-sparse --release --test par_consistency --
///   --ignored --nocapture` sweeps serial vs pooled SpMV: cache-warm
///   kernels run ~0.9–1.5 Gnnz/s, tie near ~30 K nnz, and reach 1.3x
///   at ~150 K nnz.
///
/// The warm tie point is NOT the right threshold: inside Lanczos the
/// matvecs interleave with serial scalar work, workers park between
/// calls, and the realized per-dispatch cost (wakeup + steal traffic)
/// is ~30 µs on top of the region itself — at 1<<15 the pooled gram
/// stage measured 2.2x *slower* than serial (47 µs of work per
/// product, trec_like corpus). 1<<17 nnz ≈ 130–170 µs of serial work
/// clears that overhead with margin (~1.3x warm, ~1.4x projected
/// cold); the old spawn-per-call cost (~0.6–1.7 ms) would have
/// demanded megabyte-scale matrices.
pub const PAR_NNZ_THRESHOLD: usize = 1 << 17;

/// Errors reported by sparse-matrix construction and I/O.
#[derive(Debug)]
pub enum Error {
    /// An index was out of bounds for the declared shape.
    IndexOutOfBounds {
        /// Row index supplied.
        row: usize,
        /// Column index supplied.
        col: usize,
        /// Declared shape.
        shape: (usize, usize),
    },
    /// Dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description.
        context: String,
    },
    /// A MatrixMarket stream could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::IndexOutOfBounds { row, col, shape } => {
                write!(f, "index ({row}, {col}) out of bounds for {}x{}", shape.0, shape.1)
            }
            Error::DimensionMismatch { context } => write!(f, "dimension mismatch: {context}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::IndexOutOfBounds {
            row: 7,
            col: 2,
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(7, 2)"));
        let e = Error::Parse {
            line: 12,
            message: "bad header".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
