//! nnz-balanced work partitioning for the parallel matvecs.
//!
//! Splitting a sparse matvec by *row count* hands skewed matrices to
//! one worker: term-frequency matrices are Zipf-distributed, so a few
//! dense term rows can hold a large share of the nonzeros and the
//! worker that draws them finishes long after the rest. Instead, the
//! parallel kernels partition by *nonzero count*: the compressed
//! pointer array (`indptr`) is itself the prefix-sum of nnz per
//! row/column, so span boundaries fall out of a handful of binary
//! searches — no scan, no extra storage.

/// Partition `0..indptr.len()-1` (rows of a CSR, columns of a CSC)
/// into at most `n_spans` contiguous spans holding roughly equal
/// nonzero counts. Returns half-open `(lo, hi)` index ranges covering
/// every index exactly once; spans are never empty. A single row/column
/// holding most of the nonzeros yields fewer, uneven spans (it cannot
/// be split), which is exactly the right behavior: its neighbors land
/// in other spans instead of queueing behind it.
pub fn nnz_balanced_spans(indptr: &[usize], n_spans: usize) -> Vec<(usize, usize)> {
    let n = indptr.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    let total = indptr[n];
    let n_spans = n_spans.clamp(1, n);
    if n_spans == 1 || total == 0 {
        return vec![(0, n)];
    }
    let mut spans = Vec::with_capacity(n_spans);
    let mut lo = 0usize;
    for s in 1..=n_spans {
        // Smallest boundary whose prefix nnz reaches the s-th quantile;
        // `partition_point` is the binary search (indptr is monotone).
        let target = total * s / n_spans;
        let hi = if s == n_spans {
            n
        } else {
            indptr.partition_point(|&p| p < target).min(n)
        };
        if hi > lo {
            spans.push((lo, hi));
            lo = hi;
        }
    }
    debug_assert_eq!(spans.last().map(|s| s.1), Some(n));
    spans
}

/// A raw mutable pointer the parallel matvecs share across workers.
/// Safe only because every worker derives a slice from a span of the
/// disjoint partition produced by [`nnz_balanced_spans`].
pub(crate) struct SyncMutPtr(pub *mut f64);

impl SyncMutPtr {
    /// Accessor rather than field access so closures capture the
    /// `Sync` wrapper, not the bare pointer (edition-2021 closures
    /// capture individual fields otherwise).
    #[inline]
    pub(crate) fn get(&self) -> *mut f64 {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced through disjoint spans.
unsafe impl Send for SyncMutPtr {}
unsafe impl Sync for SyncMutPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(indptr: &[usize], spans: &[(usize, usize)]) {
        let n = indptr.len() - 1;
        let mut next = 0;
        for &(lo, hi) in spans {
            assert_eq!(lo, next, "spans must be contiguous");
            assert!(hi > lo, "spans must be non-empty");
            next = hi;
        }
        assert_eq!(next, n, "spans must cover all indices");
    }

    #[test]
    fn uniform_rows_split_evenly() {
        // 8 rows x 10 nnz each.
        let indptr: Vec<usize> = (0..=8).map(|r| r * 10).collect();
        let spans = nnz_balanced_spans(&indptr, 4);
        check_cover(&indptr, &spans);
        assert_eq!(spans, vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn one_dense_row_does_not_drag_neighbors() {
        // Row 3 holds 1000 of 1014 nonzeros; the other rows must land
        // in spans that exclude it so they don't queue behind it.
        let mut indptr = vec![0usize];
        for r in 0..8 {
            let nnz = if r == 3 { 1000 } else { 2 };
            indptr.push(indptr.last().unwrap() + nnz);
        }
        let spans = nnz_balanced_spans(&indptr, 4);
        check_cover(&indptr, &spans);
        // The dense row terminates its own span.
        assert!(spans.iter().any(|&(lo, hi)| lo <= 3 && hi == 4));
        // Something comes after it.
        assert!(spans.last().unwrap().0 >= 4);
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        assert!(nnz_balanced_spans(&[0], 4).is_empty());
        // All-empty rows: single span covering everything.
        assert_eq!(nnz_balanced_spans(&[0, 0, 0, 0], 4), vec![(0, 3)]);
        // Leading/trailing empty rows around one populated row.
        let spans = nnz_balanced_spans(&[0, 0, 5, 5, 5], 3);
        check_cover(&[0, 0, 5, 5, 5], &spans);
    }

    #[test]
    fn more_spans_than_rows_clamps() {
        let indptr = vec![0, 1, 2];
        let spans = nnz_balanced_spans(&indptr, 16);
        check_cover(&indptr, &spans);
        assert!(spans.len() <= 2);
    }
}
