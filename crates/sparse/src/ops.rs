//! The linear-operator abstraction consumed by the Lanczos SVD.
//!
//! The Lanczos driver only ever needs `A·x` and `Aᵀ·x`; abstracting them
//! behind a trait lets the same driver run on CSR, CSC, or matrix-free
//! operators (the flop-counting wrapper in `lsi-svd` relies on this).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;

/// A real linear operator exposing forward and transposed products.
pub trait MatVec: Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// `y = A·x`; `x.len() == ncols()`, `y.len() == nrows()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// `y = Aᵀ·x`; `x.len() == nrows()`, `y.len() == ncols()`.
    fn apply_t(&self, x: &[f64], y: &mut [f64]);

    /// Number of stored nonzeros, where meaningful (used by cost models).
    fn nnz(&self) -> usize {
        self.nrows() * self.ncols()
    }
}

impl MatVec for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.par_matvec_into(x, y);
    }

    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        // The CSR transposed product is a scatter (racy to split), so
        // it stays serial; DualFormat holds a CSC copy for this case.
        let r = self.matvec_t(x).expect("dimension checked by caller");
        y.copy_from_slice(&r);
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
}

impl MatVec for CscMatrix {
    fn nrows(&self) -> usize {
        CscMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CscMatrix::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let r = self.matvec(x).expect("dimension checked by caller");
        y.copy_from_slice(&r);
    }

    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        self.par_matvec_t_into(x, y);
    }

    fn nnz(&self) -> usize {
        CscMatrix::nnz(self)
    }
}

/// A pair of matching formats: CSR for `A·x`, CSC for `Aᵀ·x` — each
/// product in its cache-friendly orientation. This is what the LSI model
/// builder hands to the Lanczos driver for large matrices.
pub struct DualFormat {
    /// Row-major copy.
    pub csr: CsrMatrix,
    /// Column-major copy.
    pub csc: CscMatrix,
}

impl DualFormat {
    /// Build both orientations from a CSC source.
    pub fn from_csc(csc: CscMatrix) -> Self {
        let csr = csc.to_csr();
        DualFormat { csr, csc }
    }
}

impl MatVec for DualFormat {
    fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        lsi_obs::count("sparse.matvec.count", 1);
        lsi_obs::add_flops(2.0 * self.csr.nnz() as f64);
        self.csr.par_matvec_into(x, y);
    }

    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        lsi_obs::count("sparse.matvec_t.count", 1);
        lsi_obs::add_flops(2.0 * self.csc.nnz() as f64);
        self.csc.par_matvec_t_into(x, y);
    }

    fn nnz(&self) -> usize {
        self.csr.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample_coo() -> CooMatrix {
        let mut coo = CooMatrix::new(3, 2);
        for (r, c, v) in [(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0), (2, 1, 4.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    #[test]
    fn trait_apply_matches_inherent_methods() {
        let csr = sample_coo().to_csr();
        let csc = sample_coo().to_csc();
        let x = [1.0, -1.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        MatVec::apply(&csr, &x, &mut y1);
        MatVec::apply(&csc, &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(y1, vec![1.0, -2.0, -1.0]);

        let xt = [1.0, 1.0, 1.0];
        let mut z1 = vec![0.0; 2];
        let mut z2 = vec![0.0; 2];
        MatVec::apply_t(&csr, &xt, &mut z1);
        MatVec::apply_t(&csc, &xt, &mut z2);
        assert_eq!(z1, z2);
        assert_eq!(z1, vec![4.0, 6.0]);
    }

    #[test]
    fn dual_format_agrees_with_parts() {
        let dual = DualFormat::from_csc(sample_coo().to_csc());
        assert_eq!(dual.nrows(), 3);
        assert_eq!(dual.ncols(), 2);
        assert_eq!(MatVec::nnz(&dual), 4);
        let x = [0.5, 2.0];
        let mut y = vec![0.0; 3];
        dual.apply(&x, &mut y);
        assert_eq!(y, vec![0.5, 4.0, 9.5]);
        let xt = [1.0, 0.0, 1.0];
        let mut z = vec![0.0; 2];
        dual.apply_t(&xt, &mut z);
        assert_eq!(z, vec![4.0, 4.0]);
    }

    #[test]
    fn default_nnz_is_dense_bound() {
        struct Dense;
        impl MatVec for Dense {
            fn nrows(&self) -> usize {
                3
            }
            fn ncols(&self) -> usize {
                4
            }
            fn apply(&self, _: &[f64], _: &mut [f64]) {}
            fn apply_t(&self, _: &[f64], _: &mut [f64]) {}
        }
        assert_eq!(Dense.nnz(), 12);
    }
}
