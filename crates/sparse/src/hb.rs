//! Harwell–Boeing sparse-matrix I/O.
//!
//! SVDPACKC — the paper's reference \[4\] and the software the authors
//! ran their TREC computations with — consumed Harwell–Boeing files.
//! This module reads and writes the `RUA` (real, unsymmetric,
//! assembled) subset in the standard four-header-line layout, so
//! term-document matrices produced here can be fed to the original
//! Fortran/C tools and vice versa.
//!
//! Format recap (fixed-layout ASCII):
//!
//! ```text
//! line 1: TITLE (72 chars) KEY (8 chars)
//! line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD   (5 x I14)
//! line 3: MXTYPE (3) <11 blanks> NROW NCOL NNZERO NELTVL (4 x I14)
//! line 4: PTRFMT INDFMT VALFMT RHSFMT          (format strings)
//! then column pointers (1-based), row indices (1-based), values.
//! ```

use std::io::{BufRead, Write};

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::{Error, Result};

/// Entries per line used by the writer.
const PTRS_PER_LINE: usize = 8;
const INDS_PER_LINE: usize = 8;
const VALS_PER_LINE: usize = 4;

/// Write `m` as an `RUA` Harwell–Boeing file with the given title
/// (truncated to 72 characters) and key (truncated to 8).
pub fn write_harwell_boeing<W: Write>(
    m: &CscMatrix,
    title: &str,
    key: &str,
    out: &mut W,
) -> Result<()> {
    let (nrow, ncol) = m.shape();
    let nnz = m.nnz();

    // Gather CSC arrays (1-based for the format).
    let mut ptrs: Vec<usize> = Vec::with_capacity(ncol + 1);
    let mut inds: Vec<usize> = Vec::with_capacity(nnz);
    let mut vals: Vec<f64> = Vec::with_capacity(nnz);
    ptrs.push(1);
    for c in 0..ncol {
        let (rows, values) = m.col(c);
        for (&r, &v) in rows.iter().zip(values.iter()) {
            inds.push(r + 1);
            vals.push(v);
        }
        ptrs.push(inds.len() + 1);
    }

    let ptrcrd = ptrs.len().div_ceil(PTRS_PER_LINE);
    let indcrd = inds.len().div_ceil(INDS_PER_LINE).max(if nnz == 0 { 0 } else { 1 });
    let valcrd = vals.len().div_ceil(VALS_PER_LINE).max(if nnz == 0 { 0 } else { 1 });
    let totcrd = ptrcrd + indcrd + valcrd;

    let title72 = format!("{:<72.72}", title);
    let key8 = format!("{:<8.8}", key);
    writeln!(out, "{title72}{key8}")?;
    writeln!(out, "{totcrd:14}{ptrcrd:14}{indcrd:14}{valcrd:14}{:14}", 0)?;
    writeln!(out, "{:<14}{nrow:14}{ncol:14}{nnz:14}{:14}", "RUA", 0)?;
    writeln!(
        out,
        "{:<16}{:<16}{:<20}{:<20}",
        "(8I10)", "(8I10)", "(4E20.12)", ""
    )?;

    for chunk in ptrs.chunks(PTRS_PER_LINE) {
        for p in chunk {
            write!(out, "{p:10}")?;
        }
        writeln!(out)?;
    }
    for chunk in inds.chunks(INDS_PER_LINE) {
        for i in chunk {
            write!(out, "{i:10}")?;
        }
        writeln!(out)?;
    }
    for chunk in vals.chunks(VALS_PER_LINE) {
        for v in chunk {
            write!(out, "{v:20.12E}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Parse whitespace-separated numbers from `count` tokens spread over
/// however many lines it takes.
fn read_tokens<R: BufRead>(
    input: &mut std::iter::Enumerate<std::io::Lines<R>>,
    count: usize,
) -> Result<Vec<String>> {
    let mut tokens = Vec::with_capacity(count);
    while tokens.len() < count {
        let Some((lineno, line)) = input.next() else {
            return Err(Error::Parse {
                line: 0,
                message: format!("file ended with {} of {count} values read", tokens.len()),
            });
        };
        let line = line?;
        for t in line.split_whitespace() {
            if tokens.len() < count {
                tokens.push(t.to_string());
            } else {
                return Err(Error::Parse {
                    line: lineno + 1,
                    message: "more values on line than expected".to_string(),
                });
            }
        }
    }
    Ok(tokens)
}

/// Read an `RUA`/`RSA`-assembled Harwell–Boeing stream.
///
/// The reader is tolerant of the numeric fields being whitespace-
/// rather than column-aligned (all practical writers emit separators),
/// handles Fortran `D` exponents, and mirrors symmetric (`RSA`)
/// entries.
pub fn read_harwell_boeing<R: BufRead>(input: R) -> Result<(CooMatrix, String, String)> {
    let mut lines = input.lines().enumerate();

    // Line 1: title + key.
    let (_, l1) = lines.next().ok_or_else(|| Error::Parse {
        line: 1,
        message: "missing header line 1".to_string(),
    })?;
    let l1 = l1?;
    let (title, key) = if l1.len() > 72 {
        (l1[..72].trim().to_string(), l1[72..].trim().to_string())
    } else {
        (l1.trim().to_string(), String::new())
    };

    // Line 2: card counts (we only need RHSCRD presence).
    let (_, l2) = lines.next().ok_or_else(|| Error::Parse {
        line: 2,
        message: "missing header line 2".to_string(),
    })?;
    let _ = l2?;

    // Line 3: type and dimensions.
    let (lineno3, l3) = lines.next().ok_or_else(|| Error::Parse {
        line: 3,
        message: "missing header line 3".to_string(),
    })?;
    let l3 = l3?;
    let mut fields = l3.split_whitespace();
    let mxtype = fields
        .next()
        .ok_or_else(|| Error::Parse {
            line: lineno3 + 1,
            message: "missing matrix type".to_string(),
        })?
        .to_ascii_uppercase();
    if !(mxtype.starts_with('R') && mxtype.ends_with('A') && mxtype.len() == 3) {
        return Err(Error::Parse {
            line: lineno3 + 1,
            message: format!("unsupported matrix type {mxtype} (need R_A assembled real)"),
        });
    }
    let symmetric = mxtype.as_bytes()[1] == b'S';
    let dims: Vec<usize> = fields
        .take(3)
        .map(|t| t.parse::<usize>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| Error::Parse {
            line: lineno3 + 1,
            message: format!("bad dimensions: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(Error::Parse {
            line: lineno3 + 1,
            message: "header line 3 needs NROW NCOL NNZERO".to_string(),
        });
    }
    let (nrow, ncol, nnz) = (dims[0], dims[1], dims[2]);

    // Line 4: formats (ignored; we parse by whitespace).
    let (_, l4) = lines.next().ok_or_else(|| Error::Parse {
        line: 4,
        message: "missing header line 4".to_string(),
    })?;
    let _ = l4?;

    // Pointers, indices, values.
    let parse_usize = |t: &str| -> Result<usize> {
        t.parse().map_err(|e| Error::Parse {
            line: 0,
            message: format!("bad integer {t:?}: {e}"),
        })
    };
    let ptr_tokens = read_tokens(&mut lines, ncol + 1)?;
    let ptrs: Vec<usize> = ptr_tokens
        .iter()
        .map(|t| parse_usize(t))
        .collect::<Result<_>>()?;
    let ind_tokens = read_tokens(&mut lines, nnz)?;
    let inds: Vec<usize> = ind_tokens
        .iter()
        .map(|t| parse_usize(t))
        .collect::<Result<_>>()?;
    let val_tokens = read_tokens(&mut lines, nnz)?;
    let vals: Vec<f64> = val_tokens
        .iter()
        .map(|t| {
            t.replace(['D', 'd'], "E").parse::<f64>().map_err(|e| Error::Parse {
                line: 0,
                message: format!("bad value {t:?}: {e}"),
            })
        })
        .collect::<Result<_>>()?;

    if ptrs.first() != Some(&1) || ptrs.last() != Some(&(nnz + 1)) {
        return Err(Error::Parse {
            line: 0,
            message: format!(
                "column pointers must run from 1 to nnz+1, got {:?}..{:?}",
                ptrs.first(),
                ptrs.last()
            ),
        });
    }

    let mut coo = CooMatrix::with_capacity(nrow, ncol, nnz);
    for c in 0..ncol {
        let lo = ptrs[c] - 1;
        let hi = ptrs[c + 1] - 1;
        if hi < lo || hi > nnz {
            return Err(Error::Parse {
                line: 0,
                message: format!("column {c} pointer range {lo}..{hi} invalid"),
            });
        }
        for idx in lo..hi {
            let r = inds[idx];
            if r == 0 || r > nrow {
                return Err(Error::Parse {
                    line: 0,
                    message: format!("row index {r} out of 1..={nrow}"),
                });
            }
            coo.push(r - 1, c, vals[idx]).expect("bounds checked");
            if symmetric && r - 1 != c {
                coo.push(c, r - 1, vals[idx]).map_err(|_| Error::Parse {
                    line: 0,
                    message: format!("symmetric mirror ({c}, {}) out of shape", r - 1),
                })?;
            }
        }
    }
    Ok((coo, title, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> CscMatrix {
        let mut coo = CooMatrix::new(4, 3);
        for (r, c, v) in [
            (0, 0, 1.5),
            (2, 0, -2.0),
            (1, 1, 3.25),
            (0, 2, 4.0),
            (3, 2, 5e-3),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn roundtrip_preserves_matrix_and_metadata() {
        let m = sample();
        let mut buf = Vec::new();
        write_harwell_boeing(&m, "test matrix", "TESTKEY", &mut buf).unwrap();
        let (coo, title, key) = read_harwell_boeing(Cursor::new(buf)).unwrap();
        assert_eq!(title, "test matrix");
        assert_eq!(key, "TESTKEY");
        let back = coo.to_csc();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.nnz(), m.nnz());
        for r in 0..4 {
            for c in 0..3 {
                assert!((back.get(r, c) - m.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn header_layout_is_fixed_width() {
        let m = sample();
        let mut buf = Vec::new();
        write_harwell_boeing(&m, "t", "k", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].len(), 80, "title card is 80 columns");
        assert!(lines[2].starts_with("RUA"));
    }

    #[test]
    fn reads_fortran_d_exponents() {
        let text = "\
title                                                                   KEY
             3             1             1             1             0
RUA                        2             2             2             0
(8I10)          (8I10)          (4E20.12)
         1         2         3
         1         2
    1.5D+00    -2.5D-01
";
        let (coo, _, _) = read_harwell_boeing(Cursor::new(text)).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), -0.25);
    }

    #[test]
    fn mirrors_symmetric_matrices() {
        let text = "\
sym                                                                     KEY
             3             1             1             1             0
RSA                        2             2             2             0
(8I10)          (8I10)          (4E20.12)
         1         3         3
         1         2
    1.0E+00     5.0E+00
";
        let (coo, _, _) = read_harwell_boeing(Cursor::new(text)).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    fn rejects_unsupported_types_and_bad_pointers() {
        let complex = "\
t                                                                       K
1 1 0 0 0
CUA 2 2 1 0
(8I10) (8I10) (4E20.12)
1 2 2
1
1.0
";
        assert!(read_harwell_boeing(Cursor::new(complex)).is_err());
        let bad_ptr = "\
t                                                                       K
1 1 0 0 0
RUA 2 2 1 0
(8I10) (8I10) (4E20.12)
2 2 2
1
1.0
";
        assert!(read_harwell_boeing(Cursor::new(bad_ptr)).is_err());
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = CscMatrix::zeros(3, 2);
        let mut buf = Vec::new();
        write_harwell_boeing(&m, "empty", "E", &mut buf).unwrap();
        let (coo, _, _) = read_harwell_boeing(Cursor::new(buf)).unwrap();
        assert_eq!(coo.to_csc().nnz(), 0);
        assert_eq!(coo.to_csc().shape(), (3, 2));
    }

    #[test]
    fn truncates_long_title_and_key() {
        let m = sample();
        let mut buf = Vec::new();
        let long = "x".repeat(100);
        write_harwell_boeing(&m, &long, &long, &mut buf).unwrap();
        let (_, title, key) = read_harwell_boeing(Cursor::new(buf)).unwrap();
        assert_eq!(title.len(), 72);
        assert_eq!(key.len(), 8);
    }
}
