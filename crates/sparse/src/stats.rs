//! Diagnostics for sparse matrices: density, nnz distribution.
//!
//! The paper reports its TREC matrices as "containing only .001–.002 %
//! non-zero entries"; the benchmark harness prints the same statistics
//! for the matrices it generates.

use crate::csc::CscMatrix;

/// Summary statistics of a sparse matrix's sparsity pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// `nnz / (nrows * ncols)`, in [0, 1].
    pub density: f64,
    /// Mean nonzeros per column (terms per document).
    pub mean_col_nnz: f64,
    /// Maximum nonzeros in any column.
    pub max_col_nnz: usize,
    /// Number of empty columns (documents with no indexed terms).
    pub empty_cols: usize,
    /// Number of empty rows (terms occurring in no document — should be
    /// zero after vocabulary pruning).
    pub empty_rows: usize,
}

impl SparsityStats {
    /// Compute statistics for `m`.
    pub fn of(m: &CscMatrix) -> SparsityStats {
        let (nrows, ncols) = m.shape();
        let nnz = m.nnz();
        let cells = (nrows as f64) * (ncols as f64);
        let mut max_col_nnz = 0usize;
        let mut empty_cols = 0usize;
        let mut row_seen = vec![false; nrows];
        for c in 0..ncols {
            let (rows, _) = m.col(c);
            max_col_nnz = max_col_nnz.max(rows.len());
            if rows.is_empty() {
                empty_cols += 1;
            }
            for &r in rows {
                row_seen[r] = true;
            }
        }
        let empty_rows = row_seen.iter().filter(|&&s| !s).count();
        SparsityStats {
            nrows,
            ncols,
            nnz,
            density: if cells > 0.0 { nnz as f64 / cells } else { 0.0 },
            mean_col_nnz: if ncols > 0 { nnz as f64 / ncols as f64 } else { 0.0 },
            max_col_nnz,
            empty_cols,
            empty_rows,
        }
    }

    /// Density expressed as a percentage, matching the paper's
    /// ".001–.002 %" phrasing.
    pub fn density_percent(&self) -> f64 {
        self.density * 100.0
    }
}

impl std::fmt::Display for SparsityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} matrix, {} nonzeros ({:.4}% dense), {:.1} nnz/col (max {}), {} empty cols, {} empty rows",
            self.nrows,
            self.ncols,
            self.nnz,
            self.density_percent(),
            self.mean_col_nnz,
            self.max_col_nnz,
            self.empty_cols,
            self.empty_rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn stats_of_known_matrix() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        let s = SparsityStats::of(&coo.to_csc());
        assert_eq!(s.nnz, 3);
        assert!((s.density - 0.25).abs() < 1e-12);
        assert_eq!(s.max_col_nnz, 2);
        assert_eq!(s.empty_cols, 2); // columns 1 and 3
        assert_eq!(s.empty_rows, 1); // row 2
        assert!((s.mean_col_nnz - 0.75).abs() < 1e-12);
        assert!((s.density_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let s = SparsityStats::of(&CscMatrix::zeros(0, 0));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_col_nnz, 0.0);
    }

    #[test]
    fn display_is_reasonable() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        let text = SparsityStats::of(&coo.to_csc()).to_string();
        assert!(text.contains("2x2"));
        assert!(text.contains("1 nonzeros"));
    }
}
