//! Compressed sparse row storage.
//!
//! CSR is the format for the Lanczos hot loop `y = A·x`: each output row
//! is an independent sparse dot product, which parallelizes over
//! nnz-balanced row spans (see [`crate::spans`]) with no
//! synchronization — each span owns a disjoint slice of `y`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use lsi_linalg::DenseMatrix;

use crate::csc::CscMatrix;
use crate::spans::{nnz_balanced_spans, SyncMutPtr};
use crate::{Error, Result, PAR_NNZ_THRESHOLD};

/// A compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointers (`nrows + 1` entries).
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<usize>,
    /// Nonzero values, parallel to `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw compressed arrays, validating the invariants.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(Error::DimensionMismatch {
                context: format!("indptr has {} entries for {} rows", indptr.len(), nrows),
            });
        }
        if indices.len() != values.len() {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "{} indices but {} values",
                    indices.len(),
                    values.len()
                ),
            });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() || indptr[0] != 0 {
            return Err(Error::DimensionMismatch {
                context: "indptr endpoints do not match nnz".to_string(),
            });
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(Error::DimensionMismatch {
                    context: "indptr not monotone".to_string(),
                });
            }
        }
        for r in 0..nrows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(Error::DimensionMismatch {
                        context: format!("row {r} column indices not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(Error::IndexOutOfBounds {
                        row: r,
                        col: last,
                        shape: (nrows, ncols),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entry accessor (binary search within the row); `0.0` when absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        match self.indices[lo..hi].binary_search(&col) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Column indices and values of one row.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Raw parts `(indptr, indices, values)`.
    pub fn raw(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.indptr, &self.indices, &self.values)
    }

    /// Serial `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                context: format!("matvec: {}x{} with vector {}", self.nrows, self.ncols, x.len()),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// One row span of `y = A·x`: rows `r0 .. r0 + y.len()` into the
    /// matching slice of `y`. Both the serial and parallel paths run
    /// this exact loop, so each `y[r]` is produced by one identical
    /// reduction regardless of thread count (bit-for-bit determinism).
    #[inline]
    fn matvec_rows(&self, x: &[f64], r0: usize, y: &mut [f64]) {
        for (i, out) in y.iter_mut().enumerate() {
            let lo = self.indptr[r0 + i];
            let hi = self.indptr[r0 + i + 1];
            let mut acc = 0.0;
            for idx in lo..hi {
                acc += self.values[idx] * x[self.indices[idx]];
            }
            *out = acc;
        }
    }

    /// Serial `y = A·x` into a caller-provided buffer (no allocation —
    /// this is the Lanczos inner loop).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        self.matvec_rows(x, 0, y);
    }

    /// `y = A·x` into a caller-provided buffer, parallelized over
    /// nnz-balanced row spans when the matrix is large enough; serial
    /// below [`PAR_NNZ_THRESHOLD`] or on a single thread. Row-count
    /// partitioning would let one dense term row (Zipf head) serialize
    /// the whole product; the spans are cut from `indptr` so every
    /// worker gets the same share of nonzeros.
    pub fn par_matvec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        let nthreads = rayon::current_num_threads();
        if self.nnz() < PAR_NNZ_THRESHOLD || nthreads <= 1 {
            return self.matvec_rows(x, 0, y);
        }
        // Two spans per thread: balanced by construction, and cheap to
        // compute (a handful of binary searches on indptr per call).
        let spans = nnz_balanced_spans(&self.indptr, nthreads * 2);
        let yptr = SyncMutPtr(y.as_mut_ptr());
        spans.par_iter().for_each(|&(lo, hi)| {
            // SAFETY: spans partition 0..nrows disjointly, so each
            // worker writes a non-overlapping slice of y.
            let yspan = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(lo), hi - lo) };
            self.matvec_rows(x, lo, yspan);
        });
    }

    /// Parallel `y = A·x` over nnz-balanced row spans; falls back to
    /// serial for small matrices.
    pub fn par_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "par_matvec: {}x{} with vector {}",
                    self.nrows, self.ncols, x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.par_matvec_into(x, &mut y);
        Ok(y)
    }

    /// Serial `y = Aᵀ·x` (scatter over rows).
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "matvec_t: {}x{} with vector {}",
                    self.nrows, self.ncols, x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for idx in lo..hi {
                y[self.indices[idx]] += self.values[idx] * xr;
            }
        }
        Ok(y)
    }

    /// Transposed copy (a CSC view of the same data reinterpreted).
    pub fn transpose(&self) -> CsrMatrix {
        // Count per-column entries.
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.nrows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[idx];
                let slot = next[c];
                indices[slot] = r;
                values[slot] = self.values[idx];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr: counts,
            indices,
            values,
        }
    }

    /// Convert to CSC storage.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_transposed_csr(self.transpose())
    }

    /// Dense copy (small matrices / tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                d.set(r, self.indices[idx], self.values[idx]);
            }
        }
        d
    }

    /// Scale row `i` by `s[i]` in place (global term weighting applies a
    /// per-row factor, Eq. 5 of the paper).
    pub fn scale_rows(&mut self, s: &[f64]) -> Result<()> {
        if s.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!("scale_rows: {} rows, {} scales", self.nrows, s.len()),
            });
        }
        for r in 0..self.nrows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                self.values[idx] *= s[r];
            }
        }
        Ok(())
    }

    /// Scale column `j` by `s[j]` in place.
    pub fn scale_cols(&mut self, s: &[f64]) -> Result<()> {
        if s.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                context: format!("scale_cols: {} cols, {} scales", self.ncols, s.len()),
            });
        }
        for (idx, &c) in self.indices.iter().enumerate() {
            self.values[idx] *= s[c];
        }
        Ok(())
    }

    /// Apply a function to every stored value.
    pub fn map_values(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Iterate `(row, col, value)` over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            self.indices[lo..hi]
                .iter()
                .zip(self.values[lo..hi].iter())
                .map(move |(&c, &v)| (r, c, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5],
        //  [0, 0, 0]]
        let mut coo = CooMatrix::new(4, 3);
        for (r, c, v) in [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn get_returns_stored_and_zero_entries() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(3, 1), 0.0);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0, 9.0, 0.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_t_known() {
        let m = sample();
        let y = m.matvec_t(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![5.0, 3.0, 7.0]);
        assert!(m.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn par_matvec_matches_serial() {
        let m = sample();
        let x = [0.5, -1.0, 2.0];
        assert_eq!(m.matvec(&x).unwrap(), m.par_matvec(&x).unwrap());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_t_equals_transpose_matvec() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let via_t = m.matvec_t(&x).unwrap();
        let via_transpose = m.transpose().matvec(&x).unwrap();
        assert_eq!(via_t, via_transpose);
    }

    #[test]
    fn to_dense_matches_entries() {
        let m = sample();
        let d = m.to_dense();
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(d.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut m = sample();
        m.scale_rows(&[1.0, 2.0, 0.5, 1.0]).unwrap();
        assert_eq!(m.get(1, 1), 6.0);
        assert_eq!(m.get(2, 0), 2.0);
        m.scale_cols(&[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert!(m.scale_rows(&[1.0]).is_err());
        assert!(m.scale_cols(&[1.0]).is_err());
    }

    #[test]
    fn from_raw_validates() {
        // Bad indptr length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-monotone indptr.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Duplicate column within a row.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Valid.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn map_values_and_fro_norm() {
        let mut m = sample();
        m.map_values(|v| v * v);
        assert_eq!(m.get(2, 2), 25.0);
        let m2 = sample();
        assert!((m2.fro_norm() - (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_entries_in_row_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)]
        );
    }

    #[test]
    fn empty_row_handled() {
        let m = sample();
        let (idx, vals) = m.row(3);
        assert!(idx.is_empty() && vals.is_empty());
    }
}
