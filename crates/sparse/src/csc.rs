//! Compressed sparse column storage.
//!
//! A CSC column is a document vector, so the text pipeline and the
//! folding-in machinery (which consume documents one at a time) work on
//! this format; `Aᵀ·x` is a per-column dot product that parallelizes
//! over nnz-balanced column spans the same way CSR's `A·x` does over
//! row spans.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use lsi_linalg::DenseMatrix;

use crate::csr::CsrMatrix;
use crate::spans::{nnz_balanced_spans, SyncMutPtr};
use crate::{Error, Result, PAR_NNZ_THRESHOLD};

/// A compressed sparse column matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// Column pointers (`ncols + 1` entries).
    indptr: Vec<usize>,
    /// Row indices, sorted within each column.
    indices: Vec<usize>,
    /// Nonzero values, parallel to `indices`.
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from raw compressed arrays, validating invariants.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        // Validate by borrowing the CSR checker on the structural
        // transpose (identical invariants with rows<->cols swapped).
        let as_csr = CsrMatrix::from_raw(ncols, nrows, indptr, indices, values)?;
        Ok(CscMatrix::from_transposed_csr(as_csr))
    }

    /// Internal adapter: interpret a CSR matrix as the CSC of its
    /// transpose (same arrays, swapped interpretation).
    pub(crate) fn from_transposed_csr(csr: CsrMatrix) -> Self {
        let (nrows_t, ncols_t) = csr.shape();
        let (indptr, indices, values) = {
            let (a, b, c) = csr.raw();
            (a.to_vec(), b.to_vec(), c.to_vec())
        };
        CscMatrix {
            nrows: ncols_t,
            ncols: nrows_t,
            indptr,
            indices,
            values,
        }
    }

    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            indptr: vec![0; ncols + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Verify the compressed-storage invariants.
    ///
    /// Matrices built through this crate's constructors always satisfy
    /// them; this exists for matrices that arrive from *outside* the
    /// type system's guarantees — deserialized model files, hand-built
    /// test fixtures — where a violated invariant would otherwise
    /// surface later as an out-of-bounds panic in a matvec.
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |context: String| Err(Error::DimensionMismatch { context });
        if self.indptr.len() != self.ncols + 1 {
            return fail(format!(
                "indptr has {} entries for {} columns",
                self.indptr.len(),
                self.ncols
            ));
        }
        if self.indptr[0] != 0 || self.indptr[self.ncols] != self.indices.len() {
            return fail("indptr endpoints do not bracket the index array".into());
        }
        if self.indices.len() != self.values.len() {
            return fail(format!(
                "{} indices vs {} values",
                self.indices.len(),
                self.values.len()
            ));
        }
        for c in 0..self.ncols {
            if self.indptr[c] > self.indptr[c + 1] {
                return fail(format!("indptr not monotone at column {c}"));
            }
            let rows = &self.indices[self.indptr[c]..self.indptr[c + 1]];
            for w in rows.windows(2) {
                if w[0] >= w[1] {
                    return fail(format!("row indices not strictly sorted in column {c}"));
                }
            }
            if let Some(&last) = rows.last() {
                if last >= self.nrows {
                    return fail(format!(
                        "row index {last} out of bounds in column {c} ({} rows)",
                        self.nrows
                    ));
                }
            }
        }
        if !self.values.iter().all(|v| v.is_finite()) {
            return fail("non-finite stored value".into());
        }
        Ok(())
    }

    /// Entry accessor; `0.0` when absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let lo = self.indptr[col];
        let hi = self.indptr[col + 1];
        match self.indices[lo..hi].binary_search(&row) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Row indices and values of one column (a sparse document vector).
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[c];
        let hi = self.indptr[c + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Serial `y = A·x` (gather-scatter over columns).
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                context: format!("matvec: {}x{} with vector {}", self.nrows, self.ncols, x.len()),
            });
        }
        let mut y = vec![0.0; self.nrows];
        for c in 0..self.ncols {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for idx in self.indptr[c]..self.indptr[c + 1] {
                y[self.indices[idx]] += self.values[idx] * xc;
            }
        }
        Ok(y)
    }

    /// Serial `y = Aᵀ·x` (per-column dot products).
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "matvec_t: {}x{} with vector {}",
                    self.nrows, self.ncols, x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.ncols];
        self.matvec_t_into(x, &mut y);
        Ok(y)
    }

    /// One column span of `y = Aᵀ·x`: columns `c0 .. c0 + y.len()` into
    /// the matching slice of `y`. Shared by the serial and parallel
    /// paths, so each `y[c]` is one identical dot product regardless of
    /// thread count (bit-for-bit determinism).
    #[inline]
    fn matvec_t_cols(&self, x: &[f64], c0: usize, y: &mut [f64]) {
        for (i, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.indptr[c0 + i]..self.indptr[c0 + i + 1] {
                acc += self.values[idx] * x[self.indices[idx]];
            }
            *out = acc;
        }
    }

    /// `y = Aᵀ·x` into a caller-provided buffer.
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        self.matvec_t_cols(x, 0, y);
    }

    /// `y = Aᵀ·x` into a caller-provided buffer, parallelized over
    /// nnz-balanced column spans (long documents are the CSC analogue
    /// of dense term rows); serial below [`PAR_NNZ_THRESHOLD`] or on a
    /// single thread.
    pub fn par_matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        let nthreads = rayon::current_num_threads();
        if self.nnz() < PAR_NNZ_THRESHOLD || nthreads <= 1 {
            return self.matvec_t_cols(x, 0, y);
        }
        let spans = nnz_balanced_spans(&self.indptr, nthreads * 2);
        let yptr = SyncMutPtr(y.as_mut_ptr());
        spans.par_iter().for_each(|&(lo, hi)| {
            // SAFETY: spans partition 0..ncols disjointly, so each
            // worker writes a non-overlapping slice of y.
            let yspan = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(lo), hi - lo) };
            self.matvec_t_cols(x, lo, yspan);
        });
    }

    /// Parallel `y = Aᵀ·x` over nnz-balanced column spans.
    pub fn par_matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "par_matvec_t: {}x{} with vector {}",
                    self.nrows, self.ncols, x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.ncols];
        self.par_matvec_t_into(x, &mut y);
        Ok(y)
    }

    /// Convert to CSR storage.
    pub fn to_csr(&self) -> CsrMatrix {
        // The arrays, reinterpreted, are the CSR of the transpose;
        // transposing that yields the CSR of self.
        self.structural_transpose_csr().transpose()
    }

    /// The CSR matrix that shares this matrix's raw arrays — i.e. the
    /// transpose of `self` in row-major form. Zero-copy reinterpretation.
    pub fn structural_transpose_csr(&self) -> CsrMatrix {
        CsrMatrix::from_raw(
            self.ncols,
            self.nrows,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply CSR invariants of the transpose")
    }

    /// Dense copy.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for idx in self.indptr[c]..self.indptr[c + 1] {
                d.set(self.indices[idx], c, self.values[idx]);
            }
        }
        d
    }

    /// Scale row `i` by `s[i]` in place.
    pub fn scale_rows(&mut self, s: &[f64]) -> Result<()> {
        if s.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!("scale_rows: {} rows, {} scales", self.nrows, s.len()),
            });
        }
        for (idx, &r) in self.indices.iter().enumerate() {
            self.values[idx] *= s[r];
        }
        Ok(())
    }

    /// Scale column `j` by `s[j]` in place.
    pub fn scale_cols(&mut self, s: &[f64]) -> Result<()> {
        if s.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                context: format!("scale_cols: {} cols, {} scales", self.ncols, s.len()),
            });
        }
        for c in 0..self.ncols {
            for idx in self.indptr[c]..self.indptr[c + 1] {
                self.values[idx] *= s[c];
            }
        }
        Ok(())
    }

    /// Apply a function to every stored value (local weighting transform).
    pub fn map_values(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Append a sparse column (used when growing a term-document matrix
    /// with new documents before an SVD-update).
    pub fn push_col(&mut self, rows: &[usize], vals: &[f64]) -> Result<()> {
        if rows.len() != vals.len() {
            return Err(Error::DimensionMismatch {
                context: format!("{} row indices but {} values", rows.len(), vals.len()),
            });
        }
        let mut pairs: Vec<(usize, f64)> =
            rows.iter().copied().zip(vals.iter().copied()).collect();
        pairs.sort_unstable_by_key(|&(r, _)| r);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(Error::DimensionMismatch {
                    context: format!("duplicate row index {} in pushed column", w[0].0),
                });
            }
        }
        if let Some(&(r, _)) = pairs.last() {
            if r >= self.nrows {
                return Err(Error::IndexOutOfBounds {
                    row: r,
                    col: self.ncols,
                    shape: (self.nrows, self.ncols),
                });
            }
        }
        for (r, v) in pairs {
            self.indices.push(r);
            self.values.push(v);
        }
        self.indptr.push(self.indices.len());
        self.ncols += 1;
        Ok(())
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Per-column Euclidean norms.
    pub fn col_norms(&self) -> Vec<f64> {
        (0..self.ncols)
            .map(|c| {
                self.values[self.indptr[c]..self.indptr[c + 1]]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }

    /// Iterate `(row, col, value)` over stored entries (column order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let lo = self.indptr[c];
            let hi = self.indptr[c + 1];
            self.indices[lo..hi]
                .iter()
                .zip(self.values[lo..hi].iter())
                .map(move |(&r, &v)| (r, c, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CscMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn get_and_col_access() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 0.0);
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 5.0]);
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_t_known() {
        let m = sample();
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]).unwrap(), vec![5.0, 3.0, 7.0]);
        assert!(m.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn par_matvec_t_matches_serial() {
        let m = sample();
        let x = [2.0, -1.0, 0.5];
        assert_eq!(m.matvec_t(&x).unwrap(), m.par_matvec_t(&x).unwrap());
    }

    #[test]
    fn csr_csc_matvec_agree() {
        let m = sample();
        let csr = m.to_csr();
        let x = [1.5, 2.5, -3.0];
        assert_eq!(m.matvec(&x).unwrap(), csr.matvec(&x).unwrap());
        assert_eq!(m.matvec_t(&x).unwrap(), csr.matvec_t(&x).unwrap());
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn push_col_appends_document() {
        let mut m = sample();
        m.push_col(&[2, 0], &[7.0, 6.0]).unwrap();
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.get(0, 3), 6.0);
        assert_eq!(m.get(2, 3), 7.0);
        assert_eq!(m.get(1, 3), 0.0);
        // Out-of-range row rejected.
        assert!(m.push_col(&[9], &[1.0]).is_err());
        // Duplicate rows rejected.
        assert!(m.push_col(&[0, 0], &[1.0, 2.0]).is_err());
        // Length mismatch rejected.
        assert!(m.push_col(&[0], &[]).is_err());
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut m = sample();
        m.scale_rows(&[2.0, 1.0, 0.5]).unwrap();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 2), 2.5);
        m.scale_cols(&[1.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.get(1, 1), 0.0);
        // Entry (0,2) was 2.0, then x2.0 from the row scale, then x2.0
        // from the column scale.
        assert_eq!(m.get(0, 2), 8.0);
    }

    #[test]
    fn col_norms_known() {
        let m = sample();
        let n = m.col_norms();
        assert!((n[0] - 17.0f64.sqrt()).abs() < 1e-12);
        assert!((n[1] - 3.0).abs() < 1e-12);
        assert!((n[2] - 29.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 3], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn iter_is_column_major() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (2, 0, 4.0), (1, 1, 3.0), (0, 2, 2.0), (2, 2, 5.0)]
        );
    }
}
