//! Random sparse matrix generators.
//!
//! The TREC-scale experiment (§5.3 of the paper) needs term-document
//! matrices of controlled shape and density ("70,000 documents and
//! 90,000 terms ... only .001–.002 % non-zero entries"). These
//! generators produce such matrices with either uniform or Zipf-like
//! row (term) popularity — real vocabularies are Zipfian, which affects
//! Lanczos convergence, so both profiles are available.

use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;

/// Shape of the row-popularity profile used by [`random_term_doc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowProfile {
    /// Every row equally likely.
    Uniform,
    /// Row `i` drawn with probability proportional to `1 / (i + 1)^s`.
    Zipf {
        /// Zipf exponent (1.0 is classic).
        s: f64,
    },
}

/// Generate a random `nrows x ncols` sparse matrix with approximately
/// `density * nrows * ncols` nonzeros, values uniform in `(0, max_count]`
/// rounded up to integers (term frequencies are counts).
///
/// Duplicate positions are merged by summation, so the exact nnz can be
/// slightly below the target at high densities.
pub fn random_term_doc(
    nrows: usize,
    ncols: usize,
    density: f64,
    profile: RowProfile,
    max_count: u32,
    seed: u64,
) -> CscMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    assert!(max_count >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let target = ((nrows as f64) * (ncols as f64) * density).round() as usize;
    let mut coo = CooMatrix::with_capacity(nrows, ncols, target);

    // Precompute the Zipf CDF once if needed.
    let cdf: Option<Vec<f64>> = match profile {
        RowProfile::Uniform => None,
        RowProfile::Zipf { s } => {
            let mut c = Vec::with_capacity(nrows);
            let mut acc = 0.0;
            for i in 0..nrows {
                acc += 1.0 / ((i + 1) as f64).powf(s);
                c.push(acc);
            }
            for v in &mut c {
                *v /= acc;
            }
            Some(c)
        }
    };

    let col_dist = Uniform::new(0, ncols.max(1)).expect("valid range");
    for _ in 0..target {
        let r = match &cdf {
            None => rng.random_range(0..nrows.max(1)),
            Some(c) => {
                let u: f64 = rng.random();
                c.partition_point(|&x| x < u).min(nrows - 1)
            }
        };
        let c = col_dist.sample(&mut rng);
        let v = rng.random_range(1..=max_count) as f64;
        coo.push(r, c, v).expect("indices in range by construction");
    }
    coo.to_csc()
}

/// A random matrix whose singular spectrum is known by construction:
/// `A = sum_i sigma_i u_i v_i^T` with orthonormal random `u`, `v` —
/// returned dense-ish as CSC. Used to test Lanczos accuracy against a
/// planted spectrum.
pub fn planted_spectrum(
    nrows: usize,
    ncols: usize,
    sigmas: &[f64],
    seed: u64,
) -> (CscMatrix, Vec<f64>) {
    let k = sigmas.len().min(nrows.min(ncols));
    let mut rng = StdRng::seed_from_u64(seed);
    // Random Gaussian-ish matrices, orthonormalized by MGS.
    let mut u = lsi_linalg::DenseMatrix::zeros(nrows, k);
    let mut v = lsi_linalg::DenseMatrix::zeros(ncols, k);
    for j in 0..k {
        for i in 0..nrows {
            u.set(i, j, rng.random::<f64>() - 0.5);
        }
        for i in 0..ncols {
            v.set(i, j, rng.random::<f64>() - 0.5);
        }
    }
    lsi_linalg::qr::mgs_orthonormalize(&mut u);
    lsi_linalg::qr::mgs_orthonormalize(&mut v);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nrows * ncols);
    for c in 0..ncols {
        for r in 0..nrows {
            let mut val = 0.0;
            for (j, &s) in sigmas.iter().take(k).enumerate() {
                val += s * u.get(r, j) * v.get(c, j);
            }
            if val != 0.0 {
                coo.push(r, c, val).expect("in range");
            }
        }
    }
    let mut sorted = sigmas[..k].to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite sigma"));
    (coo.to_csc(), sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_approximately_honored() {
        let m = random_term_doc(200, 100, 0.01, RowProfile::Uniform, 3, 42);
        let target = (200.0 * 100.0 * 0.01) as usize;
        // Duplicates merge, so nnz <= target; should be within 15 %.
        assert!(m.nnz() <= target);
        assert!(m.nnz() as f64 > target as f64 * 0.85, "nnz {} target {target}", m.nnz());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = random_term_doc(50, 40, 0.05, RowProfile::Zipf { s: 1.0 }, 5, 7);
        let b = random_term_doc(50, 40, 0.05, RowProfile::Zipf { s: 1.0 }, 5, 7);
        assert_eq!(a, b);
        let c = random_term_doc(50, 40, 0.05, RowProfile::Zipf { s: 1.0 }, 5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_profile_concentrates_mass_on_early_rows() {
        let m = random_term_doc(1000, 50, 0.02, RowProfile::Zipf { s: 1.2 }, 1, 3);
        let csr = m.to_csr();
        let head: usize = (0..100).map(|r| csr.row(r).0.len()).sum();
        let tail: usize = (900..1000).map(|r| csr.row(r).0.len()).sum();
        assert!(
            head > tail * 3,
            "head rows should dominate: head {head} tail {tail}"
        );
    }

    #[test]
    fn values_are_positive_integer_counts() {
        let m = random_term_doc(30, 30, 0.1, RowProfile::Uniform, 4, 1);
        for (_, _, v) in m.iter() {
            assert!((1.0..=8.0).contains(&v) && v.fract() == 0.0, "value {v}");
        }
    }

    #[test]
    fn planted_spectrum_has_declared_singular_values() {
        let sigmas = [5.0, 3.0, 1.0];
        let (m, sorted) = planted_spectrum(20, 15, &sigmas, 11);
        assert_eq!(sorted, vec![5.0, 3.0, 1.0]);
        // Verify via dense SVD.
        let dense = m.to_dense();
        let svd = lsi_linalg::dense_svd(&dense).unwrap();
        for (got, want) in svd.s.iter().take(3).zip(sorted.iter()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(svd.s[3] < 1e-8);
    }

    #[test]
    fn zero_density_gives_empty_matrix() {
        let m = random_term_doc(10, 10, 0.0, RowProfile::Uniform, 1, 0);
        assert_eq!(m.nnz(), 0);
    }
}
