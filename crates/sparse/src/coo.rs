//! Coordinate-format (triplet) sparse matrix builder.
//!
//! The text-processing layer appends one triplet per term occurrence;
//! duplicates are summed when converting to compressed storage, which is
//! exactly the term-frequency semantics of the paper's Eq. (4).

use serde::{Deserialize, Serialize};

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::{Error, Result};

/// A growable sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Empty matrix with triplet capacity reserved.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Append a triplet. Duplicate positions are *summed* on conversion.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(Error::IndexOutOfBounds {
                row,
                col,
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summing).
    pub fn triplet_count(&self) -> usize {
        self.vals.len()
    }

    /// Iterate over `(row, col, value)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR, summing duplicates and dropping explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        compress(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals, true)
    }

    /// Convert to CSC, summing duplicates and dropping explicit zeros.
    pub fn to_csc(&self) -> CscMatrix {
        let csr_of_transpose =
            compress(self.ncols, self.nrows, &self.cols, &self.rows, &self.vals, true);
        CscMatrix::from_transposed_csr(csr_of_transpose)
    }
}

/// Bucket-sort triplets into compressed row storage.
fn compress(
    nrows: usize,
    ncols: usize,
    rows: &[usize],
    cols: &[usize],
    vals: &[f64],
    drop_zeros: bool,
) -> CsrMatrix {
    // Count entries per row.
    let mut counts = vec![0usize; nrows + 1];
    for &r in rows {
        counts[r + 1] += 1;
    }
    for i in 0..nrows {
        counts[i + 1] += counts[i];
    }
    // Scatter into per-row buckets.
    let mut col_idx = vec![0usize; vals.len()];
    let mut values = vec![0.0f64; vals.len()];
    let mut next = counts.clone();
    for ((&r, &c), &v) in rows.iter().zip(cols.iter()).zip(vals.iter()) {
        let slot = next[r];
        col_idx[slot] = c;
        values[slot] = v;
        next[r] += 1;
    }
    // Sort each row by column and sum duplicates.
    let mut out_indptr = Vec::with_capacity(nrows + 1);
    let mut out_cols = Vec::with_capacity(vals.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    out_indptr.push(0usize);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for r in 0..nrows {
        scratch.clear();
        scratch.extend(
            col_idx[counts[r]..counts[r + 1]]
                .iter()
                .copied()
                .zip(values[counts[r]..counts[r + 1]].iter().copied()),
        );
        scratch.sort_unstable_by_key(|&(c, _)| c);
        let mut i = 0;
        while i < scratch.len() {
            let c = scratch[i].0;
            let mut v = scratch[i].1;
            let mut j = i + 1;
            while j < scratch.len() && scratch[j].0 == c {
                v += scratch[j].1;
                j += 1;
            }
            if !(drop_zeros && v == 0.0) {
                out_cols.push(c);
                out_vals.push(v);
            }
            i = j;
        }
        out_indptr.push(out_cols.len());
    }
    CsrMatrix::from_raw(nrows, ncols, out_indptr, out_cols, out_vals)
        .expect("compress produces valid CSR by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 2, 2.0).unwrap();
        assert_eq!(m.triplet_count(), 2);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    fn push_out_of_bounds_errors() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn duplicates_are_summed_in_csr() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 3.5);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let mut m = CooMatrix::new(1, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, -1.0).unwrap();
        m.push(0, 1, 4.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 0.0);
        assert_eq!(csr.get(0, 1), 4.0);
    }

    #[test]
    fn csr_and_csc_agree() {
        let mut m = CooMatrix::new(3, 4);
        for (r, c, v) in [(0, 3, 1.0), (2, 0, -2.0), (1, 1, 0.5), (2, 3, 7.0)] {
            m.push(r, c, v).unwrap();
        }
        let csr = m.to_csr();
        let csc = m.to_csc();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(csr.get(i, j), csc.get(i, j), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_matrix_converts() {
        let m = CooMatrix::new(0, 0);
        assert_eq!(m.to_csr().nnz(), 0);
        assert_eq!(m.to_csc().nnz(), 0);
    }

    #[test]
    fn triplets_iterates_in_insertion_order() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 0, 9.0).unwrap();
        m.push(0, 1, 8.0).unwrap();
        let t: Vec<_> = m.triplets().collect();
        assert_eq!(t, vec![(1, 0, 9.0), (0, 1, 8.0)]);
    }
}
