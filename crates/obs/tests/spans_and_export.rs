//! Integration tests against the process-global API: nested-span
//! timing monotonicity, flop roll-up, concurrent counters, the
//! disabled fast path, and the JSON exporter round-trip.
//!
//! Tests here share the global registry and enabled flag, so each one
//! holds GLOBAL_LOCK for its whole body and resets state on entry.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use lsi_obs::{parse_json, snapshot_to_json, Json, PhaseStats, RunReport, Snapshot};

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn isolated() -> MutexGuard<'static, ()> {
    let guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    lsi_obs::reset();
    lsi_obs::set_enabled(true);
    guard
}

#[test]
fn nested_span_timing_is_monotone() {
    let _guard = isolated();
    {
        let _outer = lsi_obs::span("outer");
        {
            let _inner = lsi_obs::span("inner");
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let _inner = lsi_obs::span("inner");
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    lsi_obs::set_enabled(false);
    let snap = lsi_obs::snapshot();
    let outer = snap.span("outer").expect("outer recorded");
    let inner = snap.span("outer.inner").expect("inner nested under outer");
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 2);
    // A parent's wall clock covers its children plus its own work.
    assert!(
        outer.secs >= inner.secs,
        "outer {} < nested inner {}",
        outer.secs,
        inner.secs
    );
    assert!(inner.secs >= 0.010, "two 5 ms sleeps, got {}", inner.secs);
    assert!(outer.secs >= inner.secs + 0.002);
}

#[test]
fn flops_roll_up_to_enclosing_spans_but_phases_do_not() {
    let _guard = isolated();
    {
        let _build = lsi_obs::span("build");
        {
            let _svd = lsi_obs::span("svd");
            lsi_obs::add_flops(1000.0);
            lsi_obs::add_bytes(64.0);
            // Out-of-band breakdown: recorded alongside, not added in.
            lsi_obs::record_phase("lanczos.gram", &PhaseStats::once(400.0, 0.1));
        }
        lsi_obs::add_flops(50.0);
    }
    lsi_obs::set_enabled(false);
    let snap = lsi_obs::snapshot();
    let build = snap.span("build").unwrap();
    let svd = snap.span("build.svd").unwrap();
    let gram = snap.span("build.svd.lanczos.gram").unwrap();
    assert_eq!(svd.flops, 1000.0, "svd keeps its own attribution");
    assert_eq!(svd.bytes, 64.0);
    assert_eq!(build.flops, 1050.0, "children roll up into the parent");
    assert_eq!(build.bytes, 64.0);
    assert_eq!(gram.flops, 400.0, "phase breakdown recorded verbatim");
    assert_eq!(gram.secs, 0.1);
}

#[test]
fn zero_duration_spans_still_report_nonzero_wall_time() {
    let _guard = isolated();
    drop(lsi_obs::span("instant"));
    lsi_obs::set_enabled(false);
    let s = *lsi_obs::snapshot().span("instant").unwrap();
    assert!(s.secs > 0.0, "clamped wall time must be nonzero");
}

#[test]
fn concurrent_counters_and_histograms_from_scoped_threads() {
    let _guard = isolated();
    const THREADS: usize = 8;
    const PER: u64 = 5_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER {
                    lsi_obs::count("test.ops.count", 1);
                    lsi_obs::observe("test.lat.us", (t as f64) * 100.0 + (i % 7) as f64);
                }
            });
        }
    });
    lsi_obs::set_enabled(false);
    let snap = lsi_obs::snapshot();
    assert_eq!(snap.counter("test.ops.count"), Some(THREADS as u64 * PER));
    let hist = snap
        .hists
        .iter()
        .find(|(n, _)| n == "test.lat.us")
        .map(|(_, h)| *h)
        .unwrap();
    assert_eq!(hist.count, THREADS as u64 * PER, "no samples lost to races");
}

#[test]
fn spans_on_separate_threads_do_not_nest_into_each_other() {
    let _guard = isolated();
    std::thread::scope(|s| {
        s.spawn(|| {
            let _a = lsi_obs::span("thread_a");
            std::thread::sleep(Duration::from_millis(2));
        });
        s.spawn(|| {
            let _b = lsi_obs::span("thread_b");
            std::thread::sleep(Duration::from_millis(2));
        });
    });
    lsi_obs::set_enabled(false);
    let snap = lsi_obs::snapshot();
    assert!(snap.span("thread_a").is_some());
    assert!(snap.span("thread_b").is_some());
    assert!(snap.span("thread_a.thread_b").is_none());
    assert!(snap.span("thread_b.thread_a").is_none());
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = isolated();
    lsi_obs::set_enabled(false);
    {
        let _s = lsi_obs::span("ghost");
        lsi_obs::add_flops(1e9);
        lsi_obs::count("ghost.count", 3);
        lsi_obs::observe("ghost.us", 5.0);
        lsi_obs::record_phase("sub", &PhaseStats::once(1.0, 1.0));
    }
    let snap = lsi_obs::snapshot();
    assert!(snap.span("ghost").is_none());
    assert_eq!(snap.counter("ghost.count"), None);
    assert!(snap.hists.iter().all(|(n, _)| n != "ghost.us"));
}

#[test]
fn run_report_round_trips_through_json_text() {
    let _guard = isolated();
    {
        let _q = lsi_obs::span("query");
        lsi_obs::add_flops(2048.0);
        lsi_obs::count("query.count", 1);
        lsi_obs::observe("query.time.us", 130.0);
    }
    lsi_obs::set_enabled(false);

    let mut report = RunReport::new("roundtrip-test").meta("k", Json::Num(64.0));
    report.result("qps", Json::Num(1234.5));
    report.snapshot = lsi_obs::snapshot();
    let json = report.to_json();
    let text = json.to_string_pretty();

    let parsed = parse_json(&text).expect("exporter output parses");
    assert_eq!(parsed, json, "write → parse is lossless");
    assert_eq!(parse_json(&parsed.to_string_pretty()).unwrap(), parsed);

    let metrics = parsed.get("metrics").unwrap();
    let query = metrics.get("spans").unwrap().get("query").unwrap();
    assert_eq!(query.get("flops").unwrap().as_f64(), Some(2048.0));
    assert!(query.get("secs").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        metrics.get("counters").unwrap().get("query.count").unwrap().as_f64(),
        Some(1.0)
    );
    assert_eq!(
        parsed.get("meta").unwrap().get("git_sha").unwrap().as_str().map(str::len),
        Some(40)
    );
}

#[test]
fn snapshot_json_of_empty_registry_is_valid() {
    let _guard = isolated();
    lsi_obs::set_enabled(false);
    let json = snapshot_to_json(&Snapshot::default());
    assert_eq!(parse_json(&json.to_string_pretty()).unwrap(), json);
}
