//! Property tests for the log-bucketed histogram against a naive
//! sorted-vec oracle: bucket boundaries, percentile extraction, and
//! exact count/sum/min/max bookkeeping on arbitrary sample sets.

use lsi_obs::{bucket_index, bucket_upper_bound, Histogram, GROWTH, HIST_BUCKETS};
use proptest::prelude::*;

/// The oracle: the exact order statistic at the same target rank the
/// histogram uses, `ceil(q·n)` clamped to `[1, n]`, over a sorted copy
/// of the samples.
fn oracle_percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let target = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_reports_the_oracle_bucket(
        samples in prop::collection::vec(0.0f64..1e7, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // The histogram must land in exactly the bucket that holds the
        // oracle's order statistic, and report that bucket's upper
        // bound — so the answer is within one GROWTH factor above the
        // exact value.
        let exact = oracle_percentile(&sorted, q);
        let reported = h.percentile(q);
        prop_assert_eq!(reported, bucket_upper_bound(bucket_index(exact)));
        prop_assert!(reported >= exact.min(1.0));
        prop_assert!(reported <= exact.max(1.0) * GROWTH * 1.0000001);
    }

    #[test]
    fn bookkeeping_is_exact(samples in prop::collection::vec(0.0f64..1e9, 1..100)) {
        let h = Histogram::default();
        let mut sum = 0.0;
        for &v in &samples {
            h.record(v);
            sum += v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        // Sum accumulates with atomic f64 adds; ordering differences
        // cost at most a few ulps per sample.
        prop_assert!((h.sum() - sum).abs() <= 1e-9 * sum.abs() + 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        samples in prop::collection::vec(0.0f64..1e6, 1..150),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.percentile(lo) <= h.percentile(hi));
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded(a in 0.0f64..1e12, b in 0.0f64..1e12) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(bucket_index(hi) < HIST_BUCKETS);
        // Every value sits at or below its bucket's upper bound.
        prop_assert!(lo <= bucket_upper_bound(bucket_index(lo)) * 1.0000001);
    }
}
