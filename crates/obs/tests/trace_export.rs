//! Integration tests for the Chrome Trace Format exporter: the JSON
//! round-trips through lsi-obs's own parser, B/E events pair and nest
//! per thread, timestamps are monotonic per tid, counter tracks parse,
//! span filters narrow the stream, and a disarmed trace stays empty.
//!
//! Tests share the process-global trace buffer, filter, and enabled
//! flags, so each one holds GLOBAL_LOCK for its whole body and resets
//! state on entry and exit.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use lsi_obs::{parse_json, Json};

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn isolated() -> MutexGuard<'static, ()> {
    let guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    lsi_obs::reset();
    lsi_obs::reset_trace();
    lsi_obs::set_trace_filter(Some("*"));
    lsi_obs::set_enabled(true);
    lsi_obs::set_trace_enabled(true);
    guard
}

fn disarm() {
    lsi_obs::set_trace_enabled(false);
    lsi_obs::set_enabled(false);
    lsi_obs::set_trace_filter(None);
    lsi_obs::reset_trace();
}

/// The traceEvents array of the current buffer, after a round-trip
/// through the serializer and parser.
fn round_tripped_events() -> Vec<Json> {
    let json = lsi_obs::chrome_trace_json();
    let text = json.to_string_pretty();
    let reparsed = parse_json(&text).expect("exporter output parses");
    let Some(Json::Arr(events)) = reparsed.get("traceEvents") else {
        panic!("no traceEvents array");
    };
    events.clone()
}

fn str_field<'a>(e: &'a Json, key: &str) -> &'a str {
    e.get(key).and_then(Json::as_str).unwrap_or("")
}

fn num_field(e: &Json, key: &str) -> f64 {
    e.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

#[test]
fn trace_json_round_trips_and_compact_matches_pretty() {
    let _guard = isolated();
    {
        let _a = lsi_obs::span("rt.outer");
        let _b = lsi_obs::span("rt.inner");
        lsi_obs::add_flops(128.0);
    }
    let json = lsi_obs::chrome_trace_json();
    let pretty = parse_json(&json.to_string_pretty()).expect("pretty parses");
    let compact = parse_json(&json.to_string_compact()).expect("compact parses");
    assert_eq!(pretty.to_string_compact(), compact.to_string_compact());
    let Some(Json::Str(unit)) = pretty.get("displayTimeUnit") else {
        panic!("displayTimeUnit missing");
    };
    assert_eq!(unit, "ms");
    disarm();
}

#[test]
fn begin_end_events_pair_and_nest_per_thread() {
    let _guard = isolated();
    {
        let _outer = lsi_obs::span("nest.outer");
        {
            let _inner = lsi_obs::span("nest.inner");
        }
        {
            let _inner = lsi_obs::span("nest.inner");
        }
    }
    let events = round_tripped_events();
    // Simulate a per-tid span stack exactly as a trace viewer would.
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut pairs = 0;
    for e in &events {
        let ph = str_field(e, "ph");
        let tid = num_field(e, "tid") as i64;
        match ph {
            "B" => stacks.entry(tid).or_default().push(str_field(e, "name").to_string()),
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E with no open B on this tid");
                assert_eq!(top, str_field(e, "name"), "E must close the innermost B");
                pairs += 1;
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed B events on tid {tid}: {stack:?}");
    }
    assert_eq!(pairs, 3, "outer + two inner spans");
    // Nesting: the inner span's begin lies between the outer's B and E.
    let names: Vec<(&str, &str)> = events
        .iter()
        .map(|e| (str_field(e, "ph"), str_field(e, "name")))
        .filter(|(ph, _)| *ph == "B" || *ph == "E")
        .collect();
    assert_eq!(names.first(), Some(&("B", "nest.outer")));
    assert_eq!(names.last(), Some(&("E", "nest.outer")));
    disarm();
}

#[test]
fn timestamps_are_monotonic_per_tid() {
    let _guard = isolated();
    for _ in 0..4 {
        let _s = lsi_obs::span("mono.step");
    }
    let events = round_tripped_events();
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut checked = 0;
    for e in &events {
        if str_field(e, "ph") == "M" {
            continue;
        }
        let tid = num_field(e, "tid") as i64;
        let ts = num_field(e, "ts");
        assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
        if let Some(prev) = last_ts.get(&tid) {
            assert!(ts >= *prev, "ts went backwards on tid {tid}: {prev} -> {ts}");
        }
        last_ts.insert(tid, ts);
        checked += 1;
    }
    assert!(checked >= 8, "4 spans emit at least 8 B/E events");
    disarm();
}

#[test]
fn counter_tracks_parse_and_accumulate() {
    let _guard = isolated();
    {
        let _a = lsi_obs::span("cnt.work");
        lsi_obs::add_flops(1000.0);
        lsi_obs::add_bytes(4096.0);
    }
    {
        let _b = lsi_obs::span("cnt.work");
        lsi_obs::add_flops(500.0);
    }
    let events = round_tripped_events();
    let flops: Vec<f64> = events
        .iter()
        .filter(|e| str_field(e, "ph") == "C" && str_field(e, "name") == "flops.cumulative")
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .expect("counter value is numeric")
        })
        .collect();
    assert!(flops.len() >= 2, "each span flushes a counter sample");
    assert!(
        flops.windows(2).all(|w| w[1] >= w[0]),
        "cumulative flop track must be non-decreasing: {flops:?}"
    );
    assert_eq!(*flops.last().unwrap(), 1500.0, "totals accumulate");
    let bytes_track = events
        .iter()
        .any(|e| str_field(e, "ph") == "C" && str_field(e, "name") == "bytes.cumulative");
    assert!(bytes_track, "bytes counter track present");
    disarm();
}

#[test]
fn registered_threads_get_thread_name_metadata() {
    let _guard = isolated();
    lsi_obs::register_thread("test-lane");
    {
        let _s = lsi_obs::span("meta.work");
    }
    let events = round_tripped_events();
    let lane = events.iter().find(|e| {
        str_field(e, "ph") == "M"
            && str_field(e, "name") == "thread_name"
            && e.get("args").map(|a| str_field(a, "name") == "test-lane") == Some(true)
    });
    let lane = lane.expect("thread_name metadata for registered lane");
    let lane_tid = num_field(lane, "tid");
    let on_lane = events.iter().any(|e| {
        str_field(e, "ph") == "B" && num_field(e, "tid") == lane_tid
    });
    assert!(on_lane, "span events ride the registered lane's tid");
    let process = events.iter().any(|e| {
        str_field(e, "ph") == "M" && str_field(e, "name") == "process_name"
    });
    assert!(process, "process_name metadata present");
    disarm();
}

#[test]
fn span_end_carries_work_and_allocation_args() {
    let _guard = isolated();
    {
        let _s = lsi_obs::span("allocarg.work");
        lsi_obs::add_flops(64.0);
        let v: Vec<u8> = Vec::with_capacity(128 * 1024);
        std::hint::black_box(&v);
    }
    let events = round_tripped_events();
    let end = events
        .iter()
        .find(|e| str_field(e, "ph") == "E" && str_field(e, "name") == "allocarg.work")
        .expect("E event for the span");
    let args = end.get("args").expect("E events carry args");
    assert_eq!(args.get("flops").and_then(Json::as_f64), Some(64.0));
    let alloc_bytes = args.get("alloc_bytes").and_then(Json::as_f64).unwrap();
    assert!(
        alloc_bytes >= (128 * 1024) as f64,
        "the 128 KiB buffer must be attributed, got {alloc_bytes}"
    );
    let peak = args.get("alloc_peak_bytes").and_then(Json::as_f64).unwrap();
    assert!(peak >= (128 * 1024) as f64, "peak covers the live buffer");
    assert!(args.get("allocs").and_then(Json::as_f64).unwrap() >= 1.0);
    disarm();
}

#[test]
fn trace_filter_narrows_the_event_stream() {
    let _guard = isolated();
    lsi_obs::set_trace_filter(Some("keep.*"));
    {
        let _k = lsi_obs::span("keep.stage");
        let _d = lsi_obs::span("drop_me");
    }
    {
        let _d = lsi_obs::span("other");
    }
    let events = round_tripped_events();
    let b_names: Vec<&str> = events
        .iter()
        .filter(|e| str_field(e, "ph") == "B")
        .map(|e| str_field(e, "name"))
        .collect();
    assert!(
        b_names.iter().all(|n| n.starts_with("keep.")),
        "filter must drop non-matching spans, got {b_names:?}"
    );
    assert!(!b_names.is_empty(), "matching span survives the filter");
    disarm();
}

#[test]
fn disarmed_tracing_emits_nothing() {
    let _guard = isolated();
    lsi_obs::set_trace_enabled(false);
    {
        let _s = lsi_obs::span("dark.work");
        lsi_obs::add_flops(10.0);
    }
    let events = round_tripped_events();
    assert!(
        events.iter().all(|e| str_field(e, "ph") == "M"),
        "only metadata may appear with tracing off"
    );
    // Metrics still flow: tracing and metrics arm independently.
    let snap = lsi_obs::snapshot();
    assert!(snap.span("dark.work").is_some(), "metrics unaffected");
    disarm();
}
