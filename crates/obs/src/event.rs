//! Leveled diagnostic events (the `eprintln!` replacement).
//!
//! Events go to stderr when their level passes the filter. The filter
//! comes from `RUST_LSI_LOG` (`off`, `error`, `warn`, `info`, `debug`,
//! `trace`), read once per process; the default is `warn`, so existing
//! error/warning output stays byte-compatible while `info` and below
//! are opt-in. Output at the default level is the bare message — no
//! timestamps or level prefixes — so call sites migrated from
//! `eprintln!` keep identical stderr bytes.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-facing failures.
    Error = 1,
    /// Suspicious conditions worth surfacing by default.
    Warn = 2,
    /// Progress and lifecycle messages.
    Info = 3,
    /// Per-stage diagnostic detail.
    Debug = 4,
    /// Per-call diagnostic detail.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }

    /// Parse a `RUST_LSI_LOG` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    /// Lowercase name, as accepted by `RUST_LSI_LOG`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = off; otherwise a `Level` discriminant. Initialized lazily from
/// the environment, overridable via [`set_max_level`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_LEVEL: OnceLock<u8> = OnceLock::new();

fn env_level() -> u8 {
    *ENV_LEVEL.get_or_init(|| {
        match std::env::var("RUST_LSI_LOG") {
            Ok(v) => match Level::parse(&v) {
                Some(None) => 0,
                Some(Some(l)) => l as u8,
                // An unparseable filter must not silence errors.
                None => Level::Warn as u8,
            },
            Err(_) => Level::Warn as u8,
        }
    })
}

/// The most verbose level currently emitted, if any.
pub fn max_level() -> Option<Level> {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    let v = if v == u8::MAX { env_level() } else { v };
    Level::from_u8(v)
}

/// Override the level filter (`None` silences everything). Wins over
/// `RUST_LSI_LOG` from the moment it is called.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted.
pub fn level_enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emit one event (used by the level macros; callable directly).
///
/// `Error`/`Warn` print the bare message for byte-compatibility with
/// the `eprintln!` call sites they replaced; verbose levels carry a
/// `level:` prefix since nothing asserts on their bytes.
pub fn event(level: Level, args: fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    crate::registry()
        .counter(&format!("events.{}.count", level.name()))
        .inc();
    if level <= Level::Warn {
        eprintln!("{args}");
    } else {
        eprintln!("{}: {args}", level.name());
    }
}

/// Emit an [`Level::Error`] event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::event($crate::Level::Error, format_args!($($arg)*)) };
}

/// Emit a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::event($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Emit an [`Level::Info`] event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::event($crate::Level::Info, format_args!($($arg)*)) };
}

/// Emit a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::event($crate::Level::Debug, format_args!($($arg)*)) };
}

/// Emit a [`Level::Trace`] event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::event($crate::Level::Trace, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_accepts_all_names_and_off() {
        assert_eq!(Level::parse("ERROR"), Some(Some(Level::Error)));
        assert_eq!(Level::parse("warn"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("warning"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse(" info "), Some(Some(Level::Info)));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("0"), Some(None));
        assert_eq!(Level::parse("nonsense"), None);
    }

    #[test]
    fn set_max_level_filters() {
        // Serialize against other tests that touch the global filter.
        set_max_level(Some(Level::Warn));
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        set_max_level(None);
        assert!(!level_enabled(Level::Error));
        set_max_level(Some(Level::Trace));
        assert!(level_enabled(Level::Trace));
    }
}
