//! The metrics registry: monotonic counters, gauges, and log-bucketed
//! histograms, all thread-safe and cheap enough for kernel call sites.
//!
//! Naming convention (enforced by review, not code):
//! `stage.metric.unit` — e.g. `sparse.matvec.count`,
//! `linalg.gemm.flops.total`, `query.time.us`. Span paths use the same
//! dotted form, one segment per nesting level.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::stats::PhaseStats;

/// A monotonic counter (lock-free).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of histogram buckets.
pub const HIST_BUCKETS: usize = 256;

/// Per-bucket growth factor: bucket upper bounds are `GROWTH^i`, i.e.
/// four buckets per doubling (`2^(1/4)` ≈ 1.189). Quantization error of
/// any percentile is therefore at most one factor of `GROWTH`.
pub const GROWTH: f64 = 1.189_207_115_002_721_1; // 2^(1/4)

/// A log-bucketed histogram for latencies (microseconds) and flop
/// counts: 256 buckets with upper bounds `GROWTH^i` cover `[0, 2^63]`
/// with ≤ 19 % relative quantization error, using one atomic add per
/// record.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>, // HIST_BUCKETS long
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Bucket index for a sample: bucket 0 holds `v <= 1`, bucket `i > 0`
/// holds `GROWTH^(i-1) < v <= GROWTH^i`, the last bucket overflows.
pub fn bucket_index(v: f64) -> usize {
    if !(v > 1.0) {
        return 0;
    }
    let t = v.log2() * 4.0;
    // Snap values that are an exact bucket boundary up to roundoff
    // (log2(GROWTH^i)·4 can land a few ulps above i) before ceiling.
    let i = if (t - t.round()).abs() < 1e-9 {
        t.round()
    } else {
        t.ceil()
    };
    if i >= (HIST_BUCKETS - 1) as f64 {
        HIST_BUCKETS - 1
    } else {
        // log2(v) > 0 here, so i >= 1.
        i as usize
    }
}

/// Upper bound of bucket `i` (the value percentile queries report).
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        1.0
    } else {
        (i as f64 / 4.0).exp2()
    }
}

fn atomic_f64_min(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// Record one sample (negative and NaN samples clamp into bucket 0
    /// and are excluded from min/max/sum bookkeeping only if NaN).
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        // `bucket_index` clamps into range; `get` keeps the hot
        // recording path total even if the bucket table ever changes.
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound
    /// of the bucket holding the rank-`ceil(q·count)` sample — i.e.
    /// within one `GROWTH` factor above the exact order statistic.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// Point-in-time summary of a histogram, for exporters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSnapshot {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (bucket upper bound).
    pub p50: f64,
    /// 90th percentile (bucket upper bound).
    pub p90: f64,
    /// 99th percentile (bucket upper bound).
    pub p99: f64,
}

impl Histogram {
    /// Summarize for export.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// Everything the exporters need, captured at one instant. Maps are
/// sorted by name (the registry stores `BTreeMap`s), so exports are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Span path → aggregated work accounting.
    pub spans: Vec<(String, PhaseStats)>,
    /// Histogram name → summary.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    /// Look up a span's stats by exact path.
    pub fn span(&self, path: &str) -> Option<&PhaseStats> {
        self.spans.iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A metrics registry: named counters, gauges, histograms, and span
/// aggregates. One global instance backs the convenience functions in
/// the crate root; tests may create private instances.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, PhaseStats>>,
}

/// Lock a registry table, recovering from poisoning. Every critical
/// section here is a get-or-create or a read of a `BTreeMap` of
/// handles — a panicking holder can leave at worst a completed insert
/// behind, never a torn entry — and telemetry must not crash the code
/// path it instruments, so the poisoned state is taken as-is.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the named counter. The handle stays valid (and
    /// connected) across [`Registry::reset`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_recover(&self.counters);
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_recover(&self.gauges);
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_recover(&self.hists);
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Merge `stats` into the aggregate for span `path`.
    pub fn record_span(&self, path: &str, stats: &PhaseStats) {
        let mut map = lock_recover(&self.spans);
        map.entry(path.to_string())
            .or_default()
            .merge(stats);
    }

    /// Capture the current state of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock_recover(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: lock_recover(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            spans: lock_recover(&self.spans)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            hists: lock_recover(&self.hists)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every metric. Handles returned by
    /// [`Registry::counter`]/[`gauge`](Registry::gauge)/
    /// [`histogram`](Registry::histogram) remain connected; span
    /// aggregates are dropped.
    pub fn reset(&self) {
        for c in lock_recover(&self.counters).values() {
            c.reset();
        }
        for g in lock_recover(&self.gauges).values() {
            g.reset();
        }
        for h in lock_recover(&self.hists).values() {
            h.reset();
        }
        lock_recover(&self.spans).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_resettable() {
        let r = Registry::new();
        let c = r.counter("x.count");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x.count").value(), 5);
        r.reset();
        assert_eq!(c.value(), 0, "handle survives reset");
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_threads() {
        let r = Registry::new();
        let c = r.counter("threads.count");
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * PER);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(3.5);
        r.gauge("g").set(-1.25);
        assert_eq!(r.gauge("g").value(), -1.25);
    }

    #[test]
    fn bucket_boundaries_are_exclusive_below_inclusive_above() {
        // Bucket i holds (GROWTH^(i-1), GROWTH^i]: an exact upper
        // bound lands in its own bucket, a hair above moves up.
        for i in 1..40 {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(ub * 1.000001), i + 1, "just above bucket {i}");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_on_known_data() {
        let h = Histogram::default();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        // p50 = the bucket holding sample 50; quantization is ≤ GROWTH.
        let p50 = h.percentile(0.5);
        assert!((50.0..=50.0 * GROWTH).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((99.0..=99.0 * GROWTH).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(0.0), 1.0, "q=0 clamps to the first sample");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn span_records_merge() {
        let r = Registry::new();
        r.record_span("a.b", &PhaseStats::once(10.0, 0.1));
        r.record_span("a.b", &PhaseStats::once(30.0, 0.2));
        let snap = r.snapshot();
        let s = snap.span("a.b").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.flops, 40.0);
        assert!((s.secs - 0.3).abs() < 1e-12);
    }
}
