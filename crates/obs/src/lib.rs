//! `lsi-obs` — zero-dependency observability for the LSI workspace.
//!
//! One crate gives every stage of the pipeline (parse → term-doc
//! matrix → truncated SVD → database assembly → query → folding-in)
//! the same three signals:
//!
//! - **spans** — hierarchical timed regions ([`span`]) with unified
//!   flop/byte accounting ([`add_flops`], [`add_bytes`]), aggregated
//!   per dotted path (`build.svd.lanczos.gram`) as [`PhaseStats`];
//! - **metrics** — named monotonic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s with p50/p90/p99 extraction;
//! - **events** — leveled stderr diagnostics ([`error!`], [`warn!`],
//!   [`info!`], …) filtered by `RUST_LSI_LOG`.
//!
//! Everything funnels into one process-global [`Registry`], exported
//! as a human-readable table ([`render_table`]) or JSON
//! ([`snapshot_to_json`], [`RunReport`]).
//!
//! Instrumentation is **off by default**: until [`set_enabled`]`(true)`
//! is called, [`span`] and the attribution helpers cost one relaxed
//! atomic load and nothing else, so library crates instrument
//! unconditionally and binaries opt in (`lsi --metrics`,
//! `perf_kernels`). Events are independent of this switch — they are
//! controlled by the level filter alone, so errors always reach
//! stderr.
//!
//! Metric names follow `stage.metric.unit` (`query.time.us`,
//! `linalg.gemm.flops`); span paths are dotted stage hierarchies. See
//! DESIGN.md "Observability" for the taxonomy and for how to
//! instrument a new kernel.

mod alloc;
mod event;
mod export;
mod json;
mod metrics;
mod span;
mod stats;
mod trace;

pub use alloc::{thread_alloc_totals, CountingAlloc};
pub use event::{event, level_enabled, max_level, set_max_level, Level};
pub use export::{git_sha, git_sha_from, render_table, snapshot_to_json, RunReport};
pub use json::{parse as parse_json, Json, ParseError};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot,
    GROWTH, HIST_BUCKETS,
};
pub use span::SpanGuard;
pub use stats::{PhaseStats, MIN_PHASE_SECS};
pub use trace::{
    chrome_trace_json, register_thread, reset_trace, set_trace_enabled, set_trace_filter,
    trace_enabled, trace_task, trace_task_label, write_chrome_trace, TraceTask, MAX_EVENTS,
};

/// Per-span memory attribution requires the counting allocator to be
/// the process-wide global allocator. Installing it here means every
/// workspace binary that links `lsi-obs` (all of them) gets allocation
/// accounting without further wiring; disarmed cost is one relaxed
/// atomic load per heap call (see `alloc.rs` and DESIGN.md §3g).
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Master switch for spans and metric attribution (not events).
static ENABLED: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// Turn span/metric collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span/metric collection is currently on. This is the only
/// cost instrumented call sites pay when collection is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry backing all convenience functions.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Open a timed span named `name`, nested under any span already open
/// on this thread. Returns a guard; the span closes (and records) when
/// the guard drops. When collection is disabled this is a no-op.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name)
    } else {
        SpanGuard::noop()
    }
}

/// Attribute floating-point work to the innermost open span on this
/// thread. Flops roll up to enclosing spans when each span closes.
#[inline]
pub fn add_flops(flops: f64) {
    if enabled() {
        span::add_flops_here(flops);
    }
}

/// Attribute bytes moved/materialized to the innermost open span.
#[inline]
pub fn add_bytes(bytes: f64) {
    if enabled() {
        span::add_bytes_here(bytes);
    }
}

/// Increment the named counter by `n`.
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled() {
        registry().counter(name).add(n);
    }
}

/// Set the named gauge.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        registry().gauge(name).set(v);
    }
}

/// Record one sample into the named histogram.
#[inline]
pub fn observe(name: &str, v: f64) {
    if enabled() {
        registry().histogram(name).record(v);
    }
}

/// Record pre-aggregated stats for a sub-phase measured out-of-band
/// (e.g. the Lanczos driver's internal per-phase accounting). The
/// stats land under `<current span path>.<suffix>` — a breakdown
/// alongside the enclosing span, not added to it, so work already
/// attributed via [`add_flops`] is not double counted.
pub fn record_phase(suffix: &str, stats: &PhaseStats) {
    if !enabled() {
        return;
    }
    let prefix = span::current_path();
    let path = if prefix.is_empty() {
        suffix.to_string()
    } else {
        format!("{prefix}.{suffix}")
    };
    registry().record_span(&path, stats);
}

/// Zero every metric in the global registry (counters/gauges/
/// histograms reset, span aggregates dropped).
pub fn reset() {
    registry().reset();
}

/// Capture the current state of the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}
