//! Chrome Trace Format export: per-thread span timelines.
//!
//! While tracing is armed ([`set_trace_enabled`]), every span open and
//! close appends a `B`/`E` duration event tagged with a process-unique
//! thread id, and the flop/byte roll-ups feed cumulative counter
//! tracks (`C` events). [`write_chrome_trace`] serializes the buffer
//! as `{"traceEvents": [...]}` — the JSON Chrome Trace Format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly.
//!
//! Thread lanes: each OS thread lazily receives a small integer `tid`
//! the first time it emits an event; [`register_thread`] attaches a
//! human-readable lane name (emitted as `M`/`thread_name` metadata).
//! The vendor/rayon pool registers its workers as `pool.worker.N`, so
//! parallel GEMM tiles, nnz-balanced SpMV spans, and lowp sweeps show
//! up on real worker lanes, not folded into the submitting thread.
//!
//! Filtering: `RUST_LSI_TRACE` (or [`set_trace_filter`]) holds a
//! comma-separated pattern list mirroring the `RUST_LSI_LOG` idiom.
//! `score.*` keeps a subtree, `query` keeps one exact span; patterns
//! match at any dotted segment boundary, so `score.*` also keeps
//! `query.score.candidates`. Unset, empty, or `*` keeps everything.
//!
//! Timestamps are microseconds from a process-wide epoch pinned when
//! tracing is first enabled. Events from one thread are appended in
//! program order, so per-tid timestamps are monotonic by construction.
//! The buffer is bounded ([`MAX_EVENTS`]); overflow increments a drop
//! counter reported at export instead of growing without limit.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::stats::PhaseStats;

/// Hard cap on buffered events (~1M ≈ a few hundred MB of JSON at
/// worst); beyond it events are counted as dropped, not stored.
pub const MAX_EVENTS: usize = 1 << 20;

/// Master switch for trace collection, separate from the metrics
/// switch so `--metrics` alone does not pay for event buffering.
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Process epoch for trace timestamps; pinned on first enable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next thread id to hand out. Relaxed: ids only need to be unique,
/// no ordering with any other memory is implied.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    // 0 = not yet assigned. Const-initialized: reading it must never
    // allocate (the allocator's own instrumentation lives nearby).
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// One buffered trace event.
struct Event {
    /// Chrome phase: 'B' begin, 'E' end, 'C' counter.
    ph: char,
    name: String,
    tid: u32,
    /// Microseconds since [`EPOCH`].
    ts_us: f64,
    args: Vec<(&'static str, f64)>,
}

#[derive(Default)]
struct Buf {
    events: Vec<Event>,
    /// Registered `(tid, lane name)` pairs, last registration wins.
    threads: Vec<(u32, String)>,
    dropped: u64,
    /// Cumulative self-flops/self-bytes feeding the counter tracks.
    cum_flops: f64,
    cum_bytes: f64,
}

static BUF: Mutex<Buf> = Mutex::new(Buf {
    events: Vec::new(),
    threads: Vec::new(),
    dropped: 0,
    cum_flops: 0.0,
    cum_bytes: 0.0,
});

fn with_buf<R>(f: impl FnOnce(&mut Buf) -> R) -> R {
    // A poisoned buffer only means some thread panicked mid-append;
    // the data is still well-formed events, so keep using it.
    let mut b = BUF.lock().unwrap_or_else(|p| p.into_inner());
    f(&mut b)
}

impl Buf {
    fn push(&mut self, e: Event) {
        if self.events.len() >= MAX_EVENTS {
            self.dropped += 1;
        } else {
            self.events.push(e);
        }
    }
}

/// Turn trace event collection on or off process-wide. Enabling pins
/// the timestamp epoch if this is the first enable.
pub fn set_trace_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    // Relaxed: the flag is an independent on/off gate; event ordering
    // within the buffer comes from the buffer mutex, not this store.
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Whether trace collection is currently armed. One relaxed load —
/// this is the entire disarmed-path cost at span sites.
#[inline]
pub fn trace_enabled() -> bool {
    // Relaxed: see `set_trace_enabled`.
    TRACE_ON.load(Ordering::Relaxed)
}

fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// This thread's trace lane id, assigning one (and a default lane name
/// from the OS thread name) on first use.
fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        // Relaxed: uniqueness via fetch_add; no other memory ordering
        // depends on id assignment.
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        let name = std::thread::current()
            .name()
            .unwrap_or("thread")
            .to_string();
        with_buf(|b| b.threads.push((v, name)));
        v
    })
}

/// Name this thread's lane in exported traces (`M`/`thread_name`
/// metadata). The vendor/rayon pool calls this as `pool.worker.N` at
/// worker startup; the CLI registers `main`. Safe to call whether or
/// not tracing is enabled — the name is kept for later exports.
pub fn register_thread(name: &str) {
    let tid = current_tid();
    with_buf(|b| {
        b.threads.retain(|(t, _)| *t != tid);
        b.threads.push((tid, name.to_string()));
    });
}

// ---------------------------------------------------------------------
// Filtering (RUST_LSI_TRACE)
// ---------------------------------------------------------------------

struct Pattern {
    prefix: String,
    /// True for `p.*` (keep the whole subtree), false for exact `p`.
    subtree: bool,
}

enum FilterState {
    /// Environment not consulted yet.
    Unset,
    /// Keep every span.
    All,
    Patterns(Vec<Pattern>),
}

static FILTER: Mutex<FilterState> = Mutex::new(FilterState::Unset);

fn parse_filter(spec: &str) -> FilterState {
    let pats: Vec<Pattern> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty() && *s != "*")
        .map(|s| match s.strip_suffix(".*") {
            Some(p) => Pattern {
                prefix: p.to_string(),
                subtree: true,
            },
            None => Pattern {
                prefix: s.to_string(),
                subtree: false,
            },
        })
        .collect();
    if pats.is_empty() {
        FilterState::All
    } else {
        FilterState::Patterns(pats)
    }
}

/// Override the `RUST_LSI_TRACE` filter programmatically. `None`
/// reverts to re-reading the environment on next use (tests).
pub fn set_trace_filter(spec: Option<&str>) {
    let mut f = FILTER.lock().unwrap_or_else(|p| p.into_inner());
    *f = match spec {
        Some(s) => parse_filter(s),
        None => FilterState::Unset,
    };
}

/// Does `name` occur in `path` starting at a dotted segment boundary?
/// (`score` matches `score.x` and `query.score.x` but not
/// `query.rescore.x`.)
fn segment_occurrence(path: &str, name: &str, whole_tail: bool) -> bool {
    // Total accessors throughout: span paths are ASCII by convention,
    // but a stray multibyte name must degrade to "no match", not
    // panic inside the tracing hot path.
    let mut from = 0;
    while let Some(rel) = path.get(from..).and_then(|t| t.find(name)) {
        let at = from + rel;
        let starts_seg = at == 0 || path.as_bytes().get(at.wrapping_sub(1)) == Some(&b'.');
        let end = at + name.len();
        let tail = path.get(end..).unwrap_or_default();
        let ends_ok = if whole_tail {
            tail.is_empty()
        } else {
            tail.is_empty() || tail.starts_with('.')
        };
        if starts_seg && ends_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Whether the filter keeps a span with this dotted path.
pub(crate) fn filter_matches(path: &str) -> bool {
    let mut f = FILTER.lock().unwrap_or_else(|p| p.into_inner());
    if matches!(*f, FilterState::Unset) {
        *f = match std::env::var("RUST_LSI_TRACE") {
            Ok(spec) => parse_filter(&spec),
            Err(_) => FilterState::All,
        };
    }
    match &*f {
        FilterState::Unset | FilterState::All => true,
        FilterState::Patterns(pats) => pats.iter().any(|p| {
            // Exact patterns must match a whole path suffix segment
            // run; subtree patterns may be followed by more segments.
            segment_occurrence(path, &p.prefix, !p.subtree)
        }),
    }
}

// ---------------------------------------------------------------------
// Event emission (called from span.rs and the pool task helpers)
// ---------------------------------------------------------------------

/// Emit the begin event for a span. Returns whether the span was kept
/// by the filter — the span stores this so the matching end event is
/// emitted iff the begin was (filter changes mid-span cannot unbalance
/// B/E pairs).
pub(crate) fn span_begin(path: &str) -> bool {
    if !filter_matches(path) {
        return false;
    }
    let tid = current_tid();
    let ts_us = now_us();
    with_buf(|b| {
        b.push(Event {
            ph: 'B',
            name: path.to_string(),
            tid,
            ts_us,
            args: Vec::new(),
        });
    });
    true
}

/// Emit the end event for a span kept by [`span_begin`], carrying the
/// span's work and allocation attribution as args, plus counter-track
/// samples for the flops/bytes the span did *itself* (children emit
/// their own, so the cumulative track never double counts roll-ups).
pub(crate) fn span_end(path: &str, stats: &PhaseStats, self_flops: f64, self_bytes: f64) {
    let tid = current_tid();
    let ts_us = now_us();
    with_buf(|b| {
        b.push(Event {
            ph: 'E',
            name: path.to_string(),
            tid,
            ts_us,
            args: vec![
                ("flops", stats.flops),
                ("bytes", stats.bytes),
                ("allocs", stats.allocs),
                ("alloc_bytes", stats.alloc_bytes),
                ("alloc_peak_bytes", stats.alloc_peak),
            ],
        });
        if self_flops > 0.0 {
            b.cum_flops += self_flops;
            let v = b.cum_flops;
            b.push(Event {
                ph: 'C',
                name: "flops.cumulative".to_string(),
                tid,
                ts_us,
                args: vec![("value", v)],
            });
        }
        if self_bytes > 0.0 {
            b.cum_bytes += self_bytes;
            let v = b.cum_bytes;
            b.push(Event {
                ph: 'C',
                name: "bytes.cumulative".to_string(),
                tid,
                ts_us,
                args: vec![("value", v)],
            });
        }
    });
}

/// Label for per-chunk pool task events under the *submitting* span
/// (`<submitter path>.task`, or `pool.task` outside any span), or
/// `None` when tracing is off / the label is filtered out. The pool
/// resolves this once per job on the submitting thread and ships it to
/// workers inside the job.
pub fn trace_task_label() -> Option<String> {
    if !trace_enabled() {
        return None;
    }
    let path = crate::span::current_path();
    let label = if path.is_empty() {
        "pool.task".to_string()
    } else {
        format!("{path}.task")
    };
    if !filter_matches(&label) {
        return None;
    }
    Some(label)
}

/// RAII guard for one pool task (chunk) trace event on the executing
/// worker's lane. These are raw B/E events only — they do not touch
/// the span stack or the metrics registry.
pub struct TraceTask {
    label: Option<String>,
}

/// Open a task event named `label` covering rows `[lo, hi)`. No-op
/// when tracing is disarmed.
pub fn trace_task(label: &str, lo: usize, hi: usize) -> TraceTask {
    if !trace_enabled() {
        return TraceTask { label: None };
    }
    let tid = current_tid();
    let ts_us = now_us();
    with_buf(|b| {
        b.push(Event {
            ph: 'B',
            name: label.to_string(),
            tid,
            ts_us,
            args: vec![("lo", lo as f64), ("hi", hi as f64)],
        });
    });
    TraceTask {
        label: Some(label.to_string()),
    }
}

impl Drop for TraceTask {
    fn drop(&mut self) {
        let Some(label) = self.label.take() else {
            return;
        };
        let tid = current_tid();
        let ts_us = now_us();
        with_buf(|b| {
            b.push(Event {
                ph: 'E',
                name: label,
                tid,
                ts_us,
                args: Vec::new(),
            });
        });
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

fn event_to_json(e: &Event) -> Json {
    let mut members = vec![
        ("name", Json::Str(e.name.clone())),
        ("cat", Json::Str("lsi".to_string())),
        ("ph", Json::Str(e.ph.to_string())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(f64::from(e.tid))),
        ("ts", Json::Num(e.ts_us)),
    ];
    if !e.args.is_empty() {
        let args = e
            .args
            .iter()
            .map(|(k, v)| (*k, Json::Num(*v)))
            .collect::<Vec<_>>();
        members.push(("args", Json::obj(args)));
    }
    Json::obj(members)
}

/// Build the Chrome Trace Format document for everything buffered so
/// far: thread-name metadata first, then events in arrival order.
pub fn chrome_trace_json() -> Json {
    with_buf(|b| {
        let mut evs: Vec<Json> = Vec::with_capacity(b.events.len() + b.threads.len() + 1);
        evs.push(Json::obj(vec![
            ("name", Json::Str("process_name".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(0.0)),
            (
                "args",
                Json::obj(vec![("name", Json::Str("lsi".to_string()))]),
            ),
        ]));
        for (tid, name) in &b.threads {
            evs.push(Json::obj(vec![
                ("name", Json::Str("thread_name".to_string())),
                ("ph", Json::Str("M".to_string())),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(f64::from(*tid))),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(name.clone()))]),
                ),
            ]));
        }
        for e in &b.events {
            evs.push(event_to_json(e));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(evs)),
            ("displayTimeUnit", Json::Str("ms".to_string())),
        ])
    })
}

/// Serialize the trace buffer to `path` (compact JSON). Returns
/// `(events_written, events_dropped)`.
pub fn write_chrome_trace(path: &str) -> std::io::Result<(usize, u64)> {
    let (doc, n, dropped) = {
        let doc = chrome_trace_json();
        let (n, dropped) = with_buf(|b| (b.events.len(), b.dropped));
        (doc, n, dropped)
    };
    std::fs::write(path, doc.to_string_compact())?;
    Ok((n, dropped))
}

/// Drop all buffered events and counter-track state (tests). Thread
/// registrations survive — tids are pinned in thread-local storage, so
/// lane names must stay valid for later events.
pub fn reset_trace() {
    with_buf(|b| {
        b.events.clear();
        b.dropped = 0;
        b.cum_flops = 0.0;
        b.cum_bytes = 0.0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_and_segment_matching() {
        // Exact pattern: whole-suffix-segment match only.
        let f = parse_filter("query");
        if let FilterState::Patterns(p) = &f {
            assert!(!p[0].subtree);
        } else {
            panic!("expected patterns");
        }
        assert!(segment_occurrence("query", "query", true));
        assert!(segment_occurrence("a.query", "query", true));
        assert!(!segment_occurrence("a.query.b", "query", true));
        assert!(!segment_occurrence("requery", "query", true));
        // Subtree pattern: may be followed by more segments.
        assert!(segment_occurrence("score.candidates", "score", false));
        assert!(segment_occurrence("query.score.candidates", "score", false));
        assert!(!segment_occurrence("query.rescore.x", "score", false));
        assert!(!segment_occurrence("scores.x", "score", false));
    }

    #[test]
    fn empty_and_star_specs_keep_everything() {
        assert!(matches!(parse_filter(""), FilterState::All));
        assert!(matches!(parse_filter("*"), FilterState::All));
        assert!(matches!(parse_filter(" , "), FilterState::All));
        assert!(matches!(
            parse_filter("a.*, b"),
            FilterState::Patterns(ref p) if p.len() == 2
        ));
    }
}
