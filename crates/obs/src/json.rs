//! A minimal JSON value type, writer, and parser (std-only).
//!
//! The workspace builds offline, so the exporters cannot lean on
//! `serde_json`; this module implements exactly the subset the report
//! formats need. Objects preserve insertion order so exported reports
//! are stable and diffable. Numbers are `f64`, written with Rust's
//! shortest round-trip formatting (integers without a fraction print
//! bare), so write → parse → write is a fixed point.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys need not be unique on parse
    /// (last wins for [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object node from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` on other node kinds).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a trailing newline,
    /// matching the hand-written `BENCH_*.json` style.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{:?}` is the shortest representation that round-trips.
        let _ = write!(out, "{v:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: join, or degrade to the
                            // replacement character for a lone half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let joined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(joined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(2.0));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].get("b").and_then(Json::as_str), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn write_parse_write_is_a_fixed_point() {
        let v = Json::obj(vec![
            ("name", Json::Str("perf_kernels \"quick\"\n".into())),
            ("k", Json::Num(50.0)),
            ("secs", Json::Num(0.12345678901234567)),
            ("big", Json::Num(1e19)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("empty", Json::Obj(vec![]))])),
        ]);
        let text = v.to_string_pretty();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.to_string_pretty(), text);
        let compact = v.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), v);
    }
}
