//! Hierarchical timed spans.
//!
//! A span names a region of work; nesting builds a dotted path
//! (`build.svd.lanczos`). Each thread keeps its own span stack, so
//! instrumented code needs no handles — [`crate::span`] opens a span
//! and the returned guard closes it on drop, crediting elapsed wall
//! time plus any flops/bytes attributed inside (via
//! [`crate::add_flops`]/[`crate::add_bytes`]) to the registry under the
//! full path. Flops and bytes also propagate to the parent frame, so a
//! stage's totals include its children's; seconds do not propagate —
//! the parent's own clock already covers child wall time.

use std::cell::RefCell;
use std::time::Instant;

use crate::stats::{PhaseStats, MIN_PHASE_SECS};

thread_local! {
    static STACK: RefCell<SpanStack> = RefCell::new(SpanStack::default());
}

#[derive(Default)]
struct SpanStack {
    /// Dotted path of all open frames, e.g. `build.svd.lanczos`.
    path: String,
    frames: Vec<Frame>,
}

struct Frame {
    /// Length of `path` before this frame's segment was appended.
    prefix_len: usize,
    flops: f64,
    bytes: f64,
    /// Portion of `flops`/`bytes` rolled up from closed children —
    /// subtracted at close so trace counter tracks credit each span
    /// only with its own work.
    child_flops: f64,
    child_bytes: f64,
    /// Whether the trace filter kept this span's begin event (the end
    /// event must mirror it even if the filter changes mid-span).
    traced: bool,
    /// Allocation counters at span entry (see [`crate::alloc`]).
    alloc0: crate::alloc::AllocSnapshot,
}

/// RAII guard for one open span. Created by [`crate::span`]; closing
/// (dropping) records the span and pops it off the thread's stack.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard { start: None }
    }

    pub(crate) fn open(name: &str) -> SpanGuard {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let prefix_len = s.path.len();
            if prefix_len > 0 {
                s.path.push('.');
            }
            s.path.push_str(name);
            // Emit the trace begin event before snapshotting the
            // allocator, so the event's own allocations are charged to
            // the parent, not this span.
            let traced = crate::trace::trace_enabled() && crate::trace::span_begin(&s.path);
            let alloc0 = crate::alloc::scope_begin();
            s.frames.push(Frame {
                prefix_len,
                flops: 0.0,
                bytes: 0.0,
                child_flops: 0.0,
                child_bytes: 0.0,
                traced,
                alloc0,
            });
        });
        SpanGuard {
            start: Some(Instant::now()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        // Clamp so even spans finishing inside one timer tick report
        // nonzero wall time (stage reports must never show 0s of work
        // that demonstrably ran).
        let secs = start.elapsed().as_secs_f64().max(MIN_PHASE_SECS);
        let (path, stats, traced, self_flops, self_bytes) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let frame = s
                .frames
                .pop()
                .expect("span guard dropped with empty span stack");
            let path = s.path.clone();
            s.path.truncate(frame.prefix_len);
            // Close the allocation scope before emitting trace events
            // so the events' own allocations are not charged here.
            let (allocs, alloc_bytes, alloc_peak) = crate::alloc::scope_end(frame.alloc0);
            // Children's work counts toward the parent stage.
            if let Some(parent) = s.frames.last_mut() {
                parent.flops += frame.flops;
                parent.bytes += frame.bytes;
                parent.child_flops += frame.flops;
                parent.child_bytes += frame.bytes;
            }
            (
                path,
                PhaseStats {
                    calls: 1,
                    flops: frame.flops,
                    bytes: frame.bytes,
                    secs,
                    allocs,
                    alloc_bytes,
                    alloc_peak,
                },
                frame.traced,
                frame.flops - frame.child_flops,
                frame.bytes - frame.child_bytes,
            )
        });
        if traced {
            crate::trace::span_end(&path, &stats, self_flops, self_bytes);
        }
        crate::registry().record_span(&path, &stats);
    }
}

/// Attribute `flops` to the innermost open span on this thread (no-op
/// outside any span).
pub(crate) fn add_flops_here(flops: f64) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().frames.last_mut() {
            frame.flops += flops;
        }
    });
}

/// Attribute `bytes` to the innermost open span on this thread (no-op
/// outside any span).
pub(crate) fn add_bytes_here(bytes: f64) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().frames.last_mut() {
            frame.bytes += bytes;
        }
    });
}

/// Current dotted span path on this thread (empty outside any span).
pub(crate) fn current_path() -> String {
    STACK.with(|s| s.borrow().path.clone())
}
