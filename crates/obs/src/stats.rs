//! Unified work accounting: calls, flops, bytes, wall-clock seconds.
//!
//! [`PhaseStats`] generalizes the per-phase flop/time accounting that
//! the Lanczos driver used to carry privately (`LanczosReport`'s
//! phases): every instrumented region of the pipeline — a parsing
//! pass, a GEMM, a whole stage — aggregates into one of these, and the
//! registry keys them by hierarchical span path.

/// Smallest wall-clock duration a phase is credited with, in seconds.
///
/// `Instant` resolution on the containers this workspace targets is a
/// few tens of nanoseconds; a sub-microsecond phase can legitimately
/// measure zero elapsed time. Clamping the denominator keeps derived
/// rates ([`PhaseStats::mflops`]) finite and meaningful instead of
/// collapsing to zero (or infinity) for work that completed inside one
/// timer tick.
pub const MIN_PHASE_SECS: f64 = 1e-9;

/// Work and wall-clock accounting for one phase, stage, or span.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStats {
    /// Times the phase ran.
    pub calls: u64,
    /// Floating-point operations attributed to the phase. Stages that
    /// do no arithmetic (parsing) account their unit work here instead
    /// (e.g. one unit per token inserted), so throughput is still
    /// derivable.
    pub flops: f64,
    /// Bytes moved or materialized by the phase (I/O stages).
    pub bytes: f64,
    /// Wall-clock seconds spent in the phase.
    pub secs: f64,
    /// Heap allocations made on the phase's thread while it was open
    /// (children included — the counting allocator's thread-local
    /// deltas naturally cover the whole scope).
    pub allocs: f64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: f64,
    /// Peak net heap growth (bytes above the level at span entry)
    /// observed during any single call of the phase.
    pub alloc_peak: f64,
}

impl PhaseStats {
    /// One-shot constructor for a single timed call.
    pub fn once(flops: f64, secs: f64) -> PhaseStats {
        PhaseStats {
            calls: 1,
            flops,
            secs,
            ..PhaseStats::default()
        }
    }

    /// Account one more run of the phase.
    pub fn add(&mut self, flops: f64, secs: f64) {
        self.calls += 1;
        self.flops += flops;
        self.secs += secs;
    }

    /// Fold another accumulator into this one. Allocation counts and
    /// bytes sum; the peak is the worst single call's peak.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.calls += other.calls;
        self.flops += other.flops;
        self.bytes += other.bytes;
        self.secs += other.secs;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.alloc_peak = self.alloc_peak.max(other.alloc_peak);
    }

    /// Effective throughput in MFLOP/s.
    ///
    /// The elapsed time is clamped to [`MIN_PHASE_SECS`] so that
    /// phases finishing inside one timer tick (`secs == 0.0`) report a
    /// large-but-finite rate rather than dividing by zero; a phase
    /// that did no arithmetic reports 0.
    pub fn mflops(&self) -> f64 {
        if self.flops <= 0.0 {
            0.0
        } else {
            self.flops / self.secs.max(MIN_PHASE_SECS) / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_counts_calls() {
        let mut s = PhaseStats::default();
        s.add(100.0, 0.5);
        s.add(300.0, 1.5);
        assert_eq!(s.calls, 2);
        assert_eq!(s.flops, 400.0);
        assert_eq!(s.secs, 2.0);
        assert!((s.mflops() - 400.0 / 2.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = PhaseStats::once(10.0, 0.1);
        let mut b = PhaseStats::once(20.0, 0.2);
        b.bytes = 64.0;
        a.merge(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.flops, 30.0);
        assert_eq!(a.bytes, 64.0);
        assert!((a.secs - 0.3).abs() < 1e-12);
    }

    // Regression: a sub-microsecond phase with nonzero flops used to
    // report 0 MFLOP/s (the rate collapsed whenever `secs == 0.0`).
    // The clamped denominator keeps the rate finite and positive.
    #[test]
    fn mflops_is_finite_and_positive_for_zero_second_phases() {
        let s = PhaseStats {
            calls: 1,
            flops: 1e6,
            ..PhaseStats::default()
        };
        let r = s.mflops();
        assert!(r.is_finite(), "zero-duration phase must not divide by zero");
        assert!(r > 0.0, "work happened, so the rate must be positive");
        assert_eq!(r, 1e6 / MIN_PHASE_SECS / 1e6);
    }

    #[test]
    fn mflops_zero_flops_is_zero_even_with_zero_secs() {
        let s = PhaseStats::default();
        assert_eq!(s.mflops(), 0.0);
    }
}
