//! Exporters: human-readable metric tables and structured JSON run
//! reports (the schema behind `BENCH_*.json` and `lsi --metrics=json`).

use crate::json::Json;
use crate::metrics::Snapshot;

/// Render a snapshot as aligned, human-readable tables (spans first,
/// then counters, gauges, histograms). Sections with no data are
/// omitted; an empty snapshot renders as an explanatory one-liner.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (wall time, attributed work, allocation):\n");
        let width = snap.spans.iter().map(|(p, _)| p.len()).max().unwrap_or(4);
        out.push_str(&format!(
            "  {:<width$}  {:>5}  {:>10}  {:>12}  {:>9}  {:>8}  {:>12}  {:>12}\n",
            "path", "calls", "secs", "flops", "mflop/s", "allocs", "alloc_bytes", "alloc_peak"
        ));
        for (path, s) in &snap.spans {
            out.push_str(&format!(
                "  {:<width$}  {:>5}  {:>10.6}  {:>12.3e}  {:>9.1}  {:>8}  {:>12}  {:>12}\n",
                path,
                s.calls,
                s.secs,
                s.flops,
                s.mflops(),
                s.allocs as u64,
                s.alloc_bytes as u64,
                s.alloc_peak as u64
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snap.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = snap.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("histograms:\n");
        let width = snap.hists.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        out.push_str(&format!(
            "  {:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "name", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.hists {
            out.push_str(&format!(
                "  {:<width$}  {:>7}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}\n",
                name, h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    if out.is_empty() {
        out.push_str("no metrics recorded (instrumentation disabled?)\n");
    }
    out
}

/// Convert a snapshot into a JSON object:
/// `{"spans": {path: {calls, secs, flops, bytes, mflops, allocs,
///   alloc_bytes, alloc_peak}},
///   "counters": {..}, "gauges": {..},
///   "histograms": {name: {count, sum, min, max, p50, p90, p99}}}`.
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let spans = snap
        .spans
        .iter()
        .map(|(path, s)| {
            (
                path.clone(),
                Json::obj(vec![
                    ("calls", Json::Num(s.calls as f64)),
                    ("secs", Json::Num(s.secs)),
                    ("flops", Json::Num(s.flops)),
                    ("bytes", Json::Num(s.bytes)),
                    ("mflops", Json::Num(s.mflops())),
                    ("allocs", Json::Num(s.allocs)),
                    ("alloc_bytes", Json::Num(s.alloc_bytes)),
                    ("alloc_peak", Json::Num(s.alloc_peak)),
                ]),
            )
        })
        .collect();
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.clone(), Json::Num(*v)))
        .collect();
    let hists = snap
        .hists
        .iter()
        .map(|(n, h)| {
            (
                n.clone(),
                Json::obj(vec![
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum)),
                    ("min", Json::Num(h.min)),
                    ("max", Json::Num(h.max)),
                    ("p50", Json::Num(h.p50)),
                    ("p90", Json::Num(h.p90)),
                    ("p99", Json::Num(h.p99)),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("spans", Json::Obj(spans)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(hists)),
    ])
}

/// A structured run report: tool name, run metadata (git sha, corpus,
/// parameters), headline results, and the full metric snapshot. This
/// is the one schema `lsi --metrics=json`, `perf_kernels`, and `repro`
/// share, and the shape future `BENCH_*.json` trajectory entries embed.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Emitting tool (`"lsi"`, `"perf_kernels"`, `"repro"`).
    pub name: String,
    /// Run metadata: git sha, corpus, k, machine, flags.
    pub meta: Vec<(String, Json)>,
    /// Headline results (throughput numbers, section outputs).
    pub results: Vec<(String, Json)>,
    /// Full metric snapshot at the end of the run.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Start a report for `name`, pre-populated with the git sha when
    /// the working directory is a checkout.
    pub fn new(name: &str) -> RunReport {
        let mut report = RunReport {
            name: name.to_string(),
            ..RunReport::default()
        };
        if let Some(sha) = git_sha() {
            report.meta.push(("git_sha".to_string(), Json::Str(sha)));
        }
        report
    }

    /// Attach a metadata entry.
    pub fn meta(mut self, key: &str, value: Json) -> RunReport {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Attach a headline result.
    pub fn result(&mut self, key: &str, value: Json) {
        self.results.push((key.to_string(), value));
    }

    /// Serialize: `{"name", "meta": {..}, "results": {..},
    /// "metrics": {..}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("meta", Json::Obj(self.meta.clone())),
            ("results", Json::Obj(self.results.clone())),
            ("metrics", snapshot_to_json(&self.snapshot)),
        ])
    }
}

/// The current git commit sha, read straight from `.git` (no
/// subprocess — this must work in sandboxes without a `git` binary).
/// Walks up from the current directory to find the repository root;
/// handles worktree/submodule `.git` *files* (`gitdir: <path>`
/// indirection plus the `commondir` split between per-worktree HEAD
/// and shared refs), and resolves one level of `ref:` indirection,
/// including packed refs.
pub fn git_sha() -> Option<String> {
    git_sha_from(&std::env::current_dir().ok()?)
}

/// [`git_sha`] rooted at an explicit directory (testable without
/// changing the process working directory).
pub fn git_sha_from(start: &std::path::Path) -> Option<String> {
    let mut dir = start.to_path_buf();
    let git_dir = loop {
        if let Some(resolved) = resolve_git_dir(&dir) {
            break resolved;
        }
        if !dir.pop() {
            return None;
        }
    };
    // In a linked worktree HEAD lives in the per-worktree git dir
    // while refs/ and packed-refs live in the shared one, named by the
    // `commondir` file (usually "../.." relative to the worktree dir).
    let common_dir = match std::fs::read_to_string(git_dir.join("commondir")) {
        Ok(rel) => {
            let rel = rel.trim();
            let p = std::path::Path::new(rel);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                git_dir.join(rel)
            }
        }
        Err(_) => git_dir.clone(),
    };
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        for base in [&git_dir, &common_dir] {
            if let Ok(sha) = std::fs::read_to_string(base.join(refname)) {
                return Some(sha.trim().to_string());
            }
        }
        let packed = std::fs::read_to_string(common_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(sha) = line.strip_suffix(refname) {
                return Some(sha.trim().to_string());
            }
        }
        None
    } else if head.len() >= 40 {
        Some(head.to_string())
    } else {
        None
    }
}

/// Resolve `dir/.git` to the actual git directory: the path itself
/// when it is a directory, or the `gitdir: <path>` target when it is a
/// worktree/submodule indirection file (relative targets resolve
/// against `dir`). `None` when `dir` is not a repository root.
fn resolve_git_dir(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    let candidate = dir.join(".git");
    if candidate.is_dir() {
        return Some(candidate);
    }
    let contents = std::fs::read_to_string(&candidate).ok()?;
    let target = contents.trim().strip_prefix("gitdir:")?.trim();
    let path = std::path::Path::new(target);
    let resolved = if path.is_absolute() {
        path.to_path_buf()
    } else {
        dir.join(path)
    };
    resolved.is_dir().then_some(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::stats::PhaseStats;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("linalg.gemm.calls").add(7);
        r.gauge("svd.k").set(50.0);
        r.histogram("query.time.us").record(120.0);
        r.histogram("query.time.us").record(480.0);
        r.record_span("build.svd", &PhaseStats::once(2.5e9, 1.25));
        r
    }

    #[test]
    fn table_renders_every_section() {
        let table = render_table(&sample_registry().snapshot());
        assert!(table.contains("build.svd"));
        assert!(table.contains("linalg.gemm.calls"));
        assert!(table.contains("svd.k"));
        assert!(table.contains("query.time.us"));
    }

    #[test]
    fn empty_snapshot_renders_hint() {
        let table = render_table(&Registry::new().snapshot());
        assert!(table.contains("no metrics recorded"));
    }

    #[test]
    fn snapshot_json_round_trips_through_parser() {
        let json = snapshot_to_json(&sample_registry().snapshot());
        let text = json.to_string_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed, json);
        let span = parsed.get("spans").unwrap().get("build.svd").unwrap();
        assert_eq!(span.get("calls").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("secs").unwrap().as_f64(), Some(1.25));
        assert_eq!(span.get("flops").unwrap().as_f64(), Some(2.5e9));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("linalg.gemm.calls")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        let hist = parsed
            .get("histograms")
            .unwrap()
            .get("query.time.us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn run_report_embeds_meta_results_and_metrics() {
        let mut report = RunReport::new("perf_kernels").meta("k", Json::Num(50.0));
        report.result("lanczos_k50_secs", Json::Num(0.8));
        report.snapshot = sample_registry().snapshot();
        let json = report.to_json();
        assert_eq!(json.get("name").unwrap().as_str(), Some("perf_kernels"));
        assert_eq!(json.get("meta").unwrap().get("k").unwrap().as_f64(), Some(50.0));
        assert_eq!(
            json.get("results")
                .unwrap()
                .get("lanczos_k50_secs")
                .unwrap()
                .as_f64(),
            Some(0.8)
        );
        assert!(json.get("metrics").unwrap().get("spans").is_some());
        let text = json.to_string_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn git_sha_resolves_in_this_checkout() {
        // The workspace is a git repository, so this must produce a
        // 40-hex sha.
        let sha = git_sha().expect("repo checkout has .git");
        assert_eq!(sha.len(), 40, "sha = {sha}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
    }

    // Regression: `.git` in a linked worktree is a *file* containing
    // `gitdir: <path>`; the old reader only accepted a directory, so
    // it walked past the worktree root and reported the wrong (or no)
    // sha. Build the full worktree layout in a temp dir: per-worktree
    // git dir holds HEAD + commondir, the shared dir holds the ref.
    #[test]
    fn git_sha_follows_worktree_gitdir_indirection() {
        let sha = "0123456789abcdef0123456789abcdef01234567";
        let root = std::env::temp_dir().join(format!("lsi-obs-wt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let shared = root.join("main/.git");
        let wt_git = shared.join("worktrees/wt");
        let wt = root.join("wt");
        std::fs::create_dir_all(shared.join("refs/heads")).unwrap();
        std::fs::create_dir_all(&wt_git).unwrap();
        std::fs::create_dir_all(wt.join("sub")).unwrap();
        std::fs::write(wt_git.join("HEAD"), "ref: refs/heads/feature\n").unwrap();
        std::fs::write(wt_git.join("commondir"), "../..\n").unwrap();
        std::fs::write(shared.join("refs/heads/feature"), format!("{sha}\n")).unwrap();
        // Relative gitdir target, as `git worktree add` writes it.
        std::fs::write(
            wt.join(".git"),
            "gitdir: ../main/.git/worktrees/wt\n",
        )
        .unwrap();
        // Resolves from the worktree root and from a subdirectory.
        assert_eq!(git_sha_from(&wt).as_deref(), Some(sha));
        assert_eq!(git_sha_from(&wt.join("sub")).as_deref(), Some(sha));
        // Shared refs may also be packed: drop the loose ref.
        std::fs::remove_file(shared.join("refs/heads/feature")).unwrap();
        std::fs::write(
            shared.join("packed-refs"),
            format!("# pack-refs with: peeled fully-peeled sorted\n{sha} refs/heads/feature\n"),
        )
        .unwrap();
        assert_eq!(git_sha_from(&wt).as_deref(), Some(sha));
        let _ = std::fs::remove_dir_all(&root);
    }
}
