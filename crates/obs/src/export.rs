//! Exporters: human-readable metric tables and structured JSON run
//! reports (the schema behind `BENCH_*.json` and `lsi --metrics=json`).

use crate::json::Json;
use crate::metrics::Snapshot;

/// Render a snapshot as aligned, human-readable tables (spans first,
/// then counters, gauges, histograms). Sections with no data are
/// omitted; an empty snapshot renders as an explanatory one-liner.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (wall time, attributed work):\n");
        let width = snap.spans.iter().map(|(p, _)| p.len()).max().unwrap_or(4);
        out.push_str(&format!(
            "  {:<width$}  {:>5}  {:>10}  {:>12}  {:>9}\n",
            "path", "calls", "secs", "flops", "mflop/s"
        ));
        for (path, s) in &snap.spans {
            out.push_str(&format!(
                "  {:<width$}  {:>5}  {:>10.6}  {:>12.3e}  {:>9.1}\n",
                path,
                s.calls,
                s.secs,
                s.flops,
                s.mflops()
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snap.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = snap.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("histograms:\n");
        let width = snap.hists.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        out.push_str(&format!(
            "  {:<width$}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "name", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.hists {
            out.push_str(&format!(
                "  {:<width$}  {:>7}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}\n",
                name, h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    if out.is_empty() {
        out.push_str("no metrics recorded (instrumentation disabled?)\n");
    }
    out
}

/// Convert a snapshot into a JSON object:
/// `{"spans": {path: {calls, secs, flops, bytes, mflops}},
///   "counters": {..}, "gauges": {..},
///   "histograms": {name: {count, sum, min, max, p50, p90, p99}}}`.
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let spans = snap
        .spans
        .iter()
        .map(|(path, s)| {
            (
                path.clone(),
                Json::obj(vec![
                    ("calls", Json::Num(s.calls as f64)),
                    ("secs", Json::Num(s.secs)),
                    ("flops", Json::Num(s.flops)),
                    ("bytes", Json::Num(s.bytes)),
                    ("mflops", Json::Num(s.mflops())),
                ]),
            )
        })
        .collect();
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.clone(), Json::Num(*v)))
        .collect();
    let hists = snap
        .hists
        .iter()
        .map(|(n, h)| {
            (
                n.clone(),
                Json::obj(vec![
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum)),
                    ("min", Json::Num(h.min)),
                    ("max", Json::Num(h.max)),
                    ("p50", Json::Num(h.p50)),
                    ("p90", Json::Num(h.p90)),
                    ("p99", Json::Num(h.p99)),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("spans", Json::Obj(spans)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(hists)),
    ])
}

/// A structured run report: tool name, run metadata (git sha, corpus,
/// parameters), headline results, and the full metric snapshot. This
/// is the one schema `lsi --metrics=json`, `perf_kernels`, and `repro`
/// share, and the shape future `BENCH_*.json` trajectory entries embed.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Emitting tool (`"lsi"`, `"perf_kernels"`, `"repro"`).
    pub name: String,
    /// Run metadata: git sha, corpus, k, machine, flags.
    pub meta: Vec<(String, Json)>,
    /// Headline results (throughput numbers, section outputs).
    pub results: Vec<(String, Json)>,
    /// Full metric snapshot at the end of the run.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Start a report for `name`, pre-populated with the git sha when
    /// the working directory is a checkout.
    pub fn new(name: &str) -> RunReport {
        let mut report = RunReport {
            name: name.to_string(),
            ..RunReport::default()
        };
        if let Some(sha) = git_sha() {
            report.meta.push(("git_sha".to_string(), Json::Str(sha)));
        }
        report
    }

    /// Attach a metadata entry.
    pub fn meta(mut self, key: &str, value: Json) -> RunReport {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Attach a headline result.
    pub fn result(&mut self, key: &str, value: Json) {
        self.results.push((key.to_string(), value));
    }

    /// Serialize: `{"name", "meta": {..}, "results": {..},
    /// "metrics": {..}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("meta", Json::Obj(self.meta.clone())),
            ("results", Json::Obj(self.results.clone())),
            ("metrics", snapshot_to_json(&self.snapshot)),
        ])
    }
}

/// The current git commit sha, read straight from `.git` (no
/// subprocess — this must work in sandboxes without a `git` binary).
/// Walks up from the current directory to find the repository root;
/// resolves one level of `ref:` indirection, including packed refs.
pub fn git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git_dir = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(sha) = std::fs::read_to_string(git_dir.join(refname)) {
            return Some(sha.trim().to_string());
        }
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(sha) = line.strip_suffix(refname) {
                return Some(sha.trim().to_string());
            }
        }
        None
    } else if head.len() >= 40 {
        Some(head.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::stats::PhaseStats;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("linalg.gemm.calls").add(7);
        r.gauge("svd.k").set(50.0);
        r.histogram("query.time.us").record(120.0);
        r.histogram("query.time.us").record(480.0);
        r.record_span("build.svd", &PhaseStats::once(2.5e9, 1.25));
        r
    }

    #[test]
    fn table_renders_every_section() {
        let table = render_table(&sample_registry().snapshot());
        assert!(table.contains("build.svd"));
        assert!(table.contains("linalg.gemm.calls"));
        assert!(table.contains("svd.k"));
        assert!(table.contains("query.time.us"));
    }

    #[test]
    fn empty_snapshot_renders_hint() {
        let table = render_table(&Registry::new().snapshot());
        assert!(table.contains("no metrics recorded"));
    }

    #[test]
    fn snapshot_json_round_trips_through_parser() {
        let json = snapshot_to_json(&sample_registry().snapshot());
        let text = json.to_string_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed, json);
        let span = parsed.get("spans").unwrap().get("build.svd").unwrap();
        assert_eq!(span.get("calls").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("secs").unwrap().as_f64(), Some(1.25));
        assert_eq!(span.get("flops").unwrap().as_f64(), Some(2.5e9));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("linalg.gemm.calls")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        let hist = parsed
            .get("histograms")
            .unwrap()
            .get("query.time.us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn run_report_embeds_meta_results_and_metrics() {
        let mut report = RunReport::new("perf_kernels").meta("k", Json::Num(50.0));
        report.result("lanczos_k50_secs", Json::Num(0.8));
        report.snapshot = sample_registry().snapshot();
        let json = report.to_json();
        assert_eq!(json.get("name").unwrap().as_str(), Some("perf_kernels"));
        assert_eq!(json.get("meta").unwrap().get("k").unwrap().as_f64(), Some(50.0));
        assert_eq!(
            json.get("results")
                .unwrap()
                .get("lanczos_k50_secs")
                .unwrap()
                .as_f64(),
            Some(0.8)
        );
        assert!(json.get("metrics").unwrap().get("spans").is_some());
        let text = json.to_string_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn git_sha_resolves_in_this_checkout() {
        // The workspace is a git repository, so this must produce a
        // 40-hex sha.
        let sha = git_sha().expect("repo checkout has .git");
        assert_eq!(sha.len(), 40, "sha = {sha}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
