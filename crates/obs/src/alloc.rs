//! Counting global allocator for per-span memory attribution.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and keeps
//! **thread-local** allocation statistics (count, bytes requested,
//! current net bytes, peak net bytes). Spans snapshot these at enter
//! and exit ([`scope_begin`]/[`scope_end`]), so every [`PhaseStats`]
//! carries the allocations made on the span's thread while it was
//! open — children included, because the deltas naturally cover the
//! whole scope.
//!
//! [`PhaseStats`]: crate::PhaseStats
//!
//! Design constraints, in order of importance:
//!
//! - **The allocator must never allocate.** The per-thread state is a
//!   const-initialized `Cell` (no lazy init, no drop glue), so reading
//!   or updating it cannot re-enter the allocator or trip TLS
//!   initialization from inside `alloc`.
//! - **Disarmed cost is one relaxed atomic load.** Counting is gated
//!   on [`crate::enabled`], the same master switch as spans; with
//!   collection off, every `alloc`/`dealloc` pays exactly one relaxed
//!   load over the system allocator's own cost (measured ≪1% on the
//!   batched query path, see DESIGN.md §3g).
//! - **Thread teardown must not panic.** TLS access uses `try_with`;
//!   allocations made while the thread's TLS is being destroyed are
//!   simply not counted.
//!
//! Cross-thread caveat: bytes allocated by pool workers inside a
//! `parallel_for` are counted on the *worker's* thread, not attributed
//! to the submitting span. Per-span attribution is therefore exact for
//! serial regions and an undercount for the dispatching span of
//! parallel kernels; the worker-side task spans in the Chrome trace
//! carry the rest.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Snapshot of one thread's allocation counters.
#[derive(Clone, Copy, Default)]
pub(crate) struct AllocSnapshot {
    /// Allocations (including reallocs) since thread start.
    pub count: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Current net heap bytes (allocated − freed) on this thread.
    /// Signed: a thread may free memory allocated elsewhere.
    pub cur: i64,
    /// High-water mark of `cur` since the innermost open scope began.
    pub peak: i64,
}

thread_local! {
    // Const-initialized so TLS access from inside the allocator never
    // allocates or runs lazy initialization.
    static STATS: Cell<AllocSnapshot> = const {
        Cell::new(AllocSnapshot {
            count: 0,
            bytes: 0,
            cur: 0,
            peak: 0,
        })
    };
}

#[inline]
fn on_alloc(size: usize) {
    // try_with: during thread teardown TLS may already be destroyed;
    // silently skip counting rather than panic inside the allocator.
    let _ = STATS.try_with(|s| {
        let mut st = s.get();
        st.count += 1;
        st.bytes += size as u64;
        st.cur += size as i64;
        if st.cur > st.peak {
            st.peak = st.cur;
        }
        s.set(st);
    });
}

#[inline]
fn on_dealloc(size: usize) {
    let _ = STATS.try_with(|s| {
        let mut st = s.get();
        st.cur -= size as i64;
        s.set(st);
    });
}

/// Begin a measurement scope on this thread: returns the counters as
/// they stand (with the *previous* scope's peak preserved inside) and
/// re-bases the peak to the current level so the new scope observes
/// only its own high-water mark.
pub(crate) fn scope_begin() -> AllocSnapshot {
    STATS
        .try_with(|s| {
            let mut st = s.get();
            let before = st;
            st.peak = st.cur;
            s.set(st);
            before
        })
        .unwrap_or_default()
}

/// End a scope begun with [`scope_begin`]: returns
/// `(allocs, alloc_bytes, alloc_peak_bytes)` for the scope and
/// restores the enclosing scope's peak (taking the max with anything
/// this scope reached, since the parent lived through it too).
pub(crate) fn scope_end(before: AllocSnapshot) -> (f64, f64, f64) {
    STATS
        .try_with(|s| {
            let mut st = s.get();
            let allocs = st.count.wrapping_sub(before.count) as f64;
            let bytes = st.bytes.wrapping_sub(before.bytes) as f64;
            // Peak net growth relative to the level at scope entry;
            // clamped because a scope that only frees has no growth.
            let peak = (st.peak - before.cur).max(0) as f64;
            st.peak = st.peak.max(before.peak);
            s.set(st);
            (allocs, bytes, peak)
        })
        .unwrap_or((0.0, 0.0, 0.0))
}

/// Current `(allocs, bytes)` totals for this thread since it started.
/// Counting only advances while [`crate::enabled`] is on.
pub fn thread_alloc_totals() -> (u64, u64) {
    STATS
        .try_with(|s| {
            let st = s.get();
            (st.count, st.bytes)
        })
        .unwrap_or((0, 0))
}

/// Counting wrapper over the system allocator. Installed as the
/// workspace-wide `#[global_allocator]` in this crate's root, so every
/// binary that links `lsi-obs` gets per-span memory attribution for
/// free (and pays one relaxed load per heap call when disarmed).
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds
// the GlobalAlloc contract; the counting side effects touch only
// plain thread-local `Cell`s and cannot unwind (no allocation, no
// lazy TLS init, teardown guarded by `try_with`).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc `alloc` contract; we
    // delegate to `System` unchanged and only read/update plain TLS.
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from our own caller,
        // which is bound by the same GlobalAlloc preconditions.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && crate::enabled() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller upholds the GlobalAlloc `alloc_zeroed` contract;
    // we delegate to `System` unchanged.
    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from our own caller.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && crate::enabled() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller upholds the GlobalAlloc `dealloc` contract (live
    // ptr from this allocator with its layout); we delegate to
    // `System` unchanged.
    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged; our caller
        // guarantees they describe a live allocation from this
        // allocator, which always came from `System`.
        unsafe { System.dealloc(ptr, layout) };
        if crate::enabled() {
            on_dealloc(layout.size());
        }
    }

    // SAFETY: caller upholds the GlobalAlloc `realloc` contract; we
    // delegate to `System` unchanged.
    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments forwarded unchanged under the caller's
        // realloc preconditions (live ptr, matching layout, nonzero
        // rounded-up new_size).
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && crate::enabled() {
            // Model as free(old) + alloc(new): one new allocation,
            // `new_size` fresh bytes requested, net delta reflected.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests share the process-global ENABLED switch and the test
    // harness runs them concurrently; serialize the tests that toggle
    // the switch so the disarmed test cannot observe another test's
    // armed window.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn scope_counts_allocations_and_peak() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(true);
        let before = scope_begin();
        let v: Vec<u8> = Vec::with_capacity(64 * 1024);
        drop(v);
        let small: Vec<u8> = Vec::with_capacity(128);
        let (allocs, bytes, peak) = scope_end(before);
        drop(small);
        crate::set_enabled(false);
        assert!(allocs >= 2.0, "two Vec allocations, got {allocs}");
        assert!(bytes >= (64 * 1024 + 128) as f64, "got {bytes}");
        // The 64 KiB buffer was live at some point inside the scope.
        assert!(peak >= (64 * 1024) as f64, "peak {peak}");
    }

    #[test]
    fn nested_scope_restores_parent_peak() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(true);
        let outer = scope_begin();
        let big: Vec<u8> = Vec::with_capacity(32 * 1024);
        drop(big);
        let inner = scope_begin();
        let tiny: Vec<u8> = Vec::with_capacity(16);
        drop(tiny);
        let (_, _, inner_peak) = scope_end(inner);
        let (_, _, outer_peak) = scope_end(outer);
        crate::set_enabled(false);
        assert!(
            inner_peak < (32 * 1024) as f64,
            "inner scope must not inherit the outer high-water mark, got {inner_peak}"
        );
        assert!(
            outer_peak >= (32 * 1024) as f64,
            "outer scope peak must survive the nested scope, got {outer_peak}"
        );
    }

    #[test]
    fn disarmed_scope_reports_zero() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(false);
        let before = scope_begin();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let (allocs, bytes, _) = scope_end(before);
        assert_eq!(allocs, 0.0);
        assert_eq!(bytes, 0.0);
    }
}
