//! LSI spelling correction (§5.4, Kukich).
//!
//! "In this application, the rows were unigrams and bigrams and the
//! columns were correctly spelled words. An input word (correctly or
//! incorrectly spelled) was broken down into its bigrams and trigrams,
//! the query vector was located at the weighted vector sum of these
//! elements, and the nearest word in LSI space was returned as the
//! suggested correct spelling."


use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::spelling::Misspelling;
use lsi_text::ngram::bigrams_and_trigrams;
use lsi_text::{Corpus, Document};

/// Render a word's padded bigram/trigram features as a whitespace
/// token string. The tokenizer keeps only alphanumeric characters, so
/// the boundary pads `^`/`$` are mapped to the digits `0`/`1` (the
/// lexicon is alphabetic, so no collision is possible).
fn gram_text(word: &str) -> String {
    bigrams_and_trigrams(word, true)
        .into_iter()
        .map(|g| g.replace('^', "0").replace('$', "1"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// A spelling corrector: an LSI space over an n-gram × word matrix.
pub struct SpellingCorrector {
    model: LsiModel,
    words: Vec<String>,
}

impl SpellingCorrector {
    /// Build from a lexicon of correctly spelled words.
    ///
    /// Each word becomes a "document" whose text is its padded bigrams
    /// and trigrams; the LSI vocabulary rows are therefore n-grams,
    /// exactly Kukich's descriptor-object matrix.
    pub fn build(lexicon: &[&str], k: usize) -> lsi_core::Result<SpellingCorrector> {
        let corpus = Corpus {
            docs: lexicon
                .iter()
                .map(|w| Document::new(w.to_string(), gram_text(w)))
                .collect(),
        };
        let options = LsiOptions {
            k,
            rules: lsi_text::ParsingRules {
                // Keep every n-gram, even hapax ones: discriminative
                // grams are exactly what identifies a word. N-grams are
                // features, not English words — no stop list, no
                // plural folding.
                min_df: 1,
                use_stopwords: false,
                fold: lsi_text::normalize::TokenFold::None,
                ..Default::default()
            },
            weighting: lsi_text::TermWeighting::log_entropy(),
            svd_seed: 17,
        };
        let (model, _) = LsiModel::build(&corpus, &options)?;
        Ok(SpellingCorrector {
            model,
            words: lexicon.iter().map(|w| w.to_string()).collect(),
        })
    }

    /// Suggest the `z` nearest lexicon words for an input string.
    pub fn suggest(&self, written: &str, z: usize) -> lsi_core::Result<Vec<(String, f64)>> {
        let text = gram_text(&written.to_lowercase());
        let ranked = self.model.query_top(&text, z)?;
        Ok(ranked
            .matches
            .into_iter()
            .map(|m| (m.id.to_string(), m.cosine))
            .collect())
    }

    /// Best single suggestion.
    pub fn correct(&self, written: &str) -> lsi_core::Result<Option<String>> {
        Ok(self.suggest(written, 1)?.into_iter().next().map(|(w, _)| w))
    }

    /// Accuracy over a batch of misspellings with known ground truth.
    pub fn accuracy(&self, cases: &[Misspelling]) -> lsi_core::Result<f64> {
        if cases.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for case in cases {
            if self.correct(&case.written)?.as_deref() == Some(case.intended.as_str()) {
                correct += 1;
            }
        }
        Ok(correct as f64 / cases.len() as f64)
    }

    /// The lexicon.
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

/// Edit-distance baseline for comparison (dynamic programming
/// Levenshtein, pick the nearest lexicon word).
pub fn edit_distance_correct(lexicon: &[&str], written: &str) -> Option<String> {
    lexicon
        .iter()
        .map(|w| (levenshtein(w, written), *w))
        .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)))
        .map(|(_, w)| w.to_string())
}

/// Classic Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpora::spelling::{generate_misspellings, LEXICON};

    #[test]
    fn corrects_the_papers_example() {
        // "Dumais" is not in the lexicon, but the mechanism is the
        // paper's: a single-character corruption should land next to
        // its source. Use a lexicon word.
        let corrector = SpellingCorrector::build(LEXICON, 60).unwrap();
        let fixed = corrector.correct("informaton").unwrap();
        assert_eq!(fixed.as_deref(), Some("information"));
    }

    #[test]
    fn accuracy_on_generated_misspellings_is_high() {
        let corrector = SpellingCorrector::build(LEXICON, 60).unwrap();
        let cases = generate_misspellings(60, 5);
        let acc = corrector.accuracy(&cases).unwrap();
        assert!(acc >= 0.7, "spelling accuracy {acc} too low");
    }

    #[test]
    fn suggestions_are_ranked_and_bounded() {
        let corrector = SpellingCorrector::build(LEXICON, 40).unwrap();
        let sugg = corrector.suggest("retrieval", 5).unwrap();
        assert_eq!(sugg.len(), 5);
        assert_eq!(sugg[0].0, "retrieval", "exact word is its own best match");
        for w in sugg.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("dumais", "duniais"), 2);
    }

    #[test]
    fn edit_distance_baseline_works() {
        let fixed = edit_distance_correct(LEXICON, "informaton");
        assert_eq!(fixed.as_deref(), Some("information"));
    }

    #[test]
    fn empty_case_list_scores_zero() {
        let corrector = SpellingCorrector::build(&["alpha", "beta"], 2).unwrap();
        assert_eq!(corrector.accuracy(&[]).unwrap(), 0.0);
    }
}
