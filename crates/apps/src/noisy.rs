//! Retrieval from noisy (OCR / pen-machine) input (§5.4, Nielsen et
//! al.).
//!
//! "If there are scanning errors and a word (Dumais) is misspelled (as
//! Duniais), many of the other words in the document will be spelled
//! correctly. If these correctly spelled context words also occur in
//! documents which contained a correctly spelled version ... Even
//! though the error rates were 8.8% at the word level, information
//! retrieval performance using LSI was not disrupted."

use std::collections::HashSet;

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::noise::corrupt_corpus;
use lsi_corpora::SyntheticCorpus;
use lsi_eval::metrics::average_precision_3pt;

/// Outcome of the clean-vs-noisy comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyResult {
    /// Word error rate applied to the documents.
    pub word_error_rate: f64,
    /// Mean 3-pt average precision on the clean corpus.
    pub clean_ap: f64,
    /// Mean 3-pt average precision on the corrupted corpus.
    pub noisy_ap: f64,
}

impl NoisyResult {
    /// Fractional degradation caused by the noise.
    pub fn degradation(&self) -> f64 {
        if self.clean_ap == 0.0 {
            0.0
        } else {
            (self.clean_ap - self.noisy_ap) / self.clean_ap
        }
    }
}

/// Build LSI on the clean and the corrupted versions of the corpus and
/// evaluate the same (clean) queries against both.
pub fn compare_clean_vs_noisy(
    gen: &SyntheticCorpus,
    options: &LsiOptions,
    word_error_rate: f64,
    noise_seed: u64,
) -> lsi_core::Result<NoisyResult> {
    let (clean_model, _) = LsiModel::build(&gen.corpus, options)?;
    let corrupted = corrupt_corpus(&gen.corpus, word_error_rate, noise_seed);
    let (noisy_model, _) = LsiModel::build(&corrupted, options)?;

    let mut clean_ap = 0.0;
    let mut noisy_ap = 0.0;
    for q in &gen.queries {
        let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
        let clean_ranking: Vec<usize> = clean_model
            .query(&q.text)?
            .matches
            .iter()
            .map(|m| m.doc)
            .collect();
        let noisy_ranking: Vec<usize> = noisy_model
            .query(&q.text)?
            .matches
            .iter()
            .map(|m| m.doc)
            .collect();
        clean_ap += average_precision_3pt(&clean_ranking, &relevant);
        noisy_ap += average_precision_3pt(&noisy_ranking, &relevant);
    }
    let n = gen.queries.len() as f64;
    Ok(NoisyResult {
        word_error_rate,
        clean_ap: clean_ap / n,
        noisy_ap: noisy_ap / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpora::noise::PAPER_WORD_ERROR_RATE;
    use lsi_corpora::SyntheticOptions;
    use lsi_text::{ParsingRules, TermWeighting};

    fn setup() -> (SyntheticCorpus, LsiOptions) {
        let gen = SyntheticCorpus::generate(&SyntheticOptions {
            n_topics: 5,
            docs_per_topic: 10,
            doc_len: 50,
            seed: 606,
            ..Default::default()
        });
        let options = LsiOptions {
            k: 10,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 11,
        };
        (gen, options)
    }

    #[test]
    fn paper_error_rate_does_not_disrupt_retrieval() {
        let (gen, options) = setup();
        let r = compare_clean_vs_noisy(&gen, &options, PAPER_WORD_ERROR_RATE, 1).unwrap();
        assert!(r.clean_ap > 0.5, "clean AP {} suspiciously low", r.clean_ap);
        assert!(
            r.degradation() < 0.15,
            "8.8% word errors should not disrupt LSI: clean {} noisy {} ({}% degradation)",
            r.clean_ap,
            r.noisy_ap,
            r.degradation() * 100.0
        );
    }

    #[test]
    fn extreme_noise_does_degrade() {
        let (gen, options) = setup();
        let mild = compare_clean_vs_noisy(&gen, &options, 0.05, 2).unwrap();
        let severe = compare_clean_vs_noisy(&gen, &options, 0.9, 2).unwrap();
        assert!(
            severe.noisy_ap < mild.noisy_ap,
            "90% corruption ({}) should hurt more than 5% ({})",
            severe.noisy_ap,
            mild.noisy_ap
        );
    }

    #[test]
    fn zero_noise_is_identical() {
        let (gen, options) = setup();
        let r = compare_clean_vs_noisy(&gen, &options, 0.0, 3).unwrap();
        assert!((r.clean_ap - r.noisy_ap).abs() < 1e-12);
        assert_eq!(r.degradation(), 0.0);
    }
}
