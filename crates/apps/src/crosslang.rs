//! Cross-language retrieval (§5.4, Landauer & Littman).
//!
//! "The original term-document matrix is formed using a collection of
//! abstracts that have versions in more than one language ... Each
//! abstract is treated as the combination of its French-English
//! versions. ... After this analysis, monolingual abstracts can be
//! folded-in ... Queries in either French or English can be matched to
//! French or English abstracts. There is no difficult translation
//! involved."

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::bilingual::BilingualCorpus;
use lsi_text::Corpus;

/// A cross-language retrieval system: an LSI space trained on combined
/// dual-language documents, with monolingual documents folded in.
pub struct CrossLanguageLsi {
    /// The underlying model (training docs + folded monolingual docs).
    pub model: LsiModel,
    /// Number of training (combined) documents; folded-in monolingual
    /// documents have indices at or above this.
    pub n_training: usize,
}

impl CrossLanguageLsi {
    /// Train on the combined corpus and fold in both monolingual
    /// holdout sets (English first, then French).
    pub fn build(data: &BilingualCorpus, options: &LsiOptions) -> lsi_core::Result<Self> {
        let (mut model, _) = LsiModel::build(&data.training, options)?;
        let n_training = model.n_docs();
        model.fold_in_documents(&data.holdout_english)?;
        model.fold_in_documents(&data.holdout_french)?;
        Ok(CrossLanguageLsi { model, n_training })
    }

    /// Rank only the folded-in monolingual documents for a query,
    /// returning `(model doc index, cosine)` best-first.
    pub fn rank_monolingual(&self, query: &str) -> lsi_core::Result<Vec<(usize, f64)>> {
        let ranked = self.model.query(query)?;
        Ok(ranked
            .matches
            .into_iter()
            .filter(|m| m.doc >= self.n_training)
            .map(|m| (m.doc, m.cosine))
            .collect())
    }
}

/// The translate-then-search baseline the paper compares against
/// ("as effective as first translating the queries into French and
/// searching a French-only database"): since the synthetic vocabularies
/// are concept-aligned (`enX` ↔ `frX`), translation is exact.
pub fn translate_query(query: &str, to_french: bool) -> String {
    query
        .split_whitespace()
        .map(|t| {
            if to_french {
                t.replace("en", "fr")
            } else {
                t.replace("fr", "en")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A monolingual (single-language) LSI system over one holdout set —
/// the baseline target for translated queries.
pub fn monolingual_model(
    docs: &Corpus,
    options: &LsiOptions,
) -> lsi_core::Result<LsiModel> {
    Ok(LsiModel::build(docs, options)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpora::bilingual::BilingualOptions;
    use lsi_text::{ParsingRules, TermWeighting};

    fn options() -> LsiOptions {
        LsiOptions {
            k: 12,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 9,
        }
    }

    fn accuracy_of_crosslang(
        system: &CrossLanguageLsi,
        data: &BilingualCorpus,
        queries: &[String],
        target_french: bool,
    ) -> f64 {
        // For each topic query, check that the top-ranked monolingual
        // document in the *other* language has the query's topic.
        let mut correct = 0usize;
        for (topic, q) in queries.iter().enumerate() {
            let ranked = system.rank_monolingual(q).unwrap();
            let top = ranked
                .iter()
                .find(|(d, _)| {
                    let local = d - system.n_training;
                    let is_french = local >= data.holdout_english.len();
                    is_french == target_french
                })
                .expect("some document of the target language");
            let local = top.0 - system.n_training;
            let holdout_idx = if target_french {
                local - data.holdout_english.len()
            } else {
                local
            };
            if data.holdout_topics[holdout_idx] == topic {
                correct += 1;
            }
        }
        correct as f64 / queries.len() as f64
    }

    #[test]
    fn english_queries_retrieve_french_documents() {
        let data = BilingualCorpus::generate(&BilingualOptions::default());
        let system = CrossLanguageLsi::build(&data, &options()).unwrap();
        let acc = accuracy_of_crosslang(&system, &data, &data.queries_english, true);
        assert!(
            acc >= 0.8,
            "cross-language retrieval accuracy {acc} too low"
        );
    }

    #[test]
    fn french_queries_retrieve_english_documents() {
        let data = BilingualCorpus::generate(&BilingualOptions::default());
        let system = CrossLanguageLsi::build(&data, &options()).unwrap();
        let acc = accuracy_of_crosslang(&system, &data, &data.queries_french, false);
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn comparable_to_translate_then_search() {
        // The paper: the multilingual space "was as effective as first
        // translating the queries".
        let data = BilingualCorpus::generate(&BilingualOptions::default());
        let system = CrossLanguageLsi::build(&data, &options()).unwrap();
        let cross_acc = accuracy_of_crosslang(&system, &data, &data.queries_english, true);

        // Baseline: translate English queries to French, search a
        // French-only model.
        let french_model = monolingual_model(&data.holdout_french, &options()).unwrap();
        let mut correct = 0usize;
        for (topic, q) in data.queries_english.iter().enumerate() {
            let translated = translate_query(q, true);
            let ranked = french_model.query(&translated).unwrap();
            let top = ranked.matches[0].doc;
            if data.holdout_topics[top] == topic {
                correct += 1;
            }
        }
        let baseline_acc = correct as f64 / data.queries_english.len() as f64;
        assert!(
            cross_acc >= baseline_acc - 0.2,
            "cross {cross_acc} should be comparable to translated baseline {baseline_acc}"
        );
    }

    #[test]
    fn translate_query_swaps_vocabulary() {
        assert_eq!(translate_query("en3 en17", true), "fr3 fr17");
        assert_eq!(translate_query("fr3", false), "en3");
    }
}
