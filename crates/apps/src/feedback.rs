//! Relevance feedback (§5.1).
//!
//! "Most of the tests using LSI have involved a method in which the
//! initial query is replaced with the vector sum of the documents the
//! user has selected as relevant. ... Replacing the user's query with
//! the first relevant document improves performance by an average of
//! 33% and replacing it with the average of the first three relevant
//! documents improves performance by an average of 67%."

use std::collections::HashSet;

use lsi_core::LsiModel;

/// Feedback protocols compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackPolicy {
    /// No feedback: the raw query.
    None,
    /// Replace the query with the first relevant document's vector.
    FirstRelevant,
    /// Replace the query with the mean of the first `n` relevant
    /// documents' vectors.
    MeanOfFirstRelevant(usize),
}

/// Run a query under a feedback policy.
///
/// The protocol follows the paper's evaluation style: rank once with
/// the plain query, identify the first relevant document(s) the user
/// would mark (using ground-truth `relevant`), replace the query vector,
/// and re-rank. Returns the final ranking (doc indices, best first).
/// Documents used as feedback are ranked first in the result (the user
/// has already seen and judged them), followed by the re-ranked rest.
pub fn query_with_feedback(
    model: &LsiModel,
    query: &str,
    relevant: &HashSet<usize>,
    policy: FeedbackPolicy,
) -> lsi_core::Result<Vec<usize>> {
    let initial = model.query(query)?;
    let initial_docs: Vec<usize> = initial.matches.iter().map(|m| m.doc).collect();

    let n_feedback = match policy {
        FeedbackPolicy::None => return Ok(initial_docs),
        FeedbackPolicy::FirstRelevant => 1,
        FeedbackPolicy::MeanOfFirstRelevant(n) => n,
    };

    // The first n relevant documents the user encounters down the list.
    let seen: Vec<usize> = initial_docs
        .iter()
        .copied()
        .filter(|d| relevant.contains(d))
        .take(n_feedback)
        .collect();
    if seen.is_empty() {
        return Ok(initial_docs);
    }

    // New query vector: mean of the selected documents' factor vectors.
    let k = model.k();
    let mut qhat = vec![0.0; k];
    for &d in &seen {
        let dv = model.doc_vector(d);
        for (a, b) in qhat.iter_mut().zip(dv.iter()) {
            *a += b;
        }
    }
    for a in qhat.iter_mut() {
        *a /= seen.len() as f64;
    }

    let reranked = model.rank_projected(&qhat)?;
    let mut out = seen.clone();
    out.extend(
        reranked
            .matches
            .iter()
            .map(|m| m.doc)
            .filter(|d| !seen.contains(d)),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiOptions;
    use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
    use lsi_eval::metrics::average_precision_3pt;
    use lsi_text::{ParsingRules, TermWeighting};

    fn setup() -> (LsiModel, SyntheticCorpus) {
        let gen = SyntheticCorpus::generate(&SyntheticOptions {
            n_topics: 5,
            docs_per_topic: 8,
            synonyms_per_concept: 4,
            noise_fraction: 0.3,
            seed: 42,
            ..Default::default()
        });
        let options = LsiOptions {
            k: 10,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 42,
        };
        let model = LsiModel::build(&gen.corpus, &options).unwrap().0;
        (model, gen)
    }

    #[test]
    fn feedback_never_breaks_ranking_shape() {
        let (model, gen) = setup();
        let q = &gen.queries[0];
        let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
        for policy in [
            FeedbackPolicy::None,
            FeedbackPolicy::FirstRelevant,
            FeedbackPolicy::MeanOfFirstRelevant(3),
        ] {
            let ranking = query_with_feedback(&model, &q.text, &relevant, policy).unwrap();
            assert_eq!(ranking.len(), model.n_docs());
            let unique: HashSet<usize> = ranking.iter().copied().collect();
            assert_eq!(unique.len(), ranking.len(), "no duplicates");
        }
    }

    #[test]
    fn feedback_improves_mean_precision() {
        // The paper's §5.1 finding, in miniature: feedback > none, and
        // 3-document feedback >= 1-document feedback on average.
        let (model, gen) = setup();
        let mut scores = [0.0f64; 3];
        let policies = [
            FeedbackPolicy::None,
            FeedbackPolicy::FirstRelevant,
            FeedbackPolicy::MeanOfFirstRelevant(3),
        ];
        for q in &gen.queries {
            let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
            for (i, &p) in policies.iter().enumerate() {
                let ranking = query_with_feedback(&model, &q.text, &relevant, p).unwrap();
                scores[i] += average_precision_3pt(&ranking, &relevant);
            }
        }
        let n = gen.queries.len() as f64;
        let (none, first, mean3) = (scores[0] / n, scores[1] / n, scores[2] / n);
        assert!(first > none, "first-relevant {first} should beat none {none}");
        assert!(
            mean3 >= first - 0.02,
            "mean-of-3 {mean3} should be at least first-relevant {first}"
        );
    }

    #[test]
    fn feedback_with_no_relevant_docs_falls_back_to_plain_ranking() {
        let (model, gen) = setup();
        let empty = HashSet::new();
        let with = query_with_feedback(
            &model,
            &gen.queries[0].text,
            &empty,
            FeedbackPolicy::FirstRelevant,
        )
        .unwrap();
        let without =
            query_with_feedback(&model, &gen.queries[0].text, &empty, FeedbackPolicy::None)
                .unwrap();
        assert_eq!(with, without);
    }
}
