//! Information filtering (§5.3).
//!
//! "A user's interest is represented as one (or more) vectors in this
//! reduced-dimension LSI space. Each new document is matched against
//! the vector and if it is similar enough to the interest vector it is
//! recommended to the user. Learning methods like relevance feedback
//! can be used to improve the representation of interest vectors over
//! time."

use lsi_core::LsiModel;
use lsi_linalg::vecops;

/// A standing interest profile in the LSI space.
#[derive(Debug, Clone)]
pub struct InterestProfile {
    /// Owner label.
    pub name: String,
    /// The profile vector (k-dimensional).
    pub vector: Vec<f64>,
    /// Cosine threshold above which a document is recommended.
    pub threshold: f64,
}

impl InterestProfile {
    /// Profile from a free-text interest statement.
    pub fn from_text(
        model: &LsiModel,
        name: impl Into<String>,
        text: &str,
        threshold: f64,
    ) -> lsi_core::Result<InterestProfile> {
        Ok(InterestProfile {
            name: name.into(),
            vector: model.project_text(text)?,
            threshold,
        })
    }

    /// Profile from known relevant documents — "the most effective
    /// method used vectors derived from known relevant documents (like
    /// relevance feedback)" (§5.3, Dumais & Foltz).
    pub fn from_relevant_docs(
        model: &LsiModel,
        name: impl Into<String>,
        docs: &[usize],
        threshold: f64,
    ) -> lsi_core::Result<InterestProfile> {
        if docs.is_empty() {
            return Err(lsi_core::Error::Inconsistent {
                context: "profile needs at least one relevant document".to_string(),
            });
        }
        let k = model.k();
        let mut vector = vec![0.0; k];
        for &d in docs {
            if d >= model.n_docs() {
                return Err(lsi_core::Error::Inconsistent {
                    context: format!("document {d} out of range"),
                });
            }
            let dv = model.doc_vector(d);
            for (a, b) in vector.iter_mut().zip(dv.iter()) {
                *a += b;
            }
        }
        for a in vector.iter_mut() {
            *a /= docs.len() as f64;
        }
        Ok(InterestProfile {
            name: name.into(),
            vector,
            threshold,
        })
    }

    /// Cosine between the profile and a projected document vector.
    pub fn score(&self, doc_vector: &[f64]) -> f64 {
        vecops::cosine(&self.vector, doc_vector)
    }

    /// Would this document be recommended?
    pub fn recommends(&self, doc_vector: &[f64]) -> bool {
        self.score(doc_vector) >= self.threshold
    }

    /// Nudge the profile toward a document the user liked (simple
    /// exponential moving average — the "learning" of §5.3).
    pub fn reinforce(&mut self, doc_vector: &[f64], rate: f64) {
        assert_eq!(doc_vector.len(), self.vector.len());
        for (p, d) in self.vector.iter_mut().zip(doc_vector.iter()) {
            *p = (1.0 - rate) * *p + rate * d;
        }
    }
}

/// A filtering decision for one streamed document.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterDecision {
    /// Profile name.
    pub profile: String,
    /// Cosine score.
    pub score: f64,
    /// Whether the document was recommended.
    pub recommended: bool,
}

/// Match one new document text against all profiles ("an ongoing stream
/// of new information \[matched\] to relatively stable user interests").
/// The document is projected by folding-in arithmetic (Eq. 7) but never
/// stored — filtering does not grow the model.
pub fn filter_document(
    model: &LsiModel,
    profiles: &[InterestProfile],
    text: &str,
) -> lsi_core::Result<Vec<FilterDecision>> {
    let dv = model.project_text(text)?;
    Ok(profiles
        .iter()
        .map(|p| {
            let score = p.score(&dv);
            FilterDecision {
                profile: p.name.clone(),
                score,
                recommended: score >= p.threshold,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiOptions;
    use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
    use lsi_text::{ParsingRules, TermWeighting};

    fn setup() -> (LsiModel, SyntheticCorpus) {
        let gen = SyntheticCorpus::generate(&SyntheticOptions {
            n_topics: 4,
            docs_per_topic: 10,
            seed: 31,
            ..Default::default()
        });
        let options = LsiOptions {
            k: 8,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 4,
        };
        (LsiModel::build(&gen.corpus, &options).unwrap().0, gen)
    }

    #[test]
    fn profile_from_docs_matches_its_topic() {
        let (model, gen) = setup();
        // Profile for topic 0 from its first three documents.
        let profile =
            InterestProfile::from_relevant_docs(&model, "topic0", &[0, 1, 2], 0.5).unwrap();
        // A fresh topic-0 query should score higher than topic-2 text.
        let same = model.project_text(&gen.queries[0].text).unwrap();
        let other_q = gen.queries.iter().find(|q| q.topic == 2).unwrap();
        let other = model.project_text(&other_q.text).unwrap();
        assert!(
            profile.score(&same) > profile.score(&other),
            "on-topic {} vs off-topic {}",
            profile.score(&same),
            profile.score(&other)
        );
    }

    #[test]
    fn filter_document_flags_only_matching_profiles() {
        let (model, gen) = setup();
        let p0 = InterestProfile::from_relevant_docs(&model, "t0", &[0, 1, 2], 0.6).unwrap();
        let docs_t3: Vec<usize> = (0..gen.n_docs()).filter(|&d| gen.doc_topics[d] == 3).collect();
        let p3 =
            InterestProfile::from_relevant_docs(&model, "t3", &docs_t3[..3], 0.6).unwrap();
        // Stream a topic-0 document (a held-out style query text).
        let decisions = filter_document(&model, &[p0, p3], &gen.queries[0].text).unwrap();
        assert_eq!(decisions.len(), 2);
        assert!(decisions[0].score > decisions[1].score);
    }

    #[test]
    fn reinforce_moves_profile_toward_document() {
        let (model, _) = setup();
        let mut p = InterestProfile::from_relevant_docs(&model, "x", &[0], 0.5).unwrap();
        let target = model.doc_vector(20);
        let before = p.score(&target);
        for _ in 0..10 {
            p.reinforce(&target, 0.3);
        }
        let after = p.score(&target);
        assert!(after > before, "{after} should exceed {before}");
        assert!(after > 0.95);
    }

    #[test]
    fn empty_profile_inputs_rejected() {
        let (model, _) = setup();
        assert!(InterestProfile::from_relevant_docs(&model, "x", &[], 0.5).is_err());
        assert!(InterestProfile::from_relevant_docs(&model, "x", &[9999], 0.5).is_err());
    }

    #[test]
    fn threshold_controls_recommendation() {
        let (model, gen) = setup();
        let strict =
            InterestProfile::from_relevant_docs(&model, "strict", &[0, 1], 0.999).unwrap();
        let lax = InterestProfile {
            threshold: -1.0,
            ..strict.clone()
        };
        let dv = model.project_text(&gen.queries[gen.queries.len() - 1].text).unwrap();
        assert!(lax.recommends(&dv));
        // A strict threshold on an off-topic doc should reject.
        assert!(!strict.recommends(&dv) || strict.score(&dv) >= 0.999);
    }
}
