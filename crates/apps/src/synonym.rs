//! The TOEFL synonym test (§5.4, Landauer & Dumais).
//!
//! "For the synonym test they simply computed the similarity of the
//! stem word to each alternative and picked the closest one as the
//! synonym. ... Using this method LSI scored 64% correct, compared with
//! 33% correct for word-overlap methods."

use std::collections::HashMap;

use lsi_core::LsiModel;
use lsi_corpora::synonyms::{SynonymItem, SynonymTest};
use lsi_text::tokenize;

/// Result of running a synonym test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynonymScore {
    /// Items answered.
    pub total: usize,
    /// Items answered correctly.
    pub correct: usize,
}

impl SynonymScore {
    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Answer one item with an LSI model: pick the alternative whose term
/// vector is nearest (by cosine) to the stem's.
pub fn answer_with_lsi(model: &LsiModel, item: &SynonymItem) -> Option<usize> {
    let stem = model.term_index(&item.stem)?;
    let mut best: Option<(usize, f64)> = None;
    for (i, alt) in item.alternatives.iter().enumerate() {
        let Some(alt_idx) = model.term_index(alt) else {
            continue;
        };
        let sim = model.term_term_similarity(stem, alt_idx);
        if best.is_none_or(|(_, b)| sim > b) {
            best = Some((i, sim));
        }
    }
    best.map(|(i, _)| i)
}

/// Run the whole test with LSI. Unanswerable items (stem or all
/// alternatives out of vocabulary) count as wrong, as on the real test.
pub fn run_lsi(model: &LsiModel, test: &SynonymTest) -> SynonymScore {
    let mut correct = 0usize;
    for item in &test.items {
        if answer_with_lsi(model, item) == Some(item.correct) {
            correct += 1;
        }
    }
    SynonymScore {
        total: test.items.len(),
        correct,
    }
}

/// The word-overlap baseline: similarity of two words is the number of
/// documents in which they co-occur (first-order association only —
/// exactly what synonyms, which "need never co-occur", defeat).
pub struct WordOverlapBaseline {
    doc_sets: HashMap<String, Vec<usize>>,
}

impl WordOverlapBaseline {
    /// Index the corpus' word-document incidence.
    pub fn build(corpus: &lsi_text::Corpus) -> Self {
        let mut doc_sets: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, doc) in corpus.docs.iter().enumerate() {
            for tok in tokenize(&doc.text) {
                let entry = doc_sets.entry(tok).or_default();
                if entry.last() != Some(&j) {
                    entry.push(j);
                }
            }
        }
        WordOverlapBaseline { doc_sets }
    }

    /// Number of shared documents between two words.
    pub fn cooccurrence(&self, a: &str, b: &str) -> usize {
        let (Some(da), Some(db)) = (self.doc_sets.get(a), self.doc_sets.get(b)) else {
            return 0;
        };
        // Both lists are sorted by construction.
        let mut i = 0;
        let mut j = 0;
        let mut shared = 0;
        while i < da.len() && j < db.len() {
            match da[i].cmp(&db[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// Answer an item: alternative with the most co-occurrences; `None`
    /// if every alternative ties at zero (forced random guess — callers
    /// should score `None` as incorrect for a deterministic harness,
    /// which *underestimates* the baseline relative to 25 % guessing).
    pub fn answer(&self, item: &SynonymItem) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (i, alt) in item.alternatives.iter().enumerate() {
            let c = self.cooccurrence(&item.stem, alt);
            if c > 0 && best.is_none_or(|(_, b)| c > b) {
                best = Some((i, c));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Run the whole test; `None` answers score as a 1-in-4 guess using
    /// a deterministic rotation (so the baseline gets its fair 25 % on
    /// unanswerable items, as a human guessing would).
    pub fn run(&self, test: &SynonymTest) -> SynonymScore {
        let mut correct = 0usize;
        for (idx, item) in test.items.iter().enumerate() {
            match self.answer(item) {
                Some(a) if a == item.correct => correct += 1,
                Some(_) => {}
                None => {
                    // Deterministic guess: rotate through the slots.
                    if idx % 4 == item.correct {
                        correct += 1;
                    }
                }
            }
        }
        SynonymScore {
            total: test.items.len(),
            correct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiOptions;
    use lsi_corpora::SyntheticOptions;
    use lsi_text::{ParsingRules, TermWeighting};

    fn setup() -> (LsiModel, SynonymTest) {
        let options = SyntheticOptions {
            n_topics: 8,
            docs_per_topic: 24,
            concepts_per_topic: 8,
            synonyms_per_concept: 3,
            doc_len: 60,
            noise_fraction: 0.10,
            seed: 1234,
            ..Default::default()
        };
        let test = SynonymTest::generate(&options, 80, 99);
        let lsi_options = LsiOptions {
            k: 16,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 5,
        };
        let model = LsiModel::build(&test.corpus.corpus, &lsi_options).unwrap().0;
        (model, test)
    }

    #[test]
    fn lsi_beats_word_overlap_and_chance() {
        let (model, test) = setup();
        let lsi = run_lsi(&model, &test);
        let overlap = WordOverlapBaseline::build(&test.corpus.corpus).run(&test);
        assert!(
            lsi.accuracy() > 0.55,
            "LSI accuracy {} should be well above chance",
            lsi.accuracy()
        );
        assert!(
            lsi.accuracy() > overlap.accuracy(),
            "LSI {} should beat word overlap {}",
            lsi.accuracy(),
            overlap.accuracy()
        );
    }

    #[test]
    fn cooccurrence_counts_shared_docs() {
        let corpus = lsi_text::Corpus::from_pairs([
            ("a", "cat dog"),
            ("b", "cat fish"),
            ("c", "dog fish cat"),
        ]);
        let base = WordOverlapBaseline::build(&corpus);
        assert_eq!(base.cooccurrence("cat", "dog"), 2);
        assert_eq!(base.cooccurrence("cat", "fish"), 2);
        assert_eq!(base.cooccurrence("dog", "fish"), 1);
        assert_eq!(base.cooccurrence("cat", "unicorn"), 0);
    }

    #[test]
    fn lsi_answers_are_within_range() {
        let (model, test) = setup();
        for item in &test.items {
            if let Some(a) = answer_with_lsi(&model, item) {
                assert!(a < 4);
            }
        }
    }

    #[test]
    fn score_accuracy_math() {
        let s = SynonymScore {
            total: 80,
            correct: 51,
        };
        assert!((s.accuracy() - 0.6375).abs() < 1e-12);
        assert_eq!(SynonymScore { total: 0, correct: 0 }.accuracy(), 0.0);
    }
}
