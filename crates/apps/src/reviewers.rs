//! Automatic reviewer assignment (§5.4, Dumais & Nielsen).
//!
//! "Several hundred reviewers were described by means of texts they had
//! written, and this formed the basis of the LSI analysis. Hundreds of
//! submitted papers were represented by their abstracts, and matched to
//! the closest reviewers. These LSI similarities along with additional
//! constraints to insure that each paper was reviewed p times and that
//! each reviewer received no more than r papers ... were used to assign
//! papers to reviewers."

use lsi_core::{LsiModel, LsiOptions};
use lsi_linalg::vecops;
use lsi_text::Corpus;

/// A complete assignment: for each paper, its reviewers.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `reviewers_of[paper]` = reviewer indices.
    pub reviewers_of: Vec<Vec<usize>>,
    /// `load[reviewer]` = number of assigned papers.
    pub load: Vec<usize>,
    /// Total LSI similarity of all assignments (the greedy objective).
    pub total_similarity: f64,
}

/// The assignment engine: an LSI space built from reviewer writings.
pub struct ReviewerMatcher {
    model: LsiModel,
}

impl ReviewerMatcher {
    /// Train on the reviewers' writings (one document per reviewer).
    pub fn build(reviewer_texts: &Corpus, options: &LsiOptions) -> lsi_core::Result<Self> {
        let (model, _) = LsiModel::build(reviewer_texts, options)?;
        Ok(ReviewerMatcher { model })
    }

    /// The underlying model.
    pub fn model(&self) -> &LsiModel {
        &self.model
    }

    /// Similarity of one paper abstract to every reviewer.
    pub fn similarities(&self, abstract_text: &str) -> lsi_core::Result<Vec<f64>> {
        let qhat = self.model.project_text(abstract_text)?;
        Ok((0..self.model.n_docs())
            .map(|r| vecops::cosine(&self.model.doc_vector(r), &qhat))
            .collect())
    }

    /// Assign `papers` so each gets exactly `p` reviewers and no
    /// reviewer gets more than `r` papers, greedily maximizing LSI
    /// similarity (edges taken best-first subject to feasibility).
    ///
    /// Errors if the instance is infeasible
    /// (`papers.len() * p > reviewers * r`).
    pub fn assign(
        &self,
        papers: &[String],
        p: usize,
        r: usize,
    ) -> lsi_core::Result<Assignment> {
        let n_rev = self.model.n_docs();
        if papers.len() * p > n_rev * r {
            return Err(lsi_core::Error::Inconsistent {
                context: format!(
                    "{} papers x {p} reviews exceed capacity {n_rev} reviewers x {r}",
                    papers.len()
                ),
            });
        }
        if p > n_rev {
            return Err(lsi_core::Error::Inconsistent {
                context: format!("p={p} exceeds the number of reviewers {n_rev}"),
            });
        }

        // All (similarity, paper, reviewer) edges, best first.
        let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(papers.len() * n_rev);
        for (pi, text) in papers.iter().enumerate() {
            let sims = self.similarities(text)?;
            for (ri, &s) in sims.iter().enumerate() {
                edges.push((s, pi, ri));
            }
        }
        edges.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite similarity"));

        let mut reviewers_of = vec![Vec::with_capacity(p); papers.len()];
        let mut load = vec![0usize; n_rev];
        let mut total = 0.0;
        let mut remaining = papers.len() * p;
        for (s, pi, ri) in edges {
            if remaining == 0 {
                break;
            }
            if reviewers_of[pi].len() < p && load[ri] < r && !reviewers_of[pi].contains(&ri) {
                reviewers_of[pi].push(ri);
                load[ri] += 1;
                total += s;
                remaining -= 1;
            }
        }
        // Greedy can strand a paper when remaining reviewers are full;
        // repair by stealing capacity from the least-loaded feasible
        // reviewer (always possible given the capacity check).
        for pi in 0..papers.len() {
            while reviewers_of[pi].len() < p {
                let candidate = (0..n_rev)
                    .filter(|ri| load[*ri] < r && !reviewers_of[pi].contains(ri))
                    .min_by_key(|ri| load[*ri]);
                match candidate {
                    Some(ri) => {
                        reviewers_of[pi].push(ri);
                        load[ri] += 1;
                    }
                    None => {
                        return Err(lsi_core::Error::Inconsistent {
                            context: format!("could not complete assignment for paper {pi}"),
                        })
                    }
                }
            }
        }

        Ok(Assignment {
            reviewers_of,
            load,
            total_similarity: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
    use lsi_text::{ParsingRules, TermWeighting};

    /// Reviewers = synthetic docs (each an expert in their topic);
    /// papers = queries from known topics.
    fn setup() -> (ReviewerMatcher, SyntheticCorpus) {
        let gen = SyntheticCorpus::generate(&SyntheticOptions {
            n_topics: 4,
            docs_per_topic: 6,
            queries_per_topic: 2,
            seed: 404,
            ..Default::default()
        });
        let options = LsiOptions {
            k: 8,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 13,
        };
        let matcher = ReviewerMatcher::build(&gen.corpus, &options).unwrap();
        (matcher, gen)
    }

    #[test]
    fn constraints_are_respected() {
        let (matcher, gen) = setup();
        let papers: Vec<String> = gen.queries.iter().map(|q| q.text.clone()).collect();
        let (p, r) = (3, 2);
        let a = matcher.assign(&papers, p, r).unwrap();
        for reviewers in &a.reviewers_of {
            assert_eq!(reviewers.len(), p);
            let unique: std::collections::HashSet<_> = reviewers.iter().collect();
            assert_eq!(unique.len(), p, "no duplicate reviewers per paper");
        }
        for &l in &a.load {
            assert!(l <= r);
        }
    }

    #[test]
    fn assignments_prefer_topical_experts() {
        let (matcher, gen) = setup();
        let papers: Vec<String> = gen.queries.iter().map(|q| q.text.clone()).collect();
        let a = matcher.assign(&papers, 2, 3).unwrap();
        // Majority of each paper's reviewers share its topic.
        let mut topical = 0usize;
        let mut total = 0usize;
        for (pi, reviewers) in a.reviewers_of.iter().enumerate() {
            for &ri in reviewers {
                total += 1;
                if gen.doc_topics[ri] == gen.queries[pi].topic {
                    topical += 1;
                }
            }
        }
        assert!(
            topical * 10 >= total * 7,
            "expected >=70% topical assignments, got {topical}/{total}"
        );
    }

    #[test]
    fn infeasible_instances_are_rejected() {
        let (matcher, gen) = setup();
        let papers: Vec<String> = gen.queries.iter().map(|q| q.text.clone()).collect();
        // 8 papers x 24 reviews > 24 reviewers x 1.
        assert!(matcher.assign(&papers, 24, 1).is_err());
        assert!(matcher.assign(&papers, 100, 100).is_err());
    }

    #[test]
    fn tight_capacity_still_completes() {
        let (matcher, gen) = setup();
        let papers: Vec<String> = gen.queries.iter().map(|q| q.text.clone()).collect();
        // Exactly-tight instance: 8 papers x 3 = 24 = 24 reviewers x 1.
        let a = matcher.assign(&papers, 3, 1).unwrap();
        let assigned: usize = a.load.iter().sum();
        assert_eq!(assigned, papers.len() * 3);
        for &l in &a.load {
            assert!(l <= 1);
        }
    }

    #[test]
    fn similarities_have_one_score_per_reviewer() {
        let (matcher, gen) = setup();
        let sims = matcher.similarities(&gen.queries[0].text).unwrap();
        assert_eq!(sims.len(), gen.n_docs());
        assert!(sims.iter().all(|s| s.is_finite()));
    }
}
