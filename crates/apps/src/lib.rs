//! Applications of LSI (§5 of the paper): retrieval is the core, but
//! "the fact that both terms and documents are represented in the same
//! reduced-dimension space adds another dimension of flexibility"
//! (§5.4). Each module is one of the paper's applications, built on
//! `lsi-core`:
//!
//! * [`feedback`] — relevance feedback (§5.1): replace the query with
//!   relevant documents' vectors.
//! * [`filtering`] — information filtering / selective dissemination
//!   (§5.3): standing interest profiles matched against a stream.
//! * [`crosslang`] — cross-language retrieval (§5.4, Landauer &
//!   Littman): a combined-language space, monolingual folding-in.
//! * [`synonym`] — the TOEFL synonym test (§5.4, Landauer & Dumais).
//! * [`noisy`] — retrieval from corrupted text (§5.4, Nielsen et al.).
//! * [`spelling`] — n-gram spelling correction (§5.4, Kukich).
//! * [`reviewers`] — automatic reviewer assignment (§5.4, Dumais &
//!   Nielsen): LSI similarities under p-reviews-per-paper /
//!   r-papers-per-reviewer constraints.

// Index-based loops over parallel arrays are the clearest idiom in
// numerical kernels; clippy's iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]


pub mod crosslang;
pub mod feedback;
pub mod filtering;
pub mod noisy;
pub mod reviewers;
pub mod spelling;
pub mod synonym;
