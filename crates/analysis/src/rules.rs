//! The rule catalog.
//!
//! Each rule is a pure function from a lexed [`SourceFile`] to
//! findings; the engine owns walking, suppression, and the baseline
//! ratchet. Rules search the *masked* views from [`crate::lexer`], so
//! string literals and comments can never produce false call sites.
//!
//! To add a rule (the full recipe is in DESIGN.md §3e):
//! 1. implement [`Rule`] below — `name` must be a stable kebab-case
//!    identifier (baselines key on it), `rationale` is what
//!    `lsi-analyze --explain <rule>` prints;
//! 2. register it in [`all_rules`];
//! 3. add fixture tests in `tests/rule_fixtures.rs` (one positive and
//!    one negative case minimum);
//! 4. run `lsi-analyze --write-baseline` to absorb pre-existing debt,
//!    and eyeball the new baseline entries before committing them.

use crate::{Finding, Severity, SourceFile};

/// A single static-analysis rule.
pub trait Rule {
    /// Stable kebab-case identifier (baseline key, `--explain` arg).
    fn name(&self) -> &'static str;
    /// Severity attached to this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line summary for rule listings.
    fn summary(&self) -> &'static str;
    /// The full rationale printed by `--explain`.
    fn rationale(&self) -> &'static str;
    /// Run the rule over one file.
    fn check(&self, file: &SourceFile) -> Vec<Finding>;

    /// Helper: build a finding for this rule (line is 0-based here,
    /// reported 1-based).
    fn finding(&self, file: &SourceFile, line_idx: usize, message: String) -> Finding {
        Finding {
            rule: self.name(),
            severity: self.severity(),
            file: file.rel_path.clone(),
            line: line_idx + 1,
            message,
        }
    }
}

/// Every registered rule, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnsafeAudit),
        Box::new(PanicSurface),
        Box::new(FloatSafety),
        Box::new(AtomicsAudit),
        Box::new(EprintlnLint),
        Box::new(ThresholdProvenance),
        Box::new(MetricNaming),
    ]
}

/// Look up a rule by its stable name.
pub fn rule_by_name(name: &str) -> Option<Box<dyn Rule>> {
    all_rules().into_iter().find(|r| r.name() == name)
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of every occurrence of `pat` in `hay` whose preceding
/// character is not an identifier character (so `eprint!` never
/// matches inside `eprintln!`, `panic!` never inside `my_panic!`).
fn find_word_starts(hay: &str, pat: &str) -> Vec<usize> {
    // Patterns opening with a non-identifier char (`.unwrap()`) need
    // no leading boundary: `v.unwrap()` must still match.
    let ident_start = pat.chars().next().is_some_and(is_ident);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(pat) {
        let start = from + pos;
        let boundary = !ident_start
            || start == 0
            || !is_ident(hay[..start].chars().next_back().unwrap_or(' '));
        if boundary {
            out.push(start);
        }
        from = start + pat.len().max(1);
    }
    out
}

/// Library-code path filter shared by `panic-surface` and
/// `float-safety`: the bench harness is a binary crate of experiments
/// and `examples/` are teaching code — neither is library surface.
pub(crate) fn is_library_path(path: &str) -> bool {
    !path.starts_with("crates/bench/") && !path.starts_with("examples/")
}

// ---------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------

/// Every `unsafe` site must carry a nearby SAFETY justification.
pub struct UnsafeAudit;

/// How many lines above an `unsafe` token the SAFETY comment may sit
/// (covers `/// # Safety` doc sections above `unsafe fn` signatures).
const UNSAFE_COMMENT_WINDOW: usize = 5;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "every `unsafe` block/fn/impl must carry a SAFETY comment"
    }
    fn rationale(&self) -> &'static str {
        "The pool's scoped-job protocol, the nnz-balanced SpMV span \
         writes, and the GEMM packing views all rely on unsafe code \
         whose soundness argument lives in prose, not in the type \
         system. An `unsafe` site without a written invariant is a \
         site the next refactor breaks silently. Every `unsafe` \
         keyword in non-test code must have a comment containing \
         `SAFETY` (conventionally `// SAFETY: ...`, or a `# Safety` \
         doc section for `unsafe fn`) on the same line or within the \
         5 lines above it."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            for _ in find_word_starts(&line.code, "unsafe")
                .iter()
                .filter(|&&s| {
                    // Trailing boundary too: `unsafe` is a keyword,
                    // not a prefix of one.
                    !line.code[s + 6..].starts_with(|c: char| is_ident(c))
                })
            {
                let lo = idx.saturating_sub(UNSAFE_COMMENT_WINDOW);
                let justified = file.lexed.lines[lo..=idx].iter().any(|l| {
                    l.comment.to_ascii_lowercase().contains("safety")
                });
                if !justified {
                    out.push(self.finding(
                        file,
                        idx,
                        "`unsafe` without a `// SAFETY:` justification within 5 lines"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// panic-surface
// ---------------------------------------------------------------------

/// Panicking constructs are budgeted in non-test library code.
pub struct PanicSurface;

/// The panicking constructs the rule counts. `.expect(` is included:
/// the workspace's error contract (DESIGN.md §3d) is typed errors end
/// to end, and an expect on a lock or invariant still needs to be
/// visible debt.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

impl Rule for PanicSurface {
    fn name(&self) -> &'static str {
        "panic-surface"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! budget in non-test library code"
    }
    fn rationale(&self) -> &'static str {
        "Library code returns typed errors; panics belong to tests and \
         to deliberately-designed boundaries (the pool's panic \
         containment, the CLI panic shield). PR 4 hardened every layer \
         to uphold that contract, and the old verify.sh grep guarded \
         only bare `.unwrap()` — and could not see strings, comments, \
         or `#[cfg(test)]` regions. This rule counts `.unwrap()`, \
         `.expect(`, `panic!`, `unreachable!`, `todo!`, and \
         `unimplemented!` in non-test library code (the bench \
         experiment harness and examples are exempt). Existing sites \
         are baselined; new ones must justify themselves with an \
         `lsi-analyze: allow(panic-surface)` comment or use a typed \
         error."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !is_library_path(&file.rel_path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            for pat in PANIC_PATTERNS {
                for _ in find_word_starts(&line.code, pat) {
                    out.push(self.finding(
                        file,
                        idx,
                        format!("`{pat}` in non-test library code (return a typed error)"),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// float-safety
// ---------------------------------------------------------------------

/// NaN-unsafe float handling in scoring/ranking paths.
pub struct FloatSafety;

impl Rule for FloatSafety {
    fn name(&self) -> &'static str {
        "float-safety"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "float ==/!= comparisons and NaN-unsafe partial_cmp().unwrap()"
    }
    fn rationale(&self) -> &'static str {
        "Cosine scores, singular values, and convergence estimates are \
         all f64, and a NaN that reaches a comparator either panics \
         (`partial_cmp(..).unwrap()`) or silently scrambles a ranking \
         (`==` is never true for NaN). The query boundary guards \
         non-finite scores, but comparators must stay total anyway — \
         use `total_cmp`, or `partial_cmp(..).unwrap_or(Ordering::\
         Equal)` with an upstream finiteness guard. Direct `==`/`!=` \
         against float literals is flagged for review: exact-zero \
         tests on norms are legitimate, bit-equality on computed \
         values rarely is."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !is_library_path(&file.rel_path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.check_partial_cmp(file, &mut out);
        self.check_float_eq(file, &mut out);
        out
    }
}

impl FloatSafety {
    /// `partial_cmp(...)` whose result is immediately `.unwrap()`ed or
    /// `.expect(`ed — a NaN operand panics at ranking time.
    fn check_partial_cmp(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let (joined, starts) = file.lexed.joined_code();
        for start in find_word_starts(&joined, "partial_cmp") {
            let line_idx = crate::LexedFile::line_of_offset(&starts, start);
            if !file.is_lib_line(line_idx) {
                continue;
            }
            let bytes = joined.as_bytes();
            let mut i = start + "partial_cmp".len();
            // Opening paren (allow whitespace).
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if bytes.get(i) != Some(&b'(') {
                continue;
            }
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1;
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            let tail = &joined[i.min(joined.len())..];
            let sink = if tail.starts_with(".unwrap()") {
                Some("unwrap()")
            } else if tail.starts_with(".expect(") {
                Some("expect(..)")
            } else {
                None
            };
            if let Some(sink) = sink {
                out.push(self.finding(
                    file,
                    line_idx,
                    format!(
                        "NaN-unsafe `partial_cmp(..).{sink}` (use total_cmp or unwrap_or)"
                    ),
                ));
            }
        }
    }

    /// `==` / `!=` with a float literal on either side.
    fn check_float_eq(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            let bytes = line.code.as_bytes();
            for i in 0..bytes.len().saturating_sub(1) {
                // Byte-wise scan: both operator chars are ASCII, so a
                // match guarantees char-boundary-safe slicing below.
                let op = match (bytes[i], bytes[i + 1]) {
                    (b'=', b'=') => "==",
                    (b'!', b'=') => "!=",
                    _ => continue,
                };
                // Not part of a longer operator (`<=`, `>=`, `..=`,
                // or the tail of a previous `==`).
                if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!' | b'.') {
                    continue;
                }
                if bytes.get(i + 2) == Some(&b'=') {
                    continue;
                }
                let left = trailing_token(&line.code[..i]);
                let right = leading_token(&line.code[i + 2..]);
                if is_float_literal(left) || is_float_literal(right) {
                    out.push(self.finding(
                        file,
                        idx,
                        format!(
                            "float `{op}` comparison with `{}` (NaN-hostile; review or \
                             use an epsilon/finiteness guard)",
                            if is_float_literal(left) { left } else { right }
                        ),
                    ));
                }
            }
        }
    }
}

/// The operand token immediately before an operator.
fn trailing_token(s: &str) -> &str {
    let t = s.trim_end();
    let start = t
        .rfind(|c: char| !(is_ident(c) || c == '.' || c == ':'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &t[start..]
}

/// The operand token immediately after an operator.
fn leading_token(s: &str) -> &str {
    let t = s.trim_start();
    let mut end = 0;
    for (i, c) in t.char_indices() {
        if is_ident(c) || c == '.' || c == ':' || (i == 0 && c == '-') {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    &t[..end]
}

/// Does the token look like an f32/f64 value: `1.0`, `-0.5`, `1e-9`,
/// `f64::INFINITY`, `0.0f64`?
fn is_float_literal(token: &str) -> bool {
    let t = token.strip_prefix('-').unwrap_or(token);
    if t.starts_with("f64::") || t.starts_with("f32::") {
        return true;
    }
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        // Hex digits include `e`/`E`; never floats.
        return false;
    }
    // Digits with a decimal point (`1.0`, `3.`), or an exponent or
    // float suffix (`1e9` alone is integer-ish in Rust, but `1e9`
    // only parses as float — accept it).
    let has_dot = t.contains('.') && !t.contains("..");
    let has_exp = t.chars().any(|c| c == 'e' || c == 'E')
        && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-');
    let has_suffix = t.ends_with("f64") || t.ends_with("f32");
    has_dot || has_suffix || (has_exp && t.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

// ---------------------------------------------------------------------
// atomics-audit
// ---------------------------------------------------------------------

/// Every atomic memory-ordering choice must be justified in a comment.
pub struct AtomicsAudit;

/// Atomic `Ordering` variants (the `std::cmp::Ordering` variants are
/// `Less`/`Equal`/`Greater`, so comparator code never matches).
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How many lines above an ordering site a justifying comment may sit.
const ORDERING_COMMENT_WINDOW: usize = 3;

impl Rule for AtomicsAudit {
    fn name(&self) -> &'static str {
        "atomics-audit"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "every atomic Ordering:: site needs a justification comment"
    }
    fn rationale(&self) -> &'static str {
        "The pool's chunk-claiming cursor, its poison flag, and the \
         lsi-fault arming state are all hand-ordered atomics, and each \
         choice of Relaxed/Acquire/Release encodes an argument about \
         what the surrounding mutex or protocol already guarantees. \
         An uncommented ordering is unreviewable: nobody can tell a \
         deliberate Relaxed from a forgotten one. Each `Ordering::*` \
         site in non-test code must have a comment on the same line \
         or within the 3 lines above it explaining why the ordering \
         suffices."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            for pat in ATOMIC_ORDERINGS {
                for _ in find_word_starts(&line.code, pat) {
                    let lo = idx.saturating_sub(ORDERING_COMMENT_WINDOW);
                    let justified = file.lexed.lines[lo..=idx]
                        .iter()
                        .any(|l| l.has_comment());
                    if !justified {
                        out.push(self.finding(
                            file,
                            idx,
                            format!(
                                "`{pat}` without a justification comment within 3 lines"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// eprintln-lint
// ---------------------------------------------------------------------

/// Diagnostics must flow through lsi-obs events, not raw stderr.
pub struct EprintlnLint;

/// Raw-stderr (and debug-print) constructs the rule rejects.
const STDERR_PATTERNS: &[&str] = &["eprintln!", "eprint!", "dbg!"];

impl Rule for EprintlnLint {
    fn name(&self) -> &'static str {
        "eprintln-lint"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "diagnostics go through lsi-obs events, not bare eprintln!"
    }
    fn rationale(&self) -> &'static str {
        "The obs crate owns stderr: routing diagnostics through \
         lsi_obs::error!/warn!/info! gives them levels, RUST_LSI_LOG \
         filtering, and event counters, and keeps stdout clean for \
         program output. A bare `eprintln!` (or `eprint!`/`dbg!`) \
         bypasses all of that — PR 2 migrated every call site and the \
         old verify.sh grep kept new ones out; this rule is that grep, \
         made literal-aware. Only `crates/obs` itself and test code \
         may write stderr directly."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if file.rel_path.starts_with("crates/obs/") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            for pat in STDERR_PATTERNS {
                for _ in find_word_starts(&line.code, pat) {
                    out.push(self.finding(
                        file,
                        idx,
                        format!("`{pat}` outside lsi-obs (use lsi_obs::error!/warn!/info!)"),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// threshold-provenance
// ---------------------------------------------------------------------

/// Parallelism thresholds must cite the harness that calibrated them.
pub struct ThresholdProvenance;

/// Citation markers accepted in a threshold's doc comment (matched
/// case-insensitively).
const CITATION_MARKERS: &[&str] = &[
    "calibration",
    "cargo test",
    "cargo run",
    "perf_kernels",
    "harness",
    "measured",
];

impl Rule for ThresholdProvenance {
    fn name(&self) -> &'static str {
        "threshold-provenance"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "parallelism-threshold consts must cite their calibration harness"
    }
    fn rationale(&self) -> &'static str {
        "PR 3 recalibrated every parallelism threshold from \
         measurement — and the first cut at lower thresholds made \
         Lanczos *slower*, which only the retained calibration notes \
         explain. The convention since then: every `*_MIN_FLOPS`, \
         `*_MIN_ELEMS`, `*_THRESHOLD`, and `PAR_NNZ_*` const carries \
         a doc comment citing the harness command that produced its \
         value (e.g. `cargo test -p lsi-linalg --release --test \
         par_kernels -- --ignored`). This rule fails any such const \
         whose doc block is missing or cites nothing."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (idx, line) in file.lexed.lines.iter().enumerate() {
            if !file.is_lib_line(idx) {
                continue;
            }
            for start in find_word_starts(&line.code, "const ") {
                let rest = line.code[start + 6..].trim_start();
                let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if !is_threshold_name(&name) {
                    continue;
                }
                // Gather the contiguous doc block directly above.
                let mut docs = String::new();
                let mut k = idx;
                while k > 0 && file.lexed.lines[k - 1].doc_comment {
                    k -= 1;
                    docs.push_str(&file.lexed.lines[k].comment);
                    docs.push('\n');
                }
                let docs_lower = docs.to_ascii_lowercase();
                let cited = CITATION_MARKERS.iter().any(|m| docs_lower.contains(m));
                if !cited {
                    out.push(self.finding(
                        file,
                        idx,
                        format!(
                            "threshold const `{name}` lacks a calibration citation in \
                             its doc comment"
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// metric-naming
// ---------------------------------------------------------------------

/// Span and metric names must follow the dotted lowercase taxonomy.
pub struct MetricNaming;

/// Call patterns whose first string argument is a span/metric name.
/// The `usize` is the minimum number of dotted segments: metrics
/// follow `stage.metric.unit` (≥ 2), span paths may be a single
/// top-level stage (`build`, `query`).
const METRIC_CALL_PATTERNS: &[(&str, usize)] = &[
    ("lsi_obs::count(", 2),
    ("lsi_obs::observe(", 2),
    ("lsi_obs::gauge_set(", 2),
    ("lsi_obs::span(", 1),
    ("lsi_obs::record_phase(", 1),
    (".counter(", 2),
    (".gauge(", 2),
    (".histogram(", 2),
    (".record_span(", 1),
];

impl Rule for MetricNaming {
    fn name(&self) -> &'static str {
        "metric-naming"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "span/counter names must follow the dotted lowercase taxonomy"
    }
    fn rationale(&self) -> &'static str {
        "DESIGN.md §3b fixes the metric namespace: dotted lowercase \
         `stage.metric.unit` names (`query.time.us`, \
         `text.vocab.terms.count`) and dotted span paths (`build.svd.\
         lanczos`). Dashboards, the RunReport JSON diff tooling, and \
         RUST_LSI_TRACE span filters all key on these strings, so a \
         `camelCase` counter or a space in a span name is an interface \
         break that no type checker sees. This rule finds every \
         literal name passed to the lsi-obs entry points \
         (`count`/`observe`/`gauge_set`/`span`/`record_phase` and the \
         registry's `counter`/`gauge`/`histogram`/`record_span`) and \
         requires nonempty dot-separated segments of `[a-z0-9_]` — \
         `{}` format placeholders are allowed and treated as one \
         segment character. Dynamic (non-literal) names are not \
         checked."
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        // Join the aligned code and literal views so calls whose name
        // string sits on the next line are still seen.
        let (joined, starts) = file.lexed.joined_code();
        let mut joined_lit = String::new();
        for line in &file.lexed.lines {
            joined_lit.push_str(&line.literal);
            joined_lit.push('\n');
        }
        let mut out = Vec::new();
        for &(pat, min_segments) in METRIC_CALL_PATTERNS {
            for start in find_word_starts(&joined, pat) {
                let line_idx = crate::LexedFile::line_of_offset(&starts, start);
                if !file.is_lib_line(line_idx) {
                    continue;
                }
                let Some(name) = first_literal_arg(&joined, &joined_lit, start + pat.len())
                else {
                    continue; // dynamic name — out of scope
                };
                if let Err(why) = validate_metric_name(&name, min_segments) {
                    out.push(self.finding(
                        file,
                        line_idx,
                        format!(
                            "metric/span name \"{name}\" in `{pat}..)` {why} \
                             (DESIGN.md §3b: dotted lowercase `stage.metric.unit`)"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Starting at byte `from` (just past a call's opening paren), skip a
/// thin layer of argument plumbing — whitespace, `&`, `(`, `!`, `:`
/// and identifier characters, which covers `&format!("...")` and
/// `concat!("...")` — and return the content of the string literal the
/// argument opens with. `None` when the first argument is not (or does
/// not begin with) a string literal: a `,`, `)`, or `;` bails out.
fn first_literal_arg(code: &str, lit: &str, from: usize) -> Option<String> {
    let code_b = code.as_bytes();
    let lit_b = lit.as_bytes();
    let mut i = from;
    while i < code_b.len() {
        if lit_b.get(i) == Some(&b'"') {
            // Read the literal view up to the closing quote.
            let mut name = String::new();
            let mut j = i + 1;
            while j < lit_b.len() && lit_b[j] != b'"' {
                // Multi-byte chars appear verbatim in the literal
                // view; include them so validation can reject them.
                let c = lit[j..].chars().next()?;
                name.push(c);
                j += c.len_utf8();
            }
            return Some(name);
        }
        let c = code_b[i] as char;
        if c.is_whitespace() || matches!(c, '&' | '(' | '!' | ':') || is_ident(c) {
            i += 1;
        } else {
            return None;
        }
    }
    None
}

/// Check one name against the taxonomy: `{..}` placeholders collapse
/// to a plain segment character, then every dot-separated segment must
/// be nonempty `[a-z0-9_]`, with at least `min_segments` segments.
fn validate_metric_name(name: &str, min_segments: usize) -> Result<(), String> {
    // Collapse format placeholders (`{name}`, `{}`) to `x`: a
    // formatted name is conforming when its static skeleton is.
    let mut collapsed = String::new();
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    collapsed.push('x');
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => collapsed.push(c),
            _ => {}
        }
    }
    let segments: Vec<&str> = collapsed.split('.').collect();
    if segments.iter().any(|s| s.is_empty()) {
        return Err("has an empty dotted segment".to_string());
    }
    if segments.len() < min_segments {
        return Err(format!(
            "has {} segment(s), need at least {min_segments}",
            segments.len()
        ));
    }
    for seg in &segments {
        if let Some(bad) = seg
            .chars()
            .find(|&c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
        {
            return Err(format!("contains `{bad}` (allowed: a-z, 0-9, `_`, `.`)"));
        }
    }
    Ok(())
}

/// Names covered by the threshold-provenance convention.
fn is_threshold_name(name: &str) -> bool {
    !name.is_empty()
        && (name.ends_with("_MIN_FLOPS")
            || name.ends_with("_MIN_ELEMS")
            || name.ends_with("_THRESHOLD")
            || name.starts_with("PAR_NNZ_"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_stable() {
        let names: Vec<&str> = all_rules().iter().map(|r| r.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate rule name");
        assert!(rule_by_name("panic-surface").is_some());
        assert!(rule_by_name("no-such-rule").is_none());
    }

    #[test]
    fn float_literal_heuristic() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("-1.5"));
        assert!(is_float_literal("f64::INFINITY"));
        assert!(is_float_literal("2.5e9"));
        assert!(is_float_literal("1f64"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("count"));
        assert!(!is_float_literal(""));
        assert!(!is_float_literal("0..10"));
    }

    #[test]
    fn word_boundary_search() {
        assert_eq!(find_word_starts("eprintln!(x)", "eprint!").len(), 0);
        assert_eq!(find_word_starts("eprint!(x)", "eprint!").len(), 1);
        assert_eq!(find_word_starts("my_panic!(x)", "panic!").len(), 0);
        assert_eq!(find_word_starts("core::panic!(x)", "panic!").len(), 1);
    }
}
