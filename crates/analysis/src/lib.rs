//! `lsi-analyze` — in-repo static analysis for the LSI workspace.
//!
//! The workspace's correctness story rests on conventions that no
//! compiler checks: `unsafe` blocks carry `// SAFETY:` justifications,
//! library code returns typed errors instead of panicking, atomic
//! orderings cite why they are sufficient, diagnostics flow through
//! `lsi-obs` events, and every parallelism threshold documents the
//! calibration harness that produced it. Until this crate, two of
//! those conventions were enforced by shell greps in
//! `scripts/verify.sh` (which could not tell a call site from a string
//! literal or a doc example) and the rest by review alone.
//!
//! This crate replaces the greps with a token-aware analyzer:
//!
//! * [`lexer`] — a hand-rolled Rust lexer that masks comments and
//!   string/char literals out of the code view (and vice versa), and
//!   tracks `#[cfg(test)]` / `#[test]` item extents;
//! * [`rules`] — the rule catalog (six rules at present; DESIGN.md §3e
//!   documents each and how to add more);
//! * [`engine`] — workspace walking, the committed-baseline ratchet
//!   (`analysis_baseline.json`), and comparison logic.
//!
//! Pre-existing debt is *ratcheted*, not blocking: every finding is
//! compared against a committed per-`(rule, file)` baseline, and only
//! counts **above** the baseline fail the run. The baseline may shrink
//! over time (fix debt, regenerate with `--write-baseline`, commit the
//! smaller file) but must never grow — that is the ratchet.
//!
//! The `lsi-analyze` binary follows the workspace CLI convention:
//! exit 0 clean, 1 findings above baseline, 2 usage error; `--json`
//! emits the shared [`lsi_obs::RunReport`] schema.

pub mod engine;
pub mod graph;
pub mod graph_rules;
pub mod items;
pub mod lexer;
pub mod rules;

pub use engine::{analyze, compare, find_workspace_root, Analysis, Baseline, Comparison, Error, Gap};
pub use lexer::LexedFile;
pub use rules::{all_rules, rule_by_name, Rule};

/// How serious a finding is. The baseline ratchet gates on *any*
/// above-baseline finding regardless of severity; severity exists to
/// order triage (errors are invariant violations, warnings are
/// review-this flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A violated workspace invariant.
    Error,
    /// A pattern that needs justification or review.
    Warning,
}

impl Severity {
    /// Lowercase label used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (kebab-case, stable — baselines key on it).
    pub rule: &'static str,
    /// Triage severity.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A lexed source file plus the path context rules filter on.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel_path: String,
    /// Masked per-line views.
    pub lexed: LexedFile,
    /// Whole file is test code (lives under a `tests/` or `benches/`
    /// directory), so per-line `in_test` tracking is moot.
    pub test_file: bool,
}

impl SourceFile {
    /// Lex `src` as the file at `rel_path`.
    pub fn from_source(rel_path: &str, src: &str) -> SourceFile {
        let test_file = rel_path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches");
        SourceFile {
            rel_path: rel_path.to_string(),
            lexed: LexedFile::lex(src),
            test_file,
        }
    }

    /// Is line `idx` (0-based) non-test code this crate's library
    /// rules should look at?
    pub fn is_lib_line(&self, idx: usize) -> bool {
        !self.test_file && !self.lexed.lines[idx].in_test
    }
}
