//! Layer 3: interprocedural rules over the workspace call graph.
//!
//! These rules see the whole [`Workspace`] and its [`CallGraph`] at
//! once, unlike the per-file [`crate::rules::Rule`] catalog. They share
//! the same finding type, severity model, suppression comments, and
//! baseline ratchet; the engine runs them after the per-file pass.
//!
//! The catalog (DESIGN.md §3j documents each rule's model and its
//! known over/under-approximations):
//!
//! * `panic-reachability` — every `pub` library fn is classified by
//!   whether it can transitively reach an `unwrap`/`expect`/`panic!`/
//!   indexing site without passing a `catch_unwind` boundary, with a
//!   shortest witness path in the message. The serve path
//!   `handle_connection → query_top_batch` is a hard contract: panics
//!   there must be contained by the batcher's documented
//!   `catch_unwind`, so contract violations are errors.
//! * `unsafe-taint` — an `unsafe` block may only be reached through a
//!   SAFETY-documented wrapper fn; undocumented wrappers are flagged at
//!   the wrapper *and* at every call site that reaches them, and `pub
//!   unsafe fn` without a safety doc is flagged directly.
//! * `atomics-pairing` — a `Release` store must have a matching
//!   `Acquire`/`AcqRel` load on the same receiver name somewhere in
//!   the workspace, and vice versa (`SeqCst` satisfies both sides).
//!   Unpaired sides are flagged at each site.

use std::collections::BTreeMap;

use crate::graph::{CallGraph, Workspace};
use crate::rules::is_library_path;
use crate::{Finding, Severity};

/// A workspace-level rule. Mirrors [`crate::rules::Rule`] but checks
/// the parsed workspace and call graph instead of one file.
pub trait GraphRule {
    /// Stable kebab-case identifier (baseline key, `--explain` arg).
    fn name(&self) -> &'static str;
    /// Severity attached to this rule's findings (contract violations
    /// may escalate per finding).
    fn severity(&self) -> Severity;
    /// One-line summary for rule listings.
    fn summary(&self) -> &'static str;
    /// The full rationale printed by `--explain`.
    fn rationale(&self) -> &'static str;
    /// Run the rule over the workspace.
    fn check(&self, ws: &Workspace, graph: &CallGraph) -> Vec<Finding>;
}

/// The graph-rule catalog, in execution order.
pub fn all_graph_rules() -> Vec<Box<dyn GraphRule>> {
    vec![
        Box::new(PanicReachability),
        Box::new(UnsafeTaint),
        Box::new(AtomicsPairing),
    ]
}

/// Look up a graph rule by its kebab-case name.
pub fn graph_rule_by_name(name: &str) -> Option<Box<dyn GraphRule>> {
    all_graph_rules().into_iter().find(|r| r.name() == name)
}

// ---------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------

/// Classify every `pub` library fn by transitive panic reachability.
pub struct PanicReachability;

impl GraphRule for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn summary(&self) -> &'static str {
        "pub API fns must not transitively reach uncontained panic sites"
    }

    fn rationale(&self) -> &'static str {
        "The per-file panic-surface rule sees only direct panic sites; a pub fn \
that merely *calls* something which unwraps presents the same crash surface \
to callers. This rule propagates panic sites backwards over the call graph, \
stopping at catch_unwind boundaries, and flags every pub library fn that can \
still reach one — with a shortest witness path so the finding is actionable. \
The warning tier tracks the explicit panic family (unwrap/expect/panic!/ \
assert/unreachable/todo); slice indexing joins only for the serve contract, \
because bounds-checked indexing is pervasive and intentional in the kernels. The serve path is a hard contract: \
handle_connection must not reach any uncontained panic, and every route from \
it to query_top_batch must pass through the batcher's documented catch_unwind \
(those violations are errors, not warnings). Resolution is heuristic \
(DESIGN.md §3j): trait-method calls over-approximate to any impl, unresolved \
names under-approximate to no edge."
    }

    fn check(&self, ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
        // Two reachability passes: the warning tier tracks only the
        // explicit panic family (unwrap/expect/panic!/...) — indexing
        // is bounds-checked-by-design all over the numeric kernels —
        // while the serve contract keeps indexing in scope, because an
        // out-of-bounds in request handling is exactly the crash the
        // contract exists to rule out.
        let explicit = graph.panic_reach_filtered(ws, false);
        let full = graph.panic_reach(ws);
        let mut findings = Vec::new();

        // Warning tier: pub library fns that can reach a panic.
        for (id, node) in graph.nodes.iter().enumerate() {
            let wf = &ws.files[node.file];
            let f = &wf.items.fns[node.item];
            if !f.is_pub
                || f.in_test
                || wf.source.test_file
                || !f.has_body
                || !is_library_path(&wf.source.rel_path)
                || !explicit.reachable[id]
            {
                continue;
            }
            findings.push(Finding {
                rule: self.name(),
                severity: Severity::Warning,
                file: wf.source.rel_path.clone(),
                line: f.line,
                message: format!(
                    "pub fn `{}` can reach a panic: {}",
                    f.name,
                    graph.witness(ws, &explicit, id)
                ),
            });
        }

        // Error tier: the serve contract.
        for &entry in &graph.find_fn(ws, "handle_connection", Some("crates/serve")) {
            let node = &graph.nodes[entry];
            let wf = &ws.files[node.file];
            let f = &wf.items.fns[node.item];
            if full.reachable[entry] {
                findings.push(Finding {
                    rule: self.name(),
                    severity: Severity::Error,
                    file: wf.source.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "serve contract: `handle_connection` reaches an uncontained \
panic: {}",
                        graph.witness(ws, &full, entry)
                    ),
                });
            }
            let fwd = graph.forward_reachable(entry);
            for &target in &graph.find_fn(ws, "query_top_batch", None) {
                if fwd[target] {
                    findings.push(Finding {
                        rule: self.name(),
                        severity: Severity::Error,
                        file: wf.source.rel_path.clone(),
                        line: f.line,
                        message: "serve contract: `handle_connection` reaches \
`query_top_batch` without passing the batcher's catch_unwind boundary"
                            .to_string(),
                    });
                }
            }
        }
        findings
    }
}

// ---------------------------------------------------------------------
// unsafe-taint
// ---------------------------------------------------------------------

/// Unsafe blocks are only reachable through SAFETY-documented wrappers.
pub struct UnsafeTaint;

impl GraphRule for UnsafeTaint {
    fn name(&self) -> &'static str {
        "unsafe-taint"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn summary(&self) -> &'static str {
        "unsafe blocks must sit behind SAFETY-documented wrapper fns"
    }

    fn rationale(&self) -> &'static str {
        "The per-file unsafe-audit rule checks that each unsafe block carries a \
nearby SAFETY comment; this rule checks the *interprocedural* discipline: a fn \
containing an unsafe block is a wrapper, and the wrapper itself must state its \
safety contract (a SAFETY comment in its doc or body). An undocumented wrapper \
is flagged at its definition and at every library call site that reaches it — \
the taint view — because callers have no stated contract to uphold. A `pub \
unsafe fn` without a safety doc is flagged directly: it exports an obligation \
it never states."
    }

    fn check(&self, ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut undocumented = vec![false; graph.nodes.len()];

        for (id, node) in graph.nodes.iter().enumerate() {
            let wf = &ws.files[node.file];
            let f = &wf.items.fns[node.item];
            if f.in_test || wf.source.test_file || !is_library_path(&wf.source.rel_path) {
                continue;
            }
            if (f.has_unsafe_block || f.is_unsafe) && !f.has_safety_comment {
                undocumented[id] = true;
                let kind = if f.is_unsafe {
                    "unsafe fn"
                } else {
                    "fn with unsafe block"
                };
                findings.push(Finding {
                    rule: self.name(),
                    severity: Severity::Warning,
                    file: wf.source.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "{kind} `{}` states no SAFETY contract for its callers",
                        f.name
                    ),
                });
            }
        }

        // Taint the callers: every library call site that reaches an
        // undocumented wrapper inherits an unstated obligation.
        for e in &graph.edges {
            if !undocumented[e.to] {
                continue;
            }
            let caller = &graph.nodes[e.from];
            let wf = &ws.files[caller.file];
            let f = &wf.items.fns[caller.item];
            if f.in_test || wf.source.test_file || !is_library_path(&wf.source.rel_path) {
                continue;
            }
            let callee = &ws.files[graph.nodes[e.to].file].items.fns[graph.nodes[e.to].item];
            findings.push(Finding {
                rule: self.name(),
                severity: Severity::Warning,
                file: wf.source.rel_path.clone(),
                line: e.line,
                message: format!(
                    "`{}` calls `{}`, which wraps unsafe code without a stated \
SAFETY contract",
                    f.name, callee.name
                ),
            });
        }
        findings
    }
}

// ---------------------------------------------------------------------
// atomics-pairing
// ---------------------------------------------------------------------

/// Release stores need Acquire loads on the same receiver, and back.
pub struct AtomicsPairing;

/// Which side(s) of a release/acquire pairing an ordering provides.
fn sides(op: &str, orderings: &[String]) -> (bool, bool) {
    // (provides_release, provides_acquire). Stores/RMWs publish with
    // Release; loads/RMWs observe with Acquire. SeqCst and AcqRel
    // provide whichever side(s) the operation can carry.
    let is_store = op == "store";
    let is_load = op == "load";
    let mut release = false;
    let mut acquire = false;
    for o in orderings {
        match o.as_str() {
            "Release" => release = !is_load,
            "Acquire" => acquire = !is_store,
            "AcqRel" => {
                release = true;
                acquire = true;
            }
            "SeqCst" => {
                release = !is_load;
                acquire = !is_store;
            }
            _ => {}
        }
    }
    (release, acquire)
}

impl GraphRule for AtomicsPairing {
    fn name(&self) -> &'static str {
        "atomics-pairing"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn summary(&self) -> &'static str {
        "Release stores must pair with Acquire loads workspace-wide"
    }

    fn rationale(&self) -> &'static str {
        "A Release store creates a happens-before edge only when some thread \
performs an Acquire (or AcqRel/SeqCst) load of the *same* atomic; a Release \
store whose every observer loads Relaxed publishes nothing, and an Acquire \
load with no Release store to observe orders nothing. The per-file \
atomics-audit rule checks each site's comment in isolation; this rule groups \
sites by receiver name across the whole workspace (field and variable names \
are the resolution heuristic — DESIGN.md §3j) and flags any release side with \
no acquire counterpart or vice versa, at every unpaired site. Relaxed-only \
receivers (counters) are fine and not flagged."
    }

    fn check(&self, ws: &Workspace, _graph: &CallGraph) -> Vec<Finding> {
        // receiver -> (has_release, has_acquire, sites)
        type Sites = Vec<(usize, usize, bool, bool)>; // (file, line, rel, acq)
        let mut by_receiver: BTreeMap<String, Sites> = BTreeMap::new();
        for (fi, wf) in ws.files.iter().enumerate() {
            if wf.source.test_file || !is_library_path(&wf.source.rel_path) {
                continue;
            }
            for site in &wf.items.atomics {
                if site.in_test {
                    continue;
                }
                let (rel, acq) = sides(&site.op, &site.orderings);
                by_receiver
                    .entry(site.receiver.clone())
                    .or_default()
                    .push((fi, site.line, rel, acq));
            }
        }
        let mut findings = Vec::new();
        for (receiver, sites) in &by_receiver {
            let has_release = sites.iter().any(|&(_, _, rel, _)| rel);
            let has_acquire = sites.iter().any(|&(_, _, _, acq)| acq);
            for &(fi, line, rel, acq) in sites {
                let msg = if rel && !has_acquire {
                    format!(
                        "Release ordering on `{receiver}` has no Acquire/AcqRel \
load anywhere in the workspace"
                    )
                } else if acq && !has_release {
                    format!(
                        "Acquire ordering on `{receiver}` has no Release/AcqRel \
store anywhere in the workspace"
                    )
                } else {
                    continue;
                };
                findings.push(Finding {
                    rule: self.name(),
                    severity: Severity::Warning,
                    file: ws.files[fi].source.rel_path.clone(),
                    line,
                    message: msg,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: &dyn GraphRule, entries: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(entries);
        let graph = CallGraph::build(&ws);
        rule.check(&ws, &graph)
    }

    #[test]
    fn transitive_panic_is_flagged_with_witness() {
        let findings = run(
            &PanicReachability,
            &[(
                "crates/a/src/lib.rs",
                "pub fn api() { inner(); }\nfn inner() { let v: Vec<u8> = Vec::new(); v.get(0).unwrap(); }\n",
            )],
        );
        let api: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains("`api`"))
            .collect();
        assert_eq!(api.len(), 1);
        assert!(api[0].message.contains("api → inner"), "{}", api[0].message);
    }

    #[test]
    fn contained_panic_is_not_flagged() {
        let findings = run(
            &PanicReachability,
            &[(
                "crates/a/src/lib.rs",
                "use std::panic::catch_unwind;\n\
                 pub fn api() { let _ = catch_unwind(|| inner()); }\n\
                 fn inner() { panic!(\"x\"); }\n",
            )],
        );
        assert!(
            !findings.iter().any(|f| f.message.contains("`api`")),
            "{findings:?}"
        );
    }

    #[test]
    fn undocumented_wrapper_taints_callers() {
        let findings = run(
            &UnsafeTaint,
            &[(
                "crates/a/src/lib.rs",
                "pub fn caller() { wrapper(); }\n\
                 fn wrapper() { unsafe { std::hint::unreachable_unchecked() } }\n",
            )],
        );
        assert!(findings.iter().any(|f| f.message.contains("`wrapper`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("`caller` calls `wrapper`")));
    }

    #[test]
    fn documented_wrapper_is_clean() {
        let findings = run(
            &UnsafeTaint,
            &[(
                "crates/a/src/lib.rs",
                "pub fn caller() { wrapper(); }\n\
                 fn wrapper() {\n    // SAFETY: the buffer is always non-empty here.\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
            )],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unpaired_release_store_is_flagged() {
        let findings = run(
            &AtomicsPairing,
            &[(
                "crates/a/src/lib.rs",
                "use std::sync::atomic::{AtomicBool, Ordering};\n\
                 pub fn publish(flag: &AtomicBool) { flag.store(true, Ordering::Release); }\n\
                 pub fn observe(flag: &AtomicBool) -> bool { flag.load(Ordering::Relaxed) }\n",
            )],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no Acquire"));
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let findings = run(
            &AtomicsPairing,
            &[(
                "crates/a/src/lib.rs",
                "use std::sync::atomic::{AtomicBool, Ordering};\n\
                 pub fn publish(flag: &AtomicBool) { flag.store(true, Ordering::Release); }\n\
                 pub fn observe(flag: &AtomicBool) -> bool { flag.load(Ordering::Acquire) }\n",
            )],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
