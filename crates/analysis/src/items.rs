//! Layer 1 of the interprocedural pipeline (DESIGN.md §3j): a
//! lightweight item parser on top of the lexer.
//!
//! The per-line rules in [`crate::rules`] see one masked line at a
//! time; the interprocedural rules in [`crate::graph_rules`] need to
//! know *which function* a pattern lives in and *who calls whom*. This
//! module recovers exactly that much structure from the masked code
//! view — no types, no expressions, no full grammar:
//!
//! * `mod` / `impl` / `trait` / `fn` nesting with brace matching (the
//!   angle-bracket-aware [`crate::lexer::scan_item_end`] keeps
//!   const-generic braces out of the accounting);
//! * per-`fn` metadata: visibility, `unsafe` markers, body extent,
//!   SAFETY-comment presence;
//! * call sites inside each body — free-function paths, `.method(`
//!   receivers, and macro invocations (recorded opaquely: a macro is
//!   a name, never an edge);
//! * panic sites (`unwrap`/`expect`/panic-family macros/indexing) and
//!   whether each sits inside a `catch_unwind(...)` argument;
//! * atomic operations with their `Ordering` arguments and receiver
//!   field/static name (for the atomics-pairing rule);
//! * `use` aliases, so the call-graph builder can resolve imported
//!   names.
//!
//! Everything here is heuristic by design. The recall/precision
//! trade-offs (what a missing edge or a spurious edge costs) are
//! documented per-rule in DESIGN.md §3j.

use crate::lexer::{scan_item_end, skip_attributes, ItemEnd};
use crate::SourceFile;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written: `["helper"]`, `["batcher", "run"]`,
    /// `["Self", "new"]`. For method calls, the single method name.
    pub path: Vec<String>,
    /// `.name(` receiver call.
    pub method: bool,
    /// The method receiver is literally `self` (`self.name(..)`),
    /// which pins resolution to the caller's own impl type.
    pub self_receiver: bool,
    /// `name!(` — recorded opaquely, never resolved to an edge.
    pub macro_call: bool,
    /// 1-based source line.
    pub line: usize,
    /// Inside the argument of a `catch_unwind(...)` call: panics
    /// beyond this point are contained by that boundary.
    pub contained: bool,
}

/// A construct that can panic, attributed to its enclosing function.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What was found: a pattern from the panic family (`.unwrap()`,
    /// `panic!`, ...) or `"index"` for `expr[...]` indexing.
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Inside a `catch_unwind(...)` argument.
    pub contained: bool,
}

/// One atomic memory operation with an explicit `Ordering` argument.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Last identifier of the receiver chain: the field name for
    /// `self.poisoned.store(..)`, the static name for `STOP.load(..)`.
    pub receiver: String,
    /// Operation name: `store`, `load`, `swap`, `fetch_add`, ...
    pub op: String,
    /// Ordering words found in the argument list (`Release`,
    /// `Acquire`, `AcqRel`, `SeqCst`, `Relaxed`).
    pub orderings: Vec<String>,
    /// 1-based source line.
    pub line: usize,
    /// The site is test code (test file or `#[cfg(test)]` region).
    pub in_test: bool,
}

/// A `use` alias: local name → full path segments.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// The name visible in this file.
    pub alias: String,
    /// The full imported path, e.g. `["lsi_core", "LsiModel"]`.
    pub path: Vec<String>,
}

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Enclosing module path within the file (`""` at file scope,
    /// `"imp"` inside `mod imp { .. }`).
    pub module: String,
    /// Simplified self type when defined in an `impl`/`trait` block
    /// (last path segment, generics stripped).
    pub self_type: Option<String>,
    /// Trait being implemented, when `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (or the `;`).
    pub end_line: usize,
    /// `pub` without a visibility restriction (`pub(crate)` is not
    /// public API).
    pub is_pub: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Body contains at least one `unsafe` keyword.
    pub has_unsafe_block: bool,
    /// A comment containing `SAFETY` appears in the doc window above
    /// the signature or anywhere in the body extent.
    pub has_safety_comment: bool,
    /// Has a `{ .. }` body (trait/extern declarations do not).
    pub has_body: bool,
    /// The function's own line is test code.
    pub in_test: bool,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// Body extent as char offsets into the joined code view.
    pub(crate) body: Option<(usize, usize)>,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// `use` aliases.
    pub uses: Vec<UseAlias>,
    /// Atomic operations (file-scoped: the pairing rule is site-based,
    /// not graph-based).
    pub atomics: Vec<AtomicSite>,
}

/// The panic family searched for by the parser (kept in sync with the
/// per-line `panic-surface` rule).
pub const PANIC_FAMILY: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Words that look like `name(` but are never calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "in", "as", "fn", "impl", "mod", "use",
    "where", "unsafe", "move", "else", "break", "continue", "let", "pub", "crate", "super",
    "self", "dyn", "ref", "mut", "box", "type", "struct", "enum", "union", "trait", "static",
    "const", "async", "await", "yield",
];

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Scope-stack entry during the structural scan.
enum Scope {
    /// `mod name { .. }`
    Mod(String),
    /// `impl [Trait for] Type { .. }` or `trait Name { .. }`
    Impl {
        self_type: Option<String>,
        trait_name: Option<String>,
    },
    /// Any other `{ .. }` (fn bodies, blocks, struct literals, ...).
    Other,
}

/// Parse one lexed file into items, call sites, and atomic sites.
pub fn parse_file(file: &SourceFile) -> FileItems {
    let mut chars: Vec<char> = Vec::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (idx, line) in file.lexed.lines.iter().enumerate() {
        for c in line.code.chars() {
            chars.push(c);
            line_of.push(idx);
        }
        chars.push('\n');
        line_of.push(idx);
    }
    let n = chars.len();

    let mut items = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut last_boundary = 0usize;
    let mut i = 0usize;

    // Pass 1: structural scan — mod/impl/trait/fn nesting.
    while i < n {
        let c = chars[i];
        if c == '{' {
            scopes.push(Scope::Other);
            i += 1;
            last_boundary = i;
            continue;
        }
        if c == '}' {
            scopes.pop();
            i += 1;
            last_boundary = i;
            continue;
        }
        if c == ';' {
            i += 1;
            last_boundary = i;
            continue;
        }
        if !is_ident_start(c) {
            i += 1;
            continue;
        }
        let (word, end) = read_word(&chars, i);
        match word.as_str() {
            "mod" => {
                if let Some((name, after)) = read_ident_fwd(&chars, end) {
                    let j = skip_ws(&chars, after);
                    if chars.get(j) == Some(&'{') {
                        scopes.push(Scope::Mod(name));
                        i = j + 1;
                        last_boundary = i;
                        continue;
                    }
                    i = after;
                    last_boundary = i;
                    continue;
                }
                i = end;
            }
            // Scan from the keyword itself so the angle-bracket
            // heuristic sees an identifier before any leading `<`.
            "impl" | "trait" => match scan_item_end(&chars, i) {
                Some(ItemEnd::Body { open, .. }) => {
                    let header: String = chars[end..open].iter().collect();
                    let (self_type, trait_name) = if word == "trait" {
                        let name = header
                            .trim()
                            .chars()
                            .take_while(|&c| is_ident(c))
                            .collect::<String>();
                        let name = (!name.is_empty()).then_some(name);
                        (name.clone(), name)
                    } else {
                        parse_impl_header(&header)
                    };
                    scopes.push(Scope::Impl {
                        self_type,
                        trait_name,
                    });
                    i = open + 1;
                    last_boundary = i;
                }
                Some(ItemEnd::Semi(p)) => {
                    i = p + 1;
                    last_boundary = i;
                }
                None => {
                    i = end;
                }
            },
            "fn" => {
                let Some((name, after)) = read_ident_fwd(&chars, end) else {
                    // `fn(usize) -> T` function-pointer type.
                    i = end;
                    continue;
                };
                let hdr_start = skip_attributes(&chars, last_boundary).min(i);
                let header: String = chars[hdr_start..i].iter().collect();
                let (is_pub, is_unsafe) = fn_modifiers(&header);
                let def_line = line_of[i.min(n - 1)];
                let module = scopes
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m) => Some(m.as_str()),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
                    .join("::");
                // Innermost impl frame, unless an intervening `Other`
                // chain came from a nested fn body — close enough: a
                // fn nested inside a method still reports the impl
                // type, which only widens method-name fallback.
                let (self_type, trait_name) = scopes
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        Scope::Impl {
                            self_type,
                            trait_name,
                        } => Some((self_type.clone(), trait_name.clone())),
                        _ => None,
                    })
                    .unwrap_or((None, None));
                let in_test =
                    file.test_file || file.lexed.lines[def_line].in_test;
                match scan_item_end(&chars, i) {
                    Some(ItemEnd::Body { open, close }) => {
                        items.fns.push(FnItem {
                            name,
                            module,
                            self_type,
                            trait_name,
                            line: def_line + 1,
                            end_line: line_of[close.min(n - 1)] + 1,
                            is_pub,
                            is_unsafe,
                            has_unsafe_block: false,
                            has_safety_comment: false,
                            has_body: true,
                            in_test,
                            calls: Vec::new(),
                            panics: Vec::new(),
                            body: Some((open, close)),
                        });
                        scopes.push(Scope::Other);
                        i = open + 1;
                        last_boundary = i;
                    }
                    Some(ItemEnd::Semi(p)) => {
                        items.fns.push(FnItem {
                            name,
                            module,
                            self_type,
                            trait_name,
                            line: def_line + 1,
                            end_line: line_of[p.min(n - 1)] + 1,
                            is_pub,
                            is_unsafe,
                            has_unsafe_block: false,
                            has_safety_comment: false,
                            has_body: false,
                            in_test,
                            calls: Vec::new(),
                            panics: Vec::new(),
                            body: None,
                        });
                        i = p + 1;
                        last_boundary = i;
                    }
                    None => {
                        i = after;
                    }
                }
            }
            "use" => {
                let mut j = end;
                while j < n && chars[j] != ';' {
                    j += 1;
                }
                let text: String = chars[end..j.min(n)].iter().collect();
                parse_use_tree(&[], text.trim(), &mut items.uses);
                i = j.saturating_add(1).min(n);
                last_boundary = i;
            }
            _ => {
                i = end;
            }
        }
    }

    // Pass 2: site extraction over the whole file, attributed to the
    // innermost enclosing fn.
    let containments = catch_unwind_regions(&chars);
    let contained = |off: usize| containments.iter().any(|&(lo, hi)| off > lo && off < hi);
    let bodies: Vec<Option<(usize, usize)>> = items.fns.iter().map(|f| f.body).collect();
    let owner = move |off: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, body) in bodies.iter().enumerate() {
            if let Some((open, close)) = *body {
                if off > open && off < close {
                    match best {
                        Some(b) if bodies[b].is_some_and(|(o, _)| o >= open) => {}
                        _ => best = Some(k),
                    }
                }
            }
        }
        best
    };

    for call in extract_calls(&chars, &line_of) {
        if let Some(k) = owner(call.0) {
            let mut site = call.1;
            site.contained = contained(call.0);
            items.fns[k].calls.push(site);
        }
    }
    for (off, what, line) in extract_panics(&chars, &line_of) {
        if let Some(k) = owner(off) {
            items.fns[k].panics.push(PanicSite {
                what,
                line,
                contained: contained(off),
            });
        }
    }
    for (off, site) in extract_atomics(&chars, &line_of, file) {
        let _ = off;
        items.atomics.push(site);
    }

    // Per-fn derived flags: unsafe blocks and SAFETY comments.
    for f in &mut items.fns {
        if let Some((open, close)) = f.body {
            f.has_unsafe_block = has_keyword(&chars[open..close], "unsafe");
        }
        // SAFETY text counts inside the fn's own extent, or in the
        // contiguous comment/attribute block directly above the
        // signature (doc `# Safety` sections, plain `// SAFETY:` lines
        // between attributes and the keyword). A *body* comment of the
        // previous fn cannot leak in: its closing `}` line has real
        // code and breaks the contiguity the walk requires.
        let def = f.line - 1;
        let hi = (f.end_line - 1).min(file.lexed.lines.len() - 1);
        let mut has = file.lexed.lines[def..=hi]
            .iter()
            .any(|l| l.comment.to_ascii_lowercase().contains("safety"));
        let mut k = def;
        while !has && k > 0 {
            let prev = &file.lexed.lines[k - 1];
            let code = prev.code.trim();
            let attached = prev.doc_comment
                || code.starts_with('#')
                || (code.is_empty() && !prev.comment.trim().is_empty());
            if !attached {
                break;
            }
            k -= 1;
            has = file.lexed.lines[k]
                .comment
                .to_ascii_lowercase()
                .contains("safety");
        }
        f.has_safety_comment = has;
    }
    items
}

/// Read the identifier word starting at `i`; returns (word, end).
fn read_word(chars: &[char], i: usize) -> (String, usize) {
    let mut j = i;
    while j < chars.len() && is_ident(chars[j]) {
        j += 1;
    }
    (chars[i..j].iter().collect(), j)
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

/// Skip whitespace forward, then read an identifier; `None` when the
/// next token is not an identifier.
fn read_ident_fwd(chars: &[char], i: usize) -> Option<(String, usize)> {
    let j = skip_ws(chars, i);
    if j < chars.len() && is_ident_start(chars[j]) {
        let (w, end) = read_word(chars, j);
        Some((w, end))
    } else {
        None
    }
}

/// Read the identifier ending just before `end` (exclusive), walking
/// backwards. Returns (start, word); the word may be empty.
fn read_ident_back(chars: &[char], end: usize) -> (usize, String) {
    let mut start = end;
    while start > 0 && is_ident(chars[start - 1]) {
        start -= 1;
    }
    (start, chars[start..end].iter().collect())
}

/// Index of the previous non-whitespace char before `i`, if any.
fn prev_non_ws(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !chars[j].is_whitespace() {
            return Some(j);
        }
    }
    None
}

/// `pub` / `unsafe` detection in a fn header prefix. `pub(crate)` and
/// friends are visibility-restricted and not public API.
fn fn_modifiers(header: &str) -> (bool, bool) {
    let mut is_pub = false;
    let mut is_unsafe = false;
    let bytes: Vec<char> = header.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_start(bytes[i]) {
            let (w, end) = read_word(&bytes, i);
            match w.as_str() {
                "pub" => {
                    let j = skip_ws(&bytes, end);
                    is_pub = bytes.get(j) != Some(&'(');
                }
                "unsafe" => is_unsafe = true,
                _ => {}
            }
            i = end;
        } else {
            i += 1;
        }
    }
    (is_pub, is_unsafe)
}

/// Split an `impl` header (text between `impl` and the body `{`) into
/// (self type, trait), both simplified to a last path segment.
fn parse_impl_header(header: &str) -> (Option<String>, Option<String>) {
    let chars: Vec<char> = header.chars().collect();
    let mut i = skip_ws(&chars, 0);
    // Leading generic parameters.
    if chars.get(i) == Some(&'<') {
        let mut ad = 1usize;
        i += 1;
        let mut prev = '<';
        while i < chars.len() && ad > 0 {
            match chars[i] {
                '<' if is_ident(prev) || prev == '>' || prev == ':' => ad += 1,
                '>' if prev != '-' && prev != '=' => ad -= 1,
                _ => {}
            }
            if !chars[i].is_whitespace() {
                prev = chars[i];
            }
            i += 1;
        }
    }
    let rest: String = chars[i.min(chars.len())..].iter().collect();
    let rest = cut_at_word(&rest, "where");
    match find_top_level_word(rest, "for") {
        Some(pos) => {
            let trait_part = simplify_type(&rest[..pos]);
            let type_part = simplify_type(&rest[pos + 3..]);
            (type_part, trait_part)
        }
        None => (simplify_type(rest), None),
    }
}

/// Truncate `s` at the first word-boundary occurrence of `word`.
fn cut_at_word<'a>(s: &'a str, word: &str) -> &'a str {
    match find_top_level_word(s, word) {
        Some(pos) => &s[..pos],
        None => s,
    }
}

/// Byte offset of `word` in `s` at angle-bracket depth 0, with ident
/// boundaries on both sides.
fn find_top_level_word(s: &str, word: &str) -> Option<usize> {
    let chars: Vec<char> = s.chars().collect();
    let w: Vec<char> = word.chars().collect();
    let mut ad = 0usize;
    let mut prev = ' ';
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '<' if is_ident(prev) || prev == '>' || prev == ':' => ad += 1,
            '>' if ad > 0 && prev != '-' && prev != '=' => ad -= 1,
            _ => {}
        }
        if ad == 0
            && chars[i..].starts_with(&w[..])
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + w.len()).map_or(true, |&c| !is_ident(c))
        {
            // Byte offset for slicing: chars up to i are ASCII in
            // masked code in practice, but recompute to stay correct.
            let byte: usize = chars[..i].iter().map(|c| c.len_utf8()).sum();
            return Some(byte);
        }
        if !c.is_whitespace() {
            prev = c;
        }
        i += 1;
    }
    None
}

/// Reduce a type expression to its last path segment: `&mut
/// lsi_core::model::LsiModel<'a>` → `LsiModel`.
fn simplify_type(s: &str) -> Option<String> {
    let mut t = s.trim();
    loop {
        let before = t;
        t = t
            .trim_start_matches('&')
            .trim_start_matches("'static")
            .trim_start();
        for kw in ["mut ", "dyn ", "impl "] {
            t = t.trim_start_matches(kw).trim_start();
        }
        if t == before {
            break;
        }
    }
    let t = t.split('<').next().unwrap_or(t).trim();
    let t = t.rsplit("::").next().unwrap_or(t).trim();
    let name: String = t.chars().take_while(|&c| is_ident(c)).collect();
    (!name.is_empty() && name.chars().next().is_some_and(is_ident_start)).then_some(name)
}

/// Parse one `use` tree (text after the `use` keyword, `;` stripped),
/// expanding groups and `as` renames into flat aliases.
fn parse_use_tree(prefix: &[String], s: &str, out: &mut Vec<UseAlias>) {
    let s = s.trim();
    if s.is_empty() || s == "*" {
        return;
    }
    // Group: `path::{a, b::c, d as e}` (or a bare `{...}` after
    // recursion).
    if let Some(brace) = find_top_level_char(s, '{') {
        let head = s[..brace].trim().trim_end_matches("::");
        let mut new_prefix: Vec<String> = prefix.to_vec();
        new_prefix.extend(split_path(head));
        let inner = s[brace + 1..].trim().trim_end_matches('}');
        for part in split_top_level_commas(inner) {
            parse_use_tree(&new_prefix, part, out);
        }
        return;
    }
    if let Some(aspos) = find_top_level_word(s, "as") {
        let alias = s[aspos + 2..].trim();
        let mut path: Vec<String> = prefix.to_vec();
        path.extend(split_path(s[..aspos].trim()));
        if !alias.is_empty() && !path.is_empty() {
            out.push(UseAlias {
                alias: alias.to_string(),
                path,
            });
        }
        return;
    }
    let mut path: Vec<String> = prefix.to_vec();
    path.extend(split_path(s));
    if let Some(last) = path.last().cloned() {
        if last == "self" {
            path.pop();
            if let Some(real_last) = path.last().cloned() {
                out.push(UseAlias {
                    alias: real_last,
                    path,
                });
            }
            return;
        }
        out.push(UseAlias { alias: last, path });
    }
}

fn split_path(s: &str) -> Vec<String> {
    s.split("::")
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty() && p != "*")
        .collect()
}

/// First `ch` at brace depth 0.
fn find_top_level_char(s: &str, ch: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        if c == '{' {
            if depth == 0 && c == ch {
                return Some(i);
            }
            depth += 1;
        } else if c == '}' {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && c == ch {
            return Some(i);
        }
    }
    None
}

/// Split on commas at brace depth 0.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Does the char slice contain `word` with ident boundaries?
fn has_keyword(chars: &[char], word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    let mut i = 0;
    while i + w.len() <= chars.len() {
        if chars[i..].starts_with(&w[..])
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + w.len()).map_or(true, |&c| !is_ident(c))
        {
            return true;
        }
        i += 1;
    }
    false
}

/// All char offsets where `pat` occurs (no boundary handling).
fn find_all(chars: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    if p.is_empty() {
        return out;
    }
    let mut i = 0;
    while i + p.len() <= chars.len() {
        if chars[i] == p[0] && chars[i..].starts_with(&p[..]) {
            out.push(i);
            i += 1;
        } else {
            i += 1;
        }
    }
    out
}

/// The extents of every `catch_unwind(...)` argument list.
fn catch_unwind_regions(chars: &[char]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for start in find_all(chars, "catch_unwind") {
        if start > 0 && is_ident(chars[start - 1]) {
            continue;
        }
        let after = start + "catch_unwind".len();
        if chars.get(after).is_some_and(|&c| is_ident(c)) {
            continue;
        }
        let open = skip_ws(chars, after);
        if chars.get(open) != Some(&'(') {
            continue;
        }
        let mut depth = 1usize;
        let mut i = open + 1;
        while i < chars.len() && depth > 0 {
            match chars[i] {
                '(' => depth += 1,
                ')' => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        out.push((open, i));
    }
    out
}

/// Extract every call-looking site: `(offset, site)` pairs.
fn extract_calls(chars: &[char], line_of: &[usize]) -> Vec<(usize, CallSite)> {
    let mut out = Vec::new();
    let n = chars.len();
    for i in 0..n {
        if chars[i] != '(' {
            continue;
        }
        let Some(j) = prev_non_ws(chars, i) else {
            continue;
        };
        let line = line_of[i] + 1;
        // Macro invocation: `name!(`.
        if chars[j] == '!' {
            let (_, name) = read_ident_back(chars, j);
            if !name.is_empty() {
                out.push((
                    i,
                    CallSite {
                        path: vec![name],
                        method: false,
                        self_receiver: false,
                        macro_call: true,
                        line,
                        contained: false,
                    },
                ));
            }
            continue;
        }
        // Turbofish: `name::<T>(` — unwind the angle group first.
        let mut end = j + 1;
        if chars[j] == '>' {
            let mut ad = 1usize;
            let mut k = j;
            while k > 0 && ad > 0 {
                k -= 1;
                match chars[k] {
                    '>' => ad += 1,
                    '<' => ad -= 1,
                    _ => {}
                }
            }
            if ad != 0 || k < 2 || chars[k - 1] != ':' || chars[k - 2] != ':' {
                continue;
            }
            end = k - 2;
        }
        if end == 0 || !is_ident(chars[end - 1]) {
            continue;
        }
        let (mut start, name) = read_ident_back(chars, end);
        if name.is_empty()
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
            || NON_CALL_WORDS.contains(&name.as_str())
        {
            continue;
        }
        let mut path = vec![name];
        while start >= 2 && chars[start - 1] == ':' && chars[start - 2] == ':' {
            let (s2, seg) = read_ident_back(chars, start - 2);
            if seg.is_empty() {
                break;
            }
            path.insert(0, seg);
            start = s2;
        }
        let method = start > 0 && chars[start - 1] == '.';
        let self_receiver = method && {
            let (_, recv) = read_ident_back(chars, start - 1);
            recv == "self"
        };
        if !method {
            // `fn name(` is a definition, not a call.
            if let Some(p) = prev_non_ws(chars, start) {
                if is_ident(chars[p]) {
                    let (_, w) = read_ident_back(chars, p + 1);
                    if w == "fn" {
                        continue;
                    }
                }
            }
        }
        out.push((
            i,
            CallSite {
                path,
                method,
                self_receiver,
                macro_call: false,
                line,
                contained: false,
            },
        ));
    }
    out
}

/// Extract panic sites: `(offset, what, line)`.
fn extract_panics(chars: &[char], line_of: &[usize]) -> Vec<(usize, String, usize)> {
    let mut out = Vec::new();
    for pat in PANIC_FAMILY {
        let ident_start = pat.chars().next().is_some_and(is_ident_start);
        for off in find_all(chars, pat) {
            if ident_start && off > 0 && is_ident(chars[off - 1]) {
                continue;
            }
            out.push((off, (*pat).to_string(), line_of[off] + 1));
        }
    }
    // Indexing: `expr[...]` — `[` directly after an identifier char,
    // `)`, or `]` is an index (or slice) expression; array types and
    // attributes are preceded by punctuation instead.
    for (i, &c) in chars.iter().enumerate() {
        if c == '['
            && i > 0
            && (is_ident(chars[i - 1]) || chars[i - 1] == ')' || chars[i - 1] == ']')
        {
            out.push((i, "index".to_string(), line_of[i] + 1));
        }
    }
    out.sort_by_key(|&(off, _, _)| off);
    out
}

/// The atomic operations whose argument lists carry `Ordering`s.
const ATOMIC_OPS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERING_WORDS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Extract atomic operations with explicit orderings.
fn extract_atomics(
    chars: &[char],
    line_of: &[usize],
    file: &SourceFile,
) -> Vec<(usize, AtomicSite)> {
    let mut out = Vec::new();
    for op in ATOMIC_OPS {
        let pat = format!(".{op}(");
        for off in find_all(chars, &pat) {
            // Word boundary after the op name is the `(` itself.
            let open = off + pat.len() - 1;
            let mut depth = 1usize;
            let mut i = open + 1;
            while i < chars.len() && depth > 0 {
                match chars[i] {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            let args: String = chars[open + 1..i.saturating_sub(1).max(open + 1)]
                .iter()
                .collect();
            let orderings: Vec<String> = ORDERING_WORDS
                .iter()
                .filter(|w| has_word_str(&args, w))
                .map(|w| (*w).to_string())
                .collect();
            if orderings.is_empty() {
                // `.load()` on something that is not an atomic, or an
                // ordering passed through a variable — out of scope.
                continue;
            }
            let Some(receiver) = receiver_ident(chars, off) else {
                continue;
            };
            let idx = line_of[off];
            out.push((
                off,
                AtomicSite {
                    receiver,
                    op: (*op).to_string(),
                    orderings,
                    line: idx + 1,
                    in_test: file.test_file || file.lexed.lines[idx].in_test,
                },
            ));
        }
    }
    out.sort_by_key(|&(off, _)| off);
    out
}

fn has_word_str(hay: &str, word: &str) -> bool {
    let chars: Vec<char> = hay.chars().collect();
    has_keyword(&chars, word)
}

/// The last identifier of the receiver chain before a `.op(` at
/// `dot`: `self.poisoned` → `poisoned`, `STOP` → `STOP`,
/// `self.state().flag` → `flag`.
fn receiver_ident(chars: &[char], dot: usize) -> Option<String> {
    let j = prev_non_ws(chars, dot)?;
    match chars[j] {
        c if is_ident(c) => {
            let (_, w) = read_ident_back(chars, j + 1);
            (!w.is_empty()).then_some(w)
        }
        ')' | ']' => {
            // Skip the group backwards, then name the method/ident
            // before it.
            let (open, close) = if chars[j] == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 1usize;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                if chars[k] == close {
                    depth += 1;
                } else if chars[k] == open {
                    depth -= 1;
                }
            }
            let (_, w) = read_ident_back(chars, k);
            (!w.is_empty()).then_some(w)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_file(&SourceFile::from_source("crates/x/src/lib.rs", src))
    }

    #[test]
    fn recovers_fn_extents_and_visibility() {
        let src = "pub fn api() -> usize { helper() }\n\
                   fn helper() -> usize { 1 }\n\
                   pub(crate) unsafe fn scary() {}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 3);
        assert!(items.fns[0].is_pub);
        assert_eq!(items.fns[0].line, 1);
        assert!(!items.fns[1].is_pub);
        assert!(!items.fns[2].is_pub, "pub(crate) is not public API");
        assert!(items.fns[2].is_unsafe);
    }

    #[test]
    fn methods_carry_their_impl_type_and_trait() {
        let src = "struct S;\nimpl S {\n    fn new() -> S { S }\n}\n\
                   impl Drop for S {\n    fn drop(&mut self) {}\n}\n";
        let items = parse(src);
        let new = items.fns.iter().find(|f| f.name == "new").unwrap();
        assert_eq!(new.self_type.as_deref(), Some("S"));
        assert_eq!(new.trait_name, None);
        let drop = items.fns.iter().find(|f| f.name == "drop").unwrap();
        assert_eq!(drop.self_type.as_deref(), Some("S"));
        assert_eq!(drop.trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn nested_modules_build_the_module_path() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn mid() {}\n}\n";
        let items = parse(src);
        let deep = items.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module, "outer::inner");
        let mid = items.fns.iter().find(|f| f.name == "mid").unwrap();
        assert_eq!(mid.module, "outer");
    }

    #[test]
    fn calls_are_attributed_to_the_innermost_fn() {
        let src = "fn outer() {\n    fn inner() { deep_call(); }\n    outer_call();\n}\n";
        let items = parse(src);
        let outer = items.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> =
            outer.calls.iter().map(|c| c.path[0].as_str()).collect();
        assert!(outer_calls.contains(&"outer_call"));
        assert!(!outer_calls.contains(&"deep_call"));
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].path, ["deep_call"]);
    }

    #[test]
    fn call_kinds_free_method_macro_path() {
        let src = "fn f(v: Vec<u8>) {\n    helper(1);\n    v.push(2);\n    log!(\"x\");\n    \
                   module::target(3);\n    iter.collect::<Vec<u8>>();\n}\n";
        let items = parse(src);
        let f = &items.fns[0];
        let call = |name: &str| f.calls.iter().find(|c| c.path.last().unwrap() == name);
        assert!(call("helper").is_some_and(|c| !c.method && !c.macro_call));
        assert!(call("push").is_some_and(|c| c.method));
        assert!(call("log").is_some_and(|c| c.macro_call));
        assert!(call("target").is_some_and(|c| c.path == ["module", "target"]));
        assert!(call("collect").is_some_and(|c| c.method), "turbofish method");
        assert!(call("f").is_none(), "definitions are not calls");
    }

    #[test]
    fn panic_sites_and_catch_unwind_containment() {
        let src = "fn risky(v: Vec<u8>, i: usize) -> u8 {\n    let x = v.first().unwrap();\n    \
                   let _ = std::panic::catch_unwind(|| inner_risk().expect(\"m\"));\n    v[i]\n}\n";
        let items = parse(src);
        let f = &items.fns[0];
        let unwrap = f.panics.iter().find(|p| p.what == ".unwrap()").unwrap();
        assert!(!unwrap.contained);
        let expect = f.panics.iter().find(|p| p.what == ".expect(").unwrap();
        assert!(expect.contained, "inside catch_unwind argument");
        let index = f.panics.iter().find(|p| p.what == "index").unwrap();
        assert!(!index.contained);
        assert_eq!(index.line, 4);
        let inner = f.calls.iter().find(|c| c.path == ["inner_risk"]).unwrap();
        assert!(inner.contained);
    }

    #[test]
    fn indexing_heuristic_skips_types_and_attributes() {
        let src = "#[derive(Debug)]\nstruct W { buf: [u8; 16] }\n\
                   fn f(w: &W, i: usize) -> u8 { let s: &[u8] = &w.buf; s[i] }\n";
        let items = parse(src);
        let f = items.fns.iter().find(|f| f.name == "f").unwrap();
        let idx: Vec<_> = f.panics.iter().filter(|p| p.what == "index").collect();
        assert_eq!(idx.len(), 1, "only `s[i]` is an index expression");
    }

    #[test]
    fn atomics_with_orderings_and_receivers() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                   static STOP: AtomicBool = AtomicBool::new(false);\n\
                   struct P { poisoned: AtomicBool }\n\
                   impl P {\n    fn set(&self) { self.poisoned.store(true, Ordering::Release); }\n    \
                   fn get(&self) -> bool { self.poisoned.load(Ordering::Acquire) }\n}\n\
                   fn stop() { STOP.store(true, Ordering::SeqCst); }\n\
                   fn not_atomic(v: &mut Vec<u8>) { v.swap(0, 1); }\n";
        let items = parse(src);
        assert_eq!(items.atomics.len(), 3, "plain Vec::swap has no Ordering");
        assert_eq!(items.atomics[0].receiver, "poisoned");
        assert_eq!(items.atomics[0].orderings, ["Release"]);
        assert_eq!(items.atomics[1].receiver, "poisoned");
        assert_eq!(items.atomics[1].op, "load");
        assert_eq!(items.atomics[2].receiver, "STOP");
    }

    #[test]
    fn use_aliases_flatten_groups_and_renames() {
        let src = "use lsi_core::LsiModel;\n\
                   use std::panic::{catch_unwind, AssertUnwindSafe};\n\
                   use lsi_obs::metrics::Histogram as Hist;\n\
                   use crate::batcher::{self, Queue};\n";
        let items = parse(src);
        let find = |a: &str| items.uses.iter().find(|u| u.alias == a);
        assert_eq!(find("LsiModel").unwrap().path, ["lsi_core", "LsiModel"]);
        assert_eq!(find("catch_unwind").unwrap().path, ["std", "panic", "catch_unwind"]);
        assert_eq!(find("Hist").unwrap().path, ["lsi_obs", "metrics", "Histogram"]);
        assert_eq!(find("batcher").unwrap().path, ["crate", "batcher"]);
        assert_eq!(find("Queue").unwrap().path, ["crate", "batcher", "Queue"]);
    }

    #[test]
    fn unsafe_blocks_and_safety_comments_are_flagged() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller checks bounds.\n\
                   pub unsafe fn raw(p: *const u8) -> u8 { *p }\n\
                   fn wrapper(x: &[u8]) -> u8 {\n    // SAFETY: bounds checked above.\n    \
                   unsafe { raw(x.as_ptr()) }\n}\n\
                   fn bare(x: &[u8]) -> u8 {\n    unsafe { raw(x.as_ptr()) }\n}\n";
        let items = parse(src);
        let raw = items.fns.iter().find(|f| f.name == "raw").unwrap();
        assert!(raw.is_unsafe && raw.has_safety_comment);
        let wrapper = items.fns.iter().find(|f| f.name == "wrapper").unwrap();
        assert!(wrapper.has_unsafe_block && wrapper.has_safety_comment);
        let bare = items.fns.iter().find(|f| f.name == "bare").unwrap();
        assert!(bare.has_unsafe_block && !bare.has_safety_comment);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n";
        let items = parse(src);
        assert!(!items.fns.iter().find(|f| f.name == "lib").unwrap().in_test);
        assert!(items.fns.iter().find(|f| f.name == "t").unwrap().in_test);
    }

    #[test]
    fn const_generic_braces_do_not_derail_fn_extents() {
        let src = "fn generic<const N: usize, B: Buf<{ N * 2 }>>(b: B) -> usize {\n    \
                   measure(b)\n}\nfn after() { tail(); }\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].calls.len(), 1);
        assert_eq!(items.fns[0].calls[0].path, ["measure"]);
        assert_eq!(items.fns[1].calls[0].path, ["tail"]);
    }
}
