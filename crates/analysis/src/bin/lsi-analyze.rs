//! `lsi-analyze` — run the workspace's static-analysis rules.
//!
//! ```text
//! usage: lsi-analyze [--ci] [--json] [--write-baseline]
//!                    [--baseline <path>] [--root <path>]
//!                    [--explain <rule>] [--list-rules]
//!                    [--graph <dot|json>]
//!
//! exit codes (the workspace CLI convention):
//!   0  clean — no findings above the committed baseline
//!   1  findings above baseline (details on stdout)
//!   2  usage error
//! ```
//!
//! Default mode prints every finding plus a per-rule summary table;
//! `--ci` prints only what fails the ratchet (the mode verify.sh
//! runs); `--json` emits the shared RunReport schema instead.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lsi_analyze::graph_rules::{all_graph_rules, graph_rule_by_name};
use lsi_analyze::{all_rules, analyze, compare, engine, find_workspace_root, rule_by_name};
use lsi_analyze::{Analysis, Baseline, Comparison};
use lsi_obs::{Json, RunReport};

const USAGE: &str = "usage: lsi-analyze [--ci] [--json] [--write-baseline] \
[--baseline <path>] [--root <path>] [--explain <rule>] [--list-rules] \
[--graph <dot|json>]";

struct Options {
    ci: bool,
    json: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    explain: Option<String>,
    list_rules: bool,
    graph: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        ci: false,
        json: false,
        write_baseline: false,
        baseline: None,
        root: None,
        explain: None,
        list_rules: false,
        graph: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a path")?,
                ));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            "--explain" => {
                opts.explain = Some(it.next().ok_or("--explain needs a rule name")?.clone());
            }
            "--list-rules" => opts.list_rules = true,
            "--graph" => {
                let fmt = it.next().ok_or("--graph needs a format (dot|json)")?;
                if fmt != "dot" && fmt != "json" {
                    return Err(format!("--graph format must be dot or json, got `{fmt}`"));
                }
                opts.graph = Some(fmt.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other => match other.strip_prefix("--graph=") {
                Some(fmt @ ("dot" | "json")) => opts.graph = Some(fmt.to_string()),
                Some(fmt) => {
                    return Err(format!("--graph format must be dot or json, got `{fmt}`"))
                }
                None => return Err(format!("unknown argument `{other}`")),
            },
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            // --help: the usage text is the program output.
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            lsi_obs::error!("lsi-analyze: {msg}");
            lsi_obs::error!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (name, severity, summary) in rule_rows() {
            println!("{name:<22} {severity:<8} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &opts.explain {
        return explain(name);
    }

    let root = match find_workspace_root(opts.root.clone()) {
        Ok(root) => root,
        Err(e) => {
            lsi_obs::error!("lsi-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    // Pure graph export: no rules, no baseline, exit 0.
    if let Some(fmt) = &opts.graph {
        let (ws, graph) = match engine::build_graph(&root) {
            Ok(pair) => pair,
            Err(e) => {
                lsi_obs::error!("lsi-analyze: {e}");
                return ExitCode::from(2);
            }
        };
        match fmt.as_str() {
            "dot" => print!("{}", graph.to_dot(&ws)),
            _ => print!("{}", graph.to_json(&ws).to_string_pretty()),
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(engine::BASELINE_FILE));

    let t0 = Instant::now();
    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            lsi_obs::error!("lsi-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    if opts.write_baseline {
        let new = Baseline::from_analysis(&analysis);
        if let Err(e) = new.save(&baseline_path) {
            lsi_obs::error!("lsi-analyze: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings across {} (rule, file) pairs) — commit only shrinkage",
            baseline_path.display(),
            analysis.findings.len(),
            new.counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            lsi_obs::error!("lsi-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let cmp = compare(&analysis, &baseline);

    if opts.json {
        print!("{}", report_json(&analysis, &cmp, &baseline, elapsed).to_string_pretty());
    } else {
        print_human(&analysis, &cmp, &baseline, opts.ci, elapsed);
    }
    if cmp.over.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// `(name, severity, summary)` for every rule, per-file then graph.
fn rule_rows() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut rows: Vec<(&'static str, &'static str, &'static str)> = all_rules()
        .iter()
        .map(|r| (r.name(), r.severity().as_str(), r.summary()))
        .collect();
    rows.extend(
        all_graph_rules()
            .iter()
            .map(|r| (r.name(), r.severity().as_str(), r.summary())),
    );
    rows
}

fn explain(name: &str) -> ExitCode {
    let found = match (rule_by_name(name), graph_rule_by_name(name)) {
        (Some(rule), _) => Some((
            rule.name(),
            rule.severity().as_str(),
            rule.summary(),
            rule.rationale(),
        )),
        (None, Some(rule)) => Some((
            rule.name(),
            rule.severity().as_str(),
            rule.summary(),
            rule.rationale(),
        )),
        (None, None) => None,
    };
    match found {
        Some((name, severity, summary, rationale)) => {
            println!("{name} ({severity})");
            println!("  {summary}");
            println!();
            for line in wrap(rationale, 72) {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = rule_rows().iter().map(|(n, _, _)| *n).collect();
            lsi_obs::error!(
                "lsi-analyze: unknown rule `{name}` (known: {})",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

/// Minimal greedy word wrap for `--explain` output.
fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

fn print_human(
    analysis: &Analysis,
    cmp: &Comparison,
    baseline: &Baseline,
    ci: bool,
    elapsed: f64,
) {
    // In --ci mode only the pairs that fail the ratchet are itemized;
    // the full listing is the interactive default.
    if ci {
        for gap in &cmp.over {
            println!(
                "ABOVE BASELINE: [{}] {} — {} findings (baseline allows {})",
                gap.rule, gap.file, gap.current, gap.baseline
            );
            for f in &analysis.findings {
                if f.rule == gap.rule && f.file == gap.file {
                    println!("  {}:{}: {} {}", f.file, f.line, f.severity.as_str(), f.message);
                }
            }
        }
    } else {
        for f in &analysis.findings {
            println!(
                "{}:{}: {} [{}] {}",
                f.file,
                f.line,
                f.severity.as_str(),
                f.rule,
                f.message
            );
        }
    }

    // Per-rule summary.
    println!("rules:");
    println!(
        "  {:<22} {:>8} {:>10} {:>15}",
        "rule", "findings", "baselined", "above-baseline"
    );
    for (name, _, _) in rule_rows() {
        let total = analysis.findings.iter().filter(|f| f.rule == name).count() as u64;
        let over: u64 = cmp
            .over
            .iter()
            .filter(|g| g.rule == name)
            .map(|g| g.current - g.baseline)
            .sum();
        println!("  {:<22} {:>8} {:>10} {:>15}", name, total, total - over, over);
    }
    println!(
        "scanned {} files, {} lines in {:.3}s (call graph: {} nodes, {} edges, {:.3}s)",
        analysis.files_scanned,
        analysis.lines_scanned,
        elapsed,
        analysis.graph_nodes,
        analysis.graph_edges,
        analysis.graph_build_secs
    );
    if !baseline.exists {
        println!("note: no {} found — every finding counts as above baseline", engine::BASELINE_FILE);
    }
    if !cmp.under.is_empty() {
        let paid: u64 = cmp.under.iter().map(|g| g.baseline - g.current).sum();
        println!(
            "ratchet: {} baselined finding(s) paid down across {} (rule, file) pair(s) — \
             run `lsi-analyze --write-baseline` and commit the smaller baseline",
            paid,
            cmp.under.len()
        );
    }
    let over_total: u64 = cmp.over.iter().map(|g| g.current - g.baseline).sum();
    if over_total == 0 {
        println!("lsi-analyze: OK ({} findings, all baselined)", analysis.findings.len());
    } else {
        println!(
            "lsi-analyze: FAIL — {over_total} finding(s) above baseline (fix them or add \
             an `lsi-analyze: allow(<rule>)` justification; never grow the baseline)"
        );
    }
}

fn report_json(
    analysis: &Analysis,
    cmp: &Comparison,
    baseline: &Baseline,
    elapsed: f64,
) -> Json {
    let mut report = RunReport::new("lsi-analyze");
    report.result("files_scanned", Json::Num(analysis.files_scanned as f64));
    report.result("lines_scanned", Json::Num(analysis.lines_scanned as f64));
    report.result("findings_total", Json::Num(analysis.findings.len() as f64));
    let over_total: u64 = cmp.over.iter().map(|g| g.current - g.baseline).sum();
    report.result("findings_above_baseline", Json::Num(over_total as f64));
    report.result(
        "baseline_pairs",
        Json::Num(baseline.counts.len() as f64),
    );
    report.result("elapsed_secs", Json::Num(elapsed));
    report.result("graph_nodes", Json::Num(analysis.graph_nodes as f64));
    report.result("graph_edges", Json::Num(analysis.graph_edges as f64));
    report.result("graph_build_secs", Json::Num(analysis.graph_build_secs));
    let mut per_rule = Vec::new();
    for (name, severity, _) in rule_rows() {
        let total = analysis.findings.iter().filter(|f| f.rule == name).count() as f64;
        let over: u64 = cmp
            .over
            .iter()
            .filter(|g| g.rule == name)
            .map(|g| g.current - g.baseline)
            .sum();
        per_rule.push((
            name.to_string(),
            Json::obj(vec![
                ("severity", Json::Str(severity.to_string())),
                ("findings", Json::Num(total)),
                ("above_baseline", Json::Num(over as f64)),
            ]),
        ));
    }
    report.result("rules", Json::Obj(per_rule));
    let findings: Vec<Json> = analysis
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("file", Json::Str(f.file.clone())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::Str(f.rule.to_string())),
                ("severity", Json::Str(f.severity.as_str().to_string())),
                ("message", Json::Str(f.message.clone())),
            ])
        })
        .collect();
    report.result("findings", Json::Arr(findings));
    report.snapshot = lsi_obs::snapshot();
    report.to_json()
}
