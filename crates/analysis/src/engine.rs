//! Workspace walking, the baseline ratchet, and run orchestration.
//!
//! The engine walks every `.rs` file under `crates/`, `src/`,
//! `examples/`, and `vendor/rayon/` (the one vendored crate with real
//! code in it — the other vendor stubs are API shims), runs every rule
//! over the lexed files, and compares per-`(rule, file)` finding
//! counts against the committed `analysis_baseline.json`.
//!
//! **The ratchet:** a finding count *at or below* its baseline entry is
//! pre-existing debt and passes; a count *above* fails. The baseline
//! may only shrink — fix debt, run `lsi-analyze --write-baseline`,
//! commit the smaller file. Growing it to admit new debt defeats the
//! tool and will be caught in review (the file is small and diffable
//! on purpose).
//!
//! **Suppression:** a justified permanent exception carries an
//! `lsi-analyze: allow(<rule>)` comment on the finding's line or the
//! line above; suppressed findings never appear and never count.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lsi_obs::Json;

use crate::graph::{CallGraph, Workspace};
use crate::graph_rules::all_graph_rules;
use crate::rules::all_rules;
use crate::{Finding, SourceFile};

/// Directories (relative to the workspace root) the analyzer walks.
pub const WALK_ROOTS: &[&str] = &["crates", "src", "examples", "vendor/rayon"];

/// The committed baseline's file name at the workspace root.
pub const BASELINE_FILE: &str = "analysis_baseline.json";

/// Errors from the engine (I/O, malformed baseline, lost root).
#[derive(Debug)]
pub enum Error {
    /// Reading a file or directory failed.
    Io {
        /// What was being read.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// No workspace root found walking up from `start`.
    RootNotFound {
        /// Where the search started.
        start: PathBuf,
    },
    /// The baseline file exists but cannot be used.
    Baseline {
        /// The baseline path.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            Error::RootNotFound { start } => write!(
                f,
                "no workspace root (Cargo.toml + crates/) found walking up from {}",
                start.display()
            ),
            Error::Baseline { path, message } => {
                write!(f, "bad baseline {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The result of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Every (unsuppressed) finding, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Total source lines lexed.
    pub lines_scanned: usize,
    /// Call-graph nodes (one per parsed `fn`).
    pub graph_nodes: usize,
    /// Resolved call edges.
    pub graph_edges: usize,
    /// Wall time of the interprocedural pass (parse + graph + rules).
    pub graph_build_secs: f64,
}

impl Analysis {
    /// Finding counts keyed by `(rule, file)`.
    pub fn counts(&self) -> BTreeMap<(String, String), u64> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
        }
        map
    }
}

/// Locate the workspace root: the nearest ancestor of `start` (or the
/// current directory) containing both `Cargo.toml` and a `crates/`
/// directory.
pub fn find_workspace_root(start: Option<PathBuf>) -> Result<PathBuf, Error> {
    let origin = match start {
        Some(p) => p,
        None => std::env::current_dir().map_err(|source| Error::Io {
            path: PathBuf::from("."),
            source,
        })?,
    };
    let mut dir = origin.clone();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(Error::RootNotFound { start: origin });
        }
    }
}

/// Collect every `.rs` file under the walk roots, sorted for
/// deterministic reports and baselines. `target/` and dot-directories
/// are skipped.
pub fn walk_workspace(root: &Path) -> Result<Vec<PathBuf>, Error> {
    let mut files = Vec::new();
    for sub in WALK_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_dir(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), Error> {
    let entries = std::fs::read_dir(dir).map_err(|source| Error::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| Error::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read and lex every workspace file, sorted by relative path.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, Error> {
    let mut sources = Vec::new();
    for path in walk_workspace(root)? {
        let src = std::fs::read_to_string(&path).map_err(|source| Error::Io {
            path: path.clone(),
            source,
        })?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push(SourceFile::from_source(&rel, &src));
    }
    Ok(sources)
}

/// Parse the workspace and build its call graph — the `--graph` export
/// path, and the interprocedural half of [`analyze`].
pub fn build_graph(root: &Path) -> Result<(Workspace, CallGraph), Error> {
    let sources = load_sources(root)?;
    let lib_names = Workspace::detect_lib_names(root);
    let ws = Workspace::from_source_files(sources, lib_names);
    let graph = CallGraph::build(&ws);
    Ok((ws, graph))
}

/// Run every rule over every workspace file, then the interprocedural
/// rules over the call graph. Findings suppressed by an `lsi-analyze:
/// allow(<rule>)` comment (same line or the line above) are dropped
/// here — graph findings honour the same comments.
pub fn analyze(root: &Path) -> Result<Analysis, Error> {
    let _span = lsi_obs::span("analyze");
    let rules = all_rules();
    let mut analysis = Analysis::default();
    let sources = load_sources(root)?;
    for file in &sources {
        analysis.files_scanned += 1;
        analysis.lines_scanned += file.lexed.lines.len();
        for rule in &rules {
            let found = rule.check(file);
            analysis
                .findings
                .extend(found.into_iter().filter(|f| !is_suppressed(file, f)));
        }
    }

    // Interprocedural pass: the sources are already lexed, so this
    // reparses nothing — items, graph, and the three graph rules.
    let t0 = std::time::Instant::now();
    let lib_names = Workspace::detect_lib_names(root);
    let ws = Workspace::from_source_files(sources, lib_names);
    let graph = CallGraph::build(&ws);
    analysis.graph_nodes = graph.nodes.len();
    analysis.graph_edges = graph.edges.len();
    let by_path: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, wf)| (wf.source.rel_path.as_str(), i))
        .collect();
    for rule in all_graph_rules() {
        for f in rule.check(&ws, &graph) {
            let keep = match by_path.get(f.file.as_str()) {
                Some(&i) => !is_suppressed(&ws.files[i].source, &f),
                None => true,
            };
            if keep {
                analysis.findings.push(f);
            }
        }
    }
    analysis.graph_build_secs = t0.elapsed().as_secs_f64();

    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    lsi_obs::count("analyze.files.count", analysis.files_scanned as u64);
    lsi_obs::count("analyze.lines.count", analysis.lines_scanned as u64);
    lsi_obs::count("analyze.graph.nodes.count", analysis.graph_nodes as u64);
    lsi_obs::count("analyze.graph.edges.count", analysis.graph_edges as u64);
    for f in &analysis.findings {
        lsi_obs::count(&format!("analyze.findings.{}.count", f.rule), 1);
    }
    Ok(analysis)
}

/// Check the finding's line and the line above for an
/// `lsi-analyze: allow(<rule>)` suppression comment.
fn is_suppressed(file: &SourceFile, finding: &Finding) -> bool {
    let marker = format!("lsi-analyze: allow({})", finding.rule);
    let idx = finding.line - 1;
    let lo = idx.saturating_sub(1);
    file.lexed.lines[lo..=idx]
        .iter()
        .any(|l| l.comment.contains(&marker))
}

/// The committed per-`(rule, file)` debt ledger.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// `(rule, file) -> allowed count`.
    pub counts: BTreeMap<(String, String), u64>,
    /// Whether a baseline file was actually present on disk.
    pub exists: bool,
}

impl Baseline {
    /// Load from `path`; a missing file yields an empty baseline (so
    /// every finding is above baseline — the bootstrap state).
    pub fn load(path: &Path) -> Result<Baseline, Error> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let json = lsi_obs::parse_json(&text).map_err(|e| Error::Baseline {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let counts_node = json.get("counts").ok_or_else(|| Error::Baseline {
            path: path.to_path_buf(),
            message: "missing `counts` object".to_string(),
        })?;
        let mut counts = BTreeMap::new();
        if let Json::Obj(rules) = counts_node {
            for (rule, files) in rules {
                if let Json::Obj(entries) = files {
                    for (file, n) in entries {
                        let n = n.as_f64().unwrap_or(0.0);
                        if n > 0.0 {
                            counts.insert((rule.clone(), file.clone()), n as u64);
                        }
                    }
                }
            }
        } else {
            return Err(Error::Baseline {
                path: path.to_path_buf(),
                message: "`counts` is not an object".to_string(),
            });
        }
        Ok(Baseline {
            counts,
            exists: true,
        })
    }

    /// Serialize the ledger (`{"version": 1, "counts": {rule: {file:
    /// n}}}`), keys sorted so the committed file is diffable.
    pub fn to_json(&self) -> Json {
        let mut by_rule: BTreeMap<&str, Vec<(String, Json)>> = BTreeMap::new();
        for ((rule, file), n) in &self.counts {
            by_rule
                .entry(rule)
                .or_default()
                .push((file.clone(), Json::Num(*n as f64)));
        }
        let rules: Vec<(String, Json)> = by_rule
            .into_iter()
            .map(|(rule, files)| (rule.to_string(), Json::Obj(files)))
            .collect();
        Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("counts", Json::Obj(rules)),
        ])
    }

    /// Build a baseline that exactly absorbs `analysis`.
    pub fn from_analysis(analysis: &Analysis) -> Baseline {
        Baseline {
            counts: analysis.counts(),
            exists: true,
        }
    }

    /// Write to `path` (pretty, trailing newline — the repo JSON
    /// style).
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        std::fs::write(path, self.to_json().to_string_pretty()).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })
    }
}

/// One `(rule, file)` pair whose current count differs from baseline.
#[derive(Debug, Clone)]
pub struct Gap {
    /// Rule name.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Count in this run.
    pub current: u64,
    /// Count the baseline allows.
    pub baseline: u64,
}

/// Current counts versus the ratchet.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Pairs over baseline — these fail the run.
    pub over: Vec<Gap>,
    /// Pairs under baseline — debt was paid down; the baseline should
    /// be regenerated and committed smaller (never a failure).
    pub under: Vec<Gap>,
    /// Total findings at or below baseline (pre-existing debt).
    pub baselined: u64,
}

/// Compare a run against the committed baseline.
pub fn compare(analysis: &Analysis, baseline: &Baseline) -> Comparison {
    let current = analysis.counts();
    let mut cmp = Comparison::default();
    for ((rule, file), &cur) in &current {
        let base = baseline
            .counts
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if cur > base {
            cmp.over.push(Gap {
                rule: rule.clone(),
                file: file.clone(),
                current: cur,
                baseline: base,
            });
            cmp.baselined += base;
        } else {
            cmp.baselined += cur;
            if cur < base {
                cmp.under.push(Gap {
                    rule: rule.clone(),
                    file: file.clone(),
                    current: cur,
                    baseline: base,
                });
            }
        }
    }
    // Baseline entries for pairs that no longer produce findings at
    // all (file deleted or fully cleaned) are also shrink candidates.
    for ((rule, file), &base) in &baseline.counts {
        if !current.contains_key(&(rule.clone(), file.clone())) {
            cmp.under.push(Gap {
                rule: rule.clone(),
                file: file.clone(),
                current: 0,
                baseline: base,
            });
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn ratchet_passes_at_baseline_and_fails_above() {
        let mut analysis = Analysis::default();
        analysis.findings.push(finding("panic-surface", "a.rs", 1));
        analysis.findings.push(finding("panic-surface", "a.rs", 2));
        let baseline = Baseline::from_analysis(&analysis);
        assert!(compare(&analysis, &baseline).over.is_empty());

        analysis.findings.push(finding("panic-surface", "a.rs", 3));
        let cmp = compare(&analysis, &baseline);
        assert_eq!(cmp.over.len(), 1);
        assert_eq!(cmp.over[0].current, 3);
        assert_eq!(cmp.over[0].baseline, 2);
    }

    #[test]
    fn paid_down_debt_is_reported_as_under() {
        let mut analysis = Analysis::default();
        analysis.findings.push(finding("unsafe-audit", "b.rs", 1));
        analysis.findings.push(finding("unsafe-audit", "b.rs", 2));
        let baseline = Baseline::from_analysis(&analysis);
        analysis.findings.pop();
        let cmp = compare(&analysis, &baseline);
        assert!(cmp.over.is_empty());
        assert_eq!(cmp.under.len(), 1);
        // Fully cleaned pairs surface too.
        analysis.findings.clear();
        let cmp = compare(&analysis, &baseline);
        assert_eq!(cmp.under.len(), 1);
        assert_eq!(cmp.under[0].current, 0);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut analysis = Analysis::default();
        analysis.findings.push(finding("panic-surface", "a.rs", 1));
        analysis.findings.push(finding("unsafe-audit", "b/c.rs", 9));
        analysis.findings.push(finding("unsafe-audit", "b/c.rs", 12));
        let baseline = Baseline::from_analysis(&analysis);
        let text = baseline.to_json().to_string_pretty();
        let dir = std::env::temp_dir().join("lsi_analyze_baseline_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, &text).expect("write temp baseline");
        let loaded = Baseline::load(&path).expect("load temp baseline");
        assert_eq!(loaded.counts, baseline.counts);
        assert!(loaded.exists);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_baseline_is_empty_not_error() {
        let loaded =
            Baseline::load(Path::new("/nonexistent/lsi/baseline.json")).expect("empty baseline");
        assert!(loaded.counts.is_empty());
        assert!(!loaded.exists);
    }

    #[test]
    fn suppression_comment_drops_finding() {
        let src = "// lsi-analyze: allow(eprintln-lint)\neprintln!(\"x\");\n";
        let file = SourceFile::from_source("crates/foo/src/lib.rs", src);
        let f = finding("eprintln-lint", "crates/foo/src/lib.rs", 2);
        assert!(is_suppressed(&file, &f));
        let f2 = finding("panic-surface", "crates/foo/src/lib.rs", 2);
        assert!(!is_suppressed(&file, &f2));
    }
}
