//! A hand-rolled Rust lexer that classifies every character of a
//! source file as *code*, *comment*, or *literal content*, and marks
//! the line ranges that belong to `#[cfg(test)]` / `#[test]` items.
//!
//! The rules in this crate are string searches over source text, and
//! string searches over *raw* source text are exactly the fragility
//! this crate exists to retire (a `"SAFETY"` inside a string literal,
//! an `unwrap()` in a doc example, a `/*` inside a `"..."`). So the
//! lexer does the one hard part once: it walks the file with a real
//! tokenizer state machine — nested block comments, escaped strings,
//! raw strings with arbitrary `#` fences, byte/C-string prefixes, and
//! the `'a'`-char-literal versus `'a`-lifetime ambiguity — and emits a
//! per-line *masked* view:
//!
//! * [`Line::code`] — the source line with comment text and the entire
//!   extent of string/char literals replaced by spaces (columns are
//!   preserved, so match offsets map straight back to the file);
//! * [`Line::comment`] — the complement: only comment characters
//!   survive (including the `//` / `/*` markers);
//! * [`Line::doc_comment`] — whether the comment on the line is a doc
//!   comment (`///`, `//!`, `/**`, `/*!`);
//! * [`Line::in_test`] — whether the line lies inside an item
//!   decorated with `#[test]` or `#[cfg(test)]` (tracked by brace
//!   matching on the masked code, so braces in strings can't derail
//!   the region).
//!
//! Rules then search `code` for code patterns and `comment` for
//! justification markers, and both searches are immune to literals by
//! construction. Literal *content* appears in neither view — a string
//! containing `SAFETY` satisfies nothing, and a string containing
//! `.unwrap()` trips nothing.

/// One source line, split into its masked views.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code characters only; comments and literals are spaces.
    pub code: String,
    /// Comment characters only (markers included); the rest is spaces.
    pub comment: String,
    /// String-literal content only (quotes included, raw-string
    /// prefixes/fences and char literals masked); the rest is spaces.
    /// Columns align with [`Line::code`], so a rule that finds a call
    /// in `code` can read its string argument here (`metric-naming`
    /// validates span/counter names this way).
    pub literal: String,
    /// True when the comment text on this line belongs to a doc
    /// comment (`///`, `//!`, `/**`, `/*!`).
    pub doc_comment: bool,
    /// True when the line is inside a `#[test]`/`#[cfg(test)]` item.
    pub in_test: bool,
}

impl Line {
    /// Whether the line carries any comment text at all.
    pub fn has_comment(&self) -> bool {
        self.comment.chars().any(|c| !c.is_whitespace())
    }
}

/// A fully lexed file: per-line masked views plus test-region flags.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// The lines, in file order.
    pub lines: Vec<Line>,
}

/// Lexer state that can span line boundaries.
enum State {
    /// Ordinary code.
    Code,
    /// Inside `//`-style comment (ends at newline).
    LineComment { doc: bool },
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment { depth: usize, doc: bool },
    /// Inside `"..."` (escapes honored).
    Str { escaped: bool },
    /// Inside `r"..."` / `r#"..."#` with the given fence length.
    RawStr { hashes: usize },
    /// Inside `'...'` char/byte literal (escapes honored).
    CharLit { escaped: bool },
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl LexedFile {
    /// Lex `src` into masked per-line views and mark test regions.
    pub fn lex(src: &str) -> LexedFile {
        let mut lines = lex_masked(src);
        mark_test_regions(&mut lines);
        LexedFile { lines }
    }

    /// The masked code of all lines joined with `\n`, plus the byte
    /// offset at which each line starts in the joined string — for
    /// rules whose patterns span lines (method chains, attributes).
    pub fn joined_code(&self) -> (String, Vec<usize>) {
        let mut joined = String::new();
        let mut starts = Vec::with_capacity(self.lines.len());
        for line in &self.lines {
            starts.push(joined.len());
            joined.push_str(&line.code);
            joined.push('\n');
        }
        (joined, starts)
    }

    /// Map a byte offset in [`LexedFile::joined_code`] to a 0-based
    /// line index.
    pub fn line_of_offset(starts: &[usize], offset: usize) -> usize {
        match starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }
}

/// Pass 1: the character state machine producing masked views.
fn lex_masked(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut literal = String::new();
    let mut doc_line = false;
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! push_line {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                literal: std::mem::take(&mut literal),
                doc_comment: doc_line,
                in_test: false,
            });
            // Reassigned, not read, after the final line — fine.
            #[allow(unused_assignments)]
            {
                doc_line = false;
            }
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment { .. } = state {
                state = State::Code;
            }
            push_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // `///x` is doc, `////` is a plain divider, `//!`
                    // is inner doc.
                    let c2 = chars.get(i + 2).copied();
                    let doc = c2 == Some('!')
                        || (c2 == Some('/') && chars.get(i + 3).copied() != Some('/'));
                    state = State::LineComment { doc };
                    doc_line = doc_line || doc;
                    comment.push_str("//");
                    code.push_str("  ");
                    literal.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let c2 = chars.get(i + 2).copied();
                    let doc = c2 == Some('!') || (c2 == Some('*') && chars.get(i + 3) != Some(&'/'));
                    state = State::BlockComment { depth: 1, doc };
                    doc_line = doc_line || doc;
                    comment.push_str("/*");
                    code.push_str("  ");
                    literal.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str { escaped: false };
                    code.push(' ');
                    comment.push(' ');
                    literal.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal or lifetime? `'\...` and `'x'` are
                    // literals; `'ident` (not closed by `'`) is a
                    // lifetime/label and stays code.
                    let c1 = chars.get(i + 1).copied();
                    let c2 = chars.get(i + 2).copied();
                    if c1 == Some('\\') {
                        state = State::CharLit { escaped: false };
                        code.push(' ');
                        comment.push(' ');
                        literal.push(' ');
                        i += 1;
                    } else if c1.is_some() && c1 != Some('\'') && c2 == Some('\'') {
                        // 'x' — a one-char literal.
                        code.push_str("   ");
                        comment.push_str("   ");
                        literal.push_str("   ");
                        i += 3;
                    } else {
                        // Lifetime (or malformed literal): keep as code.
                        code.push(c);
                        comment.push(' ');
                        literal.push(' ');
                        i += 1;
                    }
                } else if matches!(c, 'r' | 'b' | 'c')
                    && (i == 0 || !is_ident(chars[i - 1]))
                    && literal_prefix_len(&chars, i).is_some()
                {
                    // A string-literal prefix: `r`, `b`, `c`, `br`,
                    // `cr`, possibly with a `#` fence. Mask the prefix
                    // and enter the right string state.
                    if let Some((plen, raw_hashes)) = literal_prefix_len(&chars, i) {
                        for _ in 0..plen {
                            code.push(' ');
                            comment.push(' ');
                        }
                        // The prefix/fence is masked, but the final
                        // char (the opening quote) stays a quote in
                        // the literal view so string-argument scans
                        // see where content starts.
                        for _ in 0..plen - 1 {
                            literal.push(' ');
                        }
                        literal.push('"');
                        i += plen;
                        state = match raw_hashes {
                            Some(h) => State::RawStr { hashes: h },
                            None => State::Str { escaped: false },
                        };
                    }
                } else {
                    code.push(c);
                    comment.push(' ');
                    literal.push(' ');
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                doc_line = doc_line || doc;
                comment.push(c);
                code.push(' ');
                literal.push(' ');
                i += 1;
            }
            State::BlockComment { depth, doc } => {
                doc_line = doc_line || doc;
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    comment.push_str("/*");
                    code.push_str("  ");
                    literal.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    comment.push_str("*/");
                    code.push_str("  ");
                    literal.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1, doc }
                    };
                } else {
                    comment.push(c);
                    code.push(' ');
                    literal.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                code.push(' ');
                comment.push(' ');
                literal.push(c);
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                code.push(' ');
                comment.push(' ');
                literal.push(c);
                if c == '"' && closes_raw(&chars, i, hashes) {
                    // Mask the fence too.
                    for _ in 0..hashes {
                        code.push(' ');
                        comment.push(' ');
                        literal.push(' ');
                    }
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
            State::CharLit { escaped } => {
                code.push(' ');
                comment.push(' ');
                literal.push(' ');
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    // Final line without trailing newline.
    if !code.is_empty() || !comment.is_empty() || !literal.is_empty() || lines.is_empty() {
        push_line!();
    }
    lines
}

/// If position `i` starts a string-literal prefix (`r"`, `r#"`, `b"`,
/// `br#"`, `c"`, `cr"`, ...), return the prefix length (everything up
/// to and including the opening quote) and `Some(hashes)` when it is a
/// raw string (no escape processing), else `None` for a normal string.
fn literal_prefix_len(chars: &[char], i: usize) -> Option<(usize, Option<usize>)> {
    let mut j = i;
    let mut saw_r = false;
    // At most two prefix letters: b/c optionally followed by r.
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                saw_r = true;
                j += 1;
                break;
            }
            Some('b') | Some('c') if !saw_r => {
                j += 1;
            }
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    if saw_r {
        let mut hashes = 0;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((j + 1 - i, Some(hashes)));
        }
        return None;
    }
    if chars.get(j) == Some(&'"') {
        return Some((j + 1 - i, None));
    }
    None
}

/// Does the `"` at position `i` close a raw string with `hashes` fence
/// characters (i.e. is it followed by that many `#`)?
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Pass 2: find `#[test]` / `#[cfg(test)]` attributes in the masked
/// code and mark the decorated item's line extent (attribute line
/// through the item's closing brace or terminating `;`) as test code.
/// Inner attributes (`#![cfg(test)]`) mark the whole file.
fn mark_test_regions(lines: &mut [Line]) {
    let joined: String = {
        let mut s = String::new();
        for line in lines.iter() {
            s.push_str(&line.code);
            s.push('\n');
        }
        s
    };
    let chars: Vec<char> = joined.chars().collect();
    // Line index of each char.
    let mut line_of = Vec::with_capacity(chars.len());
    {
        let mut ln = 0;
        for &c in &chars {
            line_of.push(ln);
            if c == '\n' {
                ln += 1;
            }
        }
    }
    let n = chars.len();
    let mut i = 0;
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut whole_file = false;
    while i < n {
        if chars[i] != '#' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = chars.get(j) == Some(&'!');
        if inner {
            j += 1;
        }
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        // Capture the attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut body = String::new();
        let mut k = j;
        while k < n {
            let c = chars[k];
            if c == '[' {
                depth += 1;
                if depth > 1 {
                    body.push(c);
                }
            } else if c == ']' {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                body.push(c);
            } else if depth >= 1 {
                body.push(c);
            }
            k += 1;
        }
        if k >= n {
            break;
        }
        if is_test_attr(&body) {
            if inner {
                whole_file = true;
            } else if let Some(end) = item_extent(&chars, k + 1) {
                regions.push((line_of[i], line_of[end.min(n - 1)]));
            } else {
                // Attribute at EOF without an item: mark to file end.
                regions.push((line_of[i], lines.len().saturating_sub(1)));
            }
        }
        i = k + 1;
    }
    if whole_file {
        for line in lines.iter_mut() {
            line.in_test = true;
        }
        return;
    }
    for (lo, hi) in regions {
        for line in lines.iter_mut().take(hi + 1).skip(lo) {
            line.in_test = true;
        }
    }
}

/// Is the attribute body (text inside `#[...]`) a test marker?
/// Recognizes `test`, `cfg(test)`, and `cfg(any/all(... test ...))`;
/// rejects `cfg(not(test))` (that's the *non*-test half) and
/// `cfg_attr` (which decorates an item that exists unconditionally).
fn is_test_attr(body: &str) -> bool {
    let body = body.trim();
    if body == "test" {
        return true;
    }
    if !body.starts_with("cfg") || body.starts_with("cfg_attr") {
        return false;
    }
    has_word(body, "test") && !body.contains("not")
}

/// Word-boundary substring search.
fn has_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1] as char);
        let after_ok = end == bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// From position `start` (just past a test attribute's `]`), find the
/// char index where the decorated item ends: the matching `}` of its
/// body, or a `;` for braceless items. Skips any further attributes.
fn item_extent(chars: &[char], start: usize) -> Option<usize> {
    let start = skip_attributes(chars, start);
    match scan_item_end(chars, start)? {
        ItemEnd::Semi(i) => Some(i),
        ItemEnd::Body { close, .. } => Some(close),
    }
}

/// Advance past whitespace and any `#[...]` attributes starting at
/// `start`, returning the position of the first header token.
pub fn skip_attributes(chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let mut i = start;
    loop {
        while i < n && chars[i].is_whitespace() {
            i += 1;
        }
        if i < n && chars[i] == '#' {
            let mut depth = 0usize;
            let mut j = i + 1;
            if chars.get(j) == Some(&'!') {
                j += 1;
            }
            while j < n && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) != Some(&'[') {
                return i;
            }
            let mut k = j;
            while k < n {
                match chars[k] {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            i = k;
        } else {
            return i;
        }
    }
}

/// Where an item header's scan terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemEnd {
    /// Braceless item: the `;` position.
    Semi(usize),
    /// Braced item: the body's `{` and its matching `}`.
    Body {
        /// Position of the opening `{`.
        open: usize,
        /// Position of the matching `}`.
        close: usize,
    },
}

/// Scan from an item header at `start` to the item's terminator: the
/// `;` of a braceless item or the matching `}` of its body.
///
/// `;` and `{` inside parentheses/brackets (argument lists, array
/// types) do not count. On top of that, an angle-bracket depth guards
/// braces that live inside generic parameters — default const-generic
/// values (`<const N: usize = { 8 }>`) and const arguments in `where`
/// clauses (`T: Buf<{ N }>`) — so they cannot be mistaken for the item
/// body. Telling generics from less-than/shift uses the previous
/// non-whitespace character: `<` only opens after an identifier, `>`,
/// or `:` (turbofish), so `a << b` and `a < b` in const initializers
/// nest at most one phantom level, and a `;` at paren depth 0 always
/// terminates regardless of angle depth (a real `;` can never occur
/// inside generics).
pub fn scan_item_end(chars: &[char], start: usize) -> Option<ItemEnd> {
    let n = chars.len();
    let mut pd = 0isize; // paren/bracket depth
    let mut ad = 0usize; // angle depth, tracked only at pd == 0
    let mut prev = ' '; // previous non-whitespace char
    let mut i = start;
    while i < n {
        let c = chars[i];
        match c {
            '(' | '[' => pd += 1,
            ')' | ']' => pd -= 1,
            '<' if pd == 0 => {
                if is_ident(prev) || prev == '>' || prev == ':' {
                    ad += 1;
                }
            }
            '>' if pd == 0 && ad > 0 => {
                // `->` and `=>` arrows are not closers.
                if prev != '-' && prev != '=' {
                    ad -= 1;
                }
            }
            ';' if pd == 0 => return Some(ItemEnd::Semi(i)),
            '{' if pd == 0 && ad > 0 => {
                // A brace block inside generics: skip it wholesale.
                let mut bd = 1usize;
                i += 1;
                while i < n && bd > 0 {
                    match chars[i] {
                        '{' => bd += 1,
                        '}' => bd -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                prev = '}';
                continue;
            }
            '{' if pd == 0 => {
                let open = i;
                let mut bd = 1usize;
                i += 1;
                while i < n {
                    match chars[i] {
                        '{' => bd += 1,
                        '}' => {
                            bd -= 1;
                            if bd == 0 {
                                return Some(ItemEnd::Body { open, close: i });
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            _ => {}
        }
        if !c.is_whitespace() {
            prev = c;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> LexedFile {
        LexedFile::lex(src)
    }

    #[test]
    fn strings_are_masked_out_of_code_and_comment() {
        let f = lex("let x = \"SAFETY unwrap() // not a comment\";");
        assert!(!f.lines[0].code.contains("SAFETY"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[0].comment.contains("SAFETY"));
        assert!(f.lines[0].code.contains("let x ="));
        assert!(f.lines[0].code.ends_with(';'));
    }

    #[test]
    fn raw_strings_with_fences_do_not_end_early() {
        let f = lex("let s = r#\"z \" q\"#; call()");
        assert!(f.lines[0].code.contains("call()"));
        assert!(!f.lines[0].code.contains('z'));
        assert!(!f.lines[0].code.contains('q'));
        let f = lex("let s = br##\"x\"# y\"##; tail()");
        assert!(f.lines[0].code.contains("tail()"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // `var` ends in `r` but the following `"` starts an ordinary
        // string, and the identifier itself must stay code.
        let f = lex("let y = var; let s = \"v\"; done()");
        let code = &f.lines[0].code;
        assert!(code.contains("let y = var;"));
        assert!(code.contains("done()"));
        assert!(!code.contains('v') || code.contains("var"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let f = lex("a(); /* outer /* inner */ still comment */ b();");
        let code = &f.lines[0].code;
        assert!(code.contains("a();"));
        assert!(code.contains("b();"));
        assert!(!code.contains("inner"));
        assert!(!code.contains("still"));
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let code = &f.lines[0].code;
        // Lifetimes survive as code; char-literal contents do not.
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains("'x'"));
        assert!(!code.contains("'\\''"));
    }

    #[test]
    fn cfg_test_region_covers_mod_and_stops_after() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test, "library fn before region");
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test && f.lines[3].in_test && f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the closing brace");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = lex("#[cfg(not(test))]\nfn real() {}\n");
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn literal_view_preserves_string_content_and_aligns() {
        let f = lex("count(\"a.b.count\", 1); // note");
        let line = &f.lines[0];
        assert_eq!(line.literal.len(), line.code.len(), "columns align");
        assert!(line.literal.contains("\"a.b.count\""));
        assert!(!line.literal.contains("count("), "code is spaces here");
        assert!(!line.literal.contains("note"), "comments are spaces here");
        // Raw strings keep content, mask prefix and fences.
        let f = lex("let s = r#\"x.y\"#;");
        assert!(f.lines[0].literal.contains("\"x.y\""));
        assert!(!f.lines[0].literal.contains('#'));
        // Char literals stay out of the literal view.
        let f = lex("let c = 'q';");
        assert!(!f.lines[0].literal.contains('q'));
    }

    fn scan(src: &str) -> Option<ItemEnd> {
        let chars: Vec<char> = src.chars().collect();
        scan_item_end(&chars, 0)
    }

    #[test]
    fn scan_item_end_finds_fn_body_past_const_generic_braces() {
        let src = "fn f<const N: usize, B: Buf<{ N * 2 }>>(x: [u8; N]) -> usize { x.len() }";
        match scan(src).expect("terminated") {
            ItemEnd::Body { open, close } => {
                assert_eq!(src.as_bytes()[open], b'{');
                assert_eq!(&src[open - 1..open + 2], " { "); // the body brace, not `{ N * 2 }`
                assert_eq!(close, src.len() - 1);
            }
            other => panic!("expected body, got {other:?}"),
        }
    }

    #[test]
    fn scan_item_end_semi_wins_over_phantom_angles() {
        // `1 << K` opens one phantom angle level; the `;` must still
        // terminate the item.
        let src = "const MASK: usize = 1 << K; fn later() {}";
        assert_eq!(scan(src), Some(ItemEnd::Semi(src.find(';').unwrap())));
        let src = "static LT: bool = A < B; fn later() {}";
        assert_eq!(scan(src), Some(ItemEnd::Semi(src.find(';').unwrap())));
    }

    #[test]
    fn scan_item_end_skips_braces_in_const_initializer_comparisons() {
        // A misread `<` must not make `{ 1 }` the item body: the scan
        // skips the brace blocks and lands on the `;`.
        let src = "const X: usize = if a < b { 1 } else { 2 };";
        assert_eq!(scan(src), Some(ItemEnd::Semi(src.len() - 1)));
    }

    #[test]
    fn scan_item_end_arrows_do_not_close_angles() {
        let src = "fn g<F: Fn(usize) -> usize>(f: F) -> usize { f(1) }";
        match scan(src).expect("terminated") {
            ItemEnd::Body { open, .. } => assert_eq!(open, src.find("{ f").unwrap()),
            other => panic!("expected body, got {other:?}"),
        }
    }

    #[test]
    fn doc_comment_flag() {
        let f = lex("/// docs here\n// plain\n//! inner docs\n");
        assert!(f.lines[0].doc_comment);
        assert!(!f.lines[1].doc_comment);
        assert!(f.lines[2].doc_comment);
    }
}
