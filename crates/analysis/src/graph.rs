//! Layer 2 of the interprocedural pipeline (DESIGN.md §3j): the
//! workspace symbol table and call graph.
//!
//! The graph is built from the items recovered by [`crate::items`]
//! with *heuristic* name resolution, scoped deliberately to this
//! workspace:
//!
//! * same-crate bare names (`helper(..)`) resolve to free functions of
//!   the caller's crate (module paths inside a crate are ignored — a
//!   crate-wide name match is an edge);
//! * `use` aliases expand the first path segment, then a leading
//!   workspace lib name (`lsi_core::..`) routes to that crate;
//! * `Type::method(..)` and `Self::method(..)` resolve against the
//!   impl blocks seen for that type anywhere in the workspace;
//! * `self.method(..)` pins to the caller's own impl type when that
//!   type defines the method; every other `.method(..)` falls back to
//!   the impl with that method name **only when exactly one workspace
//!   type defines it** — ambiguous names (`collect`, `for_each`, …)
//!   collide with `std` iterator chains and would glue every plain
//!   iterator pipeline to the vendored rayon's par-iter impls, so they
//!   resolve to nothing (a documented under-approximation);
//! * paths into `std`/`core`/`alloc` and unknown names produce **no
//!   edge**; macro invocations are recorded opaquely and never become
//!   edges.
//!
//! False edges widen reachability (more findings, baselined debt);
//! missing edges narrow it. Both failure modes and their consequences
//! per rule are documented in DESIGN.md §3j.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use lsi_obs::Json;

use crate::items::{parse_file, FileItems};
use crate::SourceFile;

/// One parsed file inside a workspace.
#[derive(Debug, Clone)]
pub struct WsFile {
    /// The lexed source (rules and suppression checks need it).
    pub source: SourceFile,
    /// Items recovered by the parser.
    pub items: FileItems,
    /// Owning crate key: `crates/serve`, `vendor/rayon`, `src`,
    /// `examples`.
    pub crate_key: String,
    /// `use` aliases flattened to `alias -> path segments`.
    pub aliases: BTreeMap<String, Vec<String>>,
}

/// The parsed workspace: every file plus the lib-name table used for
/// cross-crate resolution.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Files sorted by relative path.
    pub files: Vec<WsFile>,
    /// Lib identifier (`lsi_core`) → crate key (`crates/core`).
    pub lib_names: BTreeMap<String, String>,
}

/// The crate key a repo-relative path belongs to.
pub fn crate_key_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some(first @ ("crates" | "vendor")) => match parts.next() {
            Some(second) => format!("{first}/{second}"),
            None => first.to_string(),
        },
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

impl Workspace {
    /// Build from already-lexed sources (the engine's path: files are
    /// read once, shared by the per-file rules and the graph).
    pub fn from_source_files(
        sources: Vec<SourceFile>,
        lib_names: BTreeMap<String, String>,
    ) -> Workspace {
        let mut files: Vec<WsFile> = sources
            .into_iter()
            .map(|source| {
                let items = parse_file(&source);
                let crate_key = crate_key_of(&source.rel_path);
                let mut aliases = BTreeMap::new();
                for u in &items.uses {
                    aliases.insert(u.alias.clone(), u.path.clone());
                }
                WsFile {
                    source,
                    items,
                    crate_key,
                    aliases,
                }
            })
            .collect();
        files.sort_by(|a, b| a.source.rel_path.cmp(&b.source.rel_path));
        Workspace { files, lib_names }
    }

    /// Build an in-memory workspace from `(rel_path, source)` pairs —
    /// the fixture entry point. Lib names are derived heuristically:
    /// `crates/<d>` → `lsi_<d>`, `vendor/<d>` → `<d>`.
    pub fn from_sources(entries: &[(&str, &str)]) -> Workspace {
        let sources: Vec<SourceFile> = entries
            .iter()
            .map(|(rel, src)| SourceFile::from_source(rel, src))
            .collect();
        let mut lib_names = BTreeMap::new();
        for (rel, _) in entries {
            let key = crate_key_of(rel);
            if let Some(dir) = key.strip_prefix("crates/") {
                lib_names.insert(format!("lsi_{dir}"), key.clone());
            } else if let Some(dir) = key.strip_prefix("vendor/") {
                lib_names.insert(dir.to_string(), key.clone());
            }
        }
        Workspace::from_source_files(sources, lib_names)
    }

    /// Read the real lib-name table from the workspace manifests:
    /// the first `name = "..."` of each `crates/*/Cargo.toml`, the
    /// root package, and `vendor/rayon`.
    pub fn detect_lib_names(root: &Path) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        let mut add = |manifest: &Path, key: &str| {
            if let Ok(text) = std::fs::read_to_string(manifest) {
                for line in text.lines() {
                    let line = line.trim();
                    if let Some(rest) = line.strip_prefix("name") {
                        let rest = rest.trim_start();
                        if let Some(rest) = rest.strip_prefix('=') {
                            let name = rest.trim().trim_matches('"');
                            if !name.is_empty() {
                                out.insert(name.replace('-', "_"), key.to_string());
                                return;
                            }
                        }
                    }
                }
            }
        };
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            let mut dirs: Vec<_> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let key = format!(
                    "crates/{}",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                );
                add(&dir.join("Cargo.toml"), &key);
            }
        }
        add(&root.join("vendor/rayon/Cargo.toml"), "vendor/rayon");
        add(&root.join("Cargo.toml"), "src");
        out
    }
}

/// A graph node: one `fn` item.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
    /// Display label: `crate-key::module::Type::name`.
    pub label: String,
}

/// A call edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Caller node id.
    pub from: usize,
    /// Callee node id.
    pub to: usize,
    /// 1-based line of the call site.
    pub line: usize,
    /// The call sits inside a `catch_unwind(..)` argument — panics do
    /// not propagate past it.
    pub contained: bool,
    /// Resolved through method-name fallback rather than a path.
    pub method: bool,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// One node per parsed `fn`, in (file, item) order.
    pub nodes: Vec<Node>,
    /// Sorted, deduplicated edges.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    pub out: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub rin: Vec<Vec<usize>>,
}

/// How a node became panic-reachable (for witness paths).
#[derive(Debug, Clone)]
pub enum Via {
    /// A panic site in the node's own body.
    Direct(String, usize),
    /// Through this edge (index into [`CallGraph::edges`]).
    Call(usize),
}

/// Panic-reachability over uncontained edges.
#[derive(Debug, Clone, Default)]
pub struct PanicReach {
    /// Per-node: can the node reach a panic site without passing a
    /// `catch_unwind` boundary?
    pub reachable: Vec<bool>,
    /// Per-node: the first hop of a shortest witness path.
    pub via: Vec<Option<Via>>,
}

impl CallGraph {
    /// Build the graph for a workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut graph = CallGraph::default();
        // Node table + symbol maps.
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut type_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut owner_types: Vec<String> = Vec::new();
        for (fi, wf) in ws.files.iter().enumerate() {
            for (ii, f) in wf.items.fns.iter().enumerate() {
                let id = graph.nodes.len();
                let mut label = wf.crate_key.clone();
                if !f.module.is_empty() {
                    label = format!("{label}::{}", f.module);
                }
                if let Some(ty) = &f.self_type {
                    label = format!("{label}::{ty}");
                }
                label = format!("{label}::{}", f.name);
                graph.nodes.push(Node {
                    file: fi,
                    item: ii,
                    label,
                });
                owner_types.push(f.self_type.clone().unwrap_or_default());
                if f.in_test {
                    continue;
                }
                match &f.self_type {
                    Some(ty) => {
                        type_method
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        method_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                    None => {
                        free_by_crate
                            .entry((wf.crate_key.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        // Edges.
        let mut edge_set: BTreeSet<Edge> = BTreeSet::new();
        for (id, node) in graph.nodes.iter().enumerate() {
            let wf = &ws.files[node.file];
            let f = &wf.items.fns[node.item];
            if f.in_test {
                continue;
            }
            for call in &f.calls {
                if call.macro_call {
                    continue;
                }
                let targets = resolve(
                    ws,
                    node.file,
                    f,
                    call,
                    &free_by_crate,
                    &type_method,
                    &method_by_name,
                    &owner_types,
                );
                for to in targets {
                    edge_set.insert(Edge {
                        from: id,
                        to,
                        line: call.line,
                        contained: call.contained,
                        method: call.method,
                    });
                }
            }
        }
        graph.edges = edge_set.into_iter().collect();
        graph.out = vec![Vec::new(); graph.nodes.len()];
        graph.rin = vec![Vec::new(); graph.nodes.len()];
        for (ei, e) in graph.edges.iter().enumerate() {
            graph.out[e.from].push(ei);
            graph.rin[e.to].push(ei);
        }
        graph
    }

    /// Find a node by function name, optionally pinned to a crate key.
    pub fn find_fn(&self, ws: &Workspace, name: &str, crate_key: Option<&str>) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let wf = &ws.files[n.file];
                wf.items.fns[n.item].name == name
                    && crate_key.is_none_or(|k| wf.crate_key == k)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Fixed-point panic-reachability over uncontained edges, with
    /// shortest-hop witness pointers (BFS from direct panic sites over
    /// reverse edges; deterministic given the sorted node/edge order).
    pub fn panic_reach(&self, ws: &Workspace) -> PanicReach {
        self.panic_reach_filtered(ws, true)
    }

    /// Panic-reachability with an optional indexing filter: the serve
    /// contract cares about `v[i]` sites, the general warning tier
    /// does not (bounds-checked indexing is how the numeric kernels
    /// are written — DESIGN.md §3j).
    ///
    /// Panic sites inside `crates/fault/` never seed propagation:
    /// that crate exists to *inject* panics on demand, disarmed by
    /// default, and counting its sites would mark every instrumented
    /// path panic-reachable. Its fns still forward panics from
    /// elsewhere through their edges.
    pub fn panic_reach_filtered(&self, ws: &Workspace, include_indexing: bool) -> PanicReach {
        let n = self.nodes.len();
        let mut reach = PanicReach {
            reachable: vec![false; n],
            via: vec![None; n],
        };
        let mut queue = VecDeque::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let wf = &ws.files[node.file];
            if wf.source.rel_path.starts_with("crates/fault/") {
                continue;
            }
            let f = &wf.items.fns[node.item];
            if let Some(p) = f
                .panics
                .iter()
                .find(|p| !p.contained && (include_indexing || p.what != "index"))
            {
                reach.reachable[id] = true;
                reach.via[id] = Some(Via::Direct(p.what.clone(), p.line));
                queue.push_back(id);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &ei in &self.rin[cur] {
                let e = &self.edges[ei];
                if e.contained || reach.reachable[e.from] {
                    continue;
                }
                reach.reachable[e.from] = true;
                reach.via[e.from] = Some(Via::Call(ei));
                queue.push_back(e.from);
            }
        }
        reach
    }

    /// Nodes reachable from `start` following uncontained edges
    /// (`start` included).
    pub fn forward_reachable(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            for &ei in &self.out[cur] {
                let e = &self.edges[ei];
                if e.contained || seen[e.to] {
                    continue;
                }
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
        seen
    }

    /// Render the witness path for a panic-reachable node:
    /// `a → b → c: .unwrap() (crates/x/src/lib.rs:12)`.
    pub fn witness(&self, ws: &Workspace, reach: &PanicReach, node: usize) -> String {
        let mut parts = vec![self.short_name(ws, node)];
        let mut cur = node;
        for _ in 0..16 {
            match &reach.via[cur] {
                Some(Via::Call(ei)) => {
                    cur = self.edges[*ei].to;
                    parts.push(self.short_name(ws, cur));
                }
                Some(Via::Direct(what, line)) => {
                    let file = &ws.files[self.nodes[cur].file].source.rel_path;
                    return format!("{}: {} ({}:{})", parts.join(" → "), what, file, line);
                }
                None => break,
            }
        }
        parts.join(" → ")
    }

    /// `Type::name` or bare `name` for witness paths.
    fn short_name(&self, ws: &Workspace, node: usize) -> String {
        let n = &self.nodes[node];
        let f = &ws.files[n.file].items.fns[n.item];
        match &f.self_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Graphviz DOT export. Contained edges are dashed; method-fallback
    /// edges are grey.
    pub fn to_dot(&self, ws: &Workspace) -> String {
        let mut s = String::from("digraph lsi_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let f = &ws.files[node.file].items.fns[node.item];
            if f.in_test {
                continue;
            }
            let style = if f.panics.iter().any(|p| !p.contained) {
                ", color=red"
            } else if f.has_unsafe_block || f.is_unsafe {
                ", color=orange"
            } else {
                ""
            };
            s.push_str(&format!("  n{id} [label=\"{}\"{}];\n", node.label, style));
        }
        for e in &self.edges {
            let mut attrs = Vec::new();
            if e.contained {
                attrs.push("style=dashed");
            }
            if e.method {
                attrs.push("color=grey");
            }
            let attrs = if attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", attrs.join(", "))
            };
            s.push_str(&format!("  n{} -> n{}{};\n", e.from, e.to, attrs));
        }
        s.push_str("}\n");
        s
    }

    /// JSON export: `{nodes: [...], edges: [...]}`.
    pub fn to_json(&self, ws: &Workspace) -> Json {
        let nodes: Vec<Json> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| {
                let wf = &ws.files[node.file];
                let f = &wf.items.fns[node.item];
                Json::obj(vec![
                    ("id", Json::Num(id as f64)),
                    ("label", Json::Str(node.label.clone())),
                    ("file", Json::Str(wf.source.rel_path.clone())),
                    ("line", Json::Num(f.line as f64)),
                    ("pub", Json::Bool(f.is_pub)),
                    ("test", Json::Bool(f.in_test)),
                    ("unsafe_block", Json::Bool(f.has_unsafe_block)),
                    (
                        "panic_sites",
                        Json::Num(f.panics.iter().filter(|p| !p.contained).count() as f64),
                    ),
                ])
            })
            .collect();
        let edges: Vec<Json> = self
            .edges
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("from", Json::Num(e.from as f64)),
                    ("to", Json::Num(e.to as f64)),
                    ("line", Json::Num(e.line as f64)),
                    ("contained", Json::Bool(e.contained)),
                    ("method", Json::Bool(e.method)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("nodes", Json::Arr(nodes)),
            ("edges", Json::Arr(edges)),
        ])
    }
}

/// Method names that never take the any-impl fallback, even when only
/// one workspace type defines them: they are std slice/iterator/
/// collection staples, so a bare `.to_vec()` or `.iter()` on an
/// untyped receiver is almost always the std method, and a workspace
/// edge there manufactures false paths (a `rest.to_vec()` on a byte
/// slice must not become an edge into `RowView::to_vec`). Self-pinned
/// and `Type::method` calls resolve before this list is consulted.
const STD_METHOD_NAMES: &[&str] = &[
    "all", "any", "append", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str", "chain",
    "clear", "clone", "cloned", "collect", "contains", "copied", "count", "drain", "enumerate",
    "extend", "filter", "find", "flat_map", "flatten", "flush", "fold", "for_each", "get",
    "get_mut", "insert", "into_iter", "is_empty", "iter", "iter_mut", "join", "len", "map",
    "max", "min", "next", "parse", "pop", "position", "push", "read", "remove", "rev",
    "skip", "sort", "sort_by", "split", "sum", "take", "to_owned", "to_string", "to_vec",
    "trim", "write", "zip",
];

/// Resolve one call site to target node ids (empty = no edge).
#[allow(clippy::too_many_arguments)]
fn resolve(
    ws: &Workspace,
    file_idx: usize,
    caller: &crate::items::FnItem,
    call: &crate::items::CallSite,
    free_by_crate: &BTreeMap<(String, String), Vec<usize>>,
    type_method: &BTreeMap<(String, String), Vec<usize>>,
    method_by_name: &BTreeMap<String, Vec<usize>>,
    owner_types: &[String],
) -> Vec<usize> {
    let wf = &ws.files[file_idx];
    if call.method {
        let name = &call.path[0];
        if call.self_receiver {
            if let Some(ty) = &caller.self_type {
                if let Some(hits) = type_method.get(&(ty.clone(), name.clone())) {
                    return hits.clone();
                }
            }
        }
        // Trait-method fallback — only when the name is unambiguous:
        // exactly one workspace type defines it, and the name is not a
        // std staple. Ambiguous or std-shared names are usually std
        // calls on untyped receivers; an any-impl edge there floods
        // the graph with false paths into vendor/rayon.
        if STD_METHOD_NAMES.contains(&name.as_str()) {
            return Vec::new();
        }
        let hits = match method_by_name.get(name) {
            Some(hits) => hits,
            None => return Vec::new(),
        };
        let mut types = BTreeSet::new();
        for &id in hits {
            types.insert(owner_types[id].as_str());
        }
        if types.len() == 1 {
            return hits.clone();
        }
        return Vec::new();
    }

    let mut segs = call.path.clone();
    // `use` alias on the first segment.
    if let Some(expansion) = wf.aliases.get(&segs[0]) {
        let mut new = expansion.clone();
        new.extend(segs.drain(1..));
        segs = new;
    }
    // Leading `crate`/`self`/`super` pin the caller's crate.
    while matches!(segs.first().map(String::as_str), Some("crate" | "self" | "super")) {
        segs.remove(0);
    }
    if segs.is_empty() {
        return Vec::new();
    }
    // A workspace lib name routes to its crate; `std` & friends leave
    // the workspace entirely.
    let mut target_crate = wf.crate_key.clone();
    if let Some(key) = ws.lib_names.get(&segs[0]) {
        target_crate = key.clone();
        segs.remove(0);
    } else if matches!(segs[0].as_str(), "std" | "core" | "alloc") {
        return Vec::new();
    }
    if segs.is_empty() {
        return Vec::new();
    }
    let name = segs.last().cloned().unwrap_or_default();
    // `Type::method` / `Self::method`.
    if segs.len() >= 2 {
        let ty = segs[segs.len() - 2].clone();
        let ty = if ty == "Self" {
            match &caller.self_type {
                Some(t) => t.clone(),
                None => return Vec::new(),
            }
        } else {
            ty
        };
        if ty.chars().next().is_some_and(|c| c.is_uppercase()) {
            return type_method.get(&(ty, name)).cloned().unwrap_or_default();
        }
    }
    // Free function by crate-wide name (module segments are ignored —
    // the documented same-crate heuristic).
    free_by_crate
        .get(&(target_crate, name))
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key_of("crates/serve/src/server.rs"), "crates/serve");
        assert_eq!(crate_key_of("vendor/rayon/src/lib.rs"), "vendor/rayon");
        assert_eq!(crate_key_of("src/lib.rs"), "src");
        assert_eq!(crate_key_of("examples/demo.rs"), "examples");
    }

    #[test]
    fn same_crate_and_cross_crate_edges() {
        let ws = Workspace::from_sources(&[
            (
                "crates/a/src/lib.rs",
                "use lsi_b::remote;\npub fn entry() { local(); remote(); }\nfn local() {}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn remote() {}\n"),
        ]);
        let g = CallGraph::build(&ws);
        let entry = g.find_fn(&ws, "entry", None)[0];
        let local = g.find_fn(&ws, "local", None)[0];
        let remote = g.find_fn(&ws, "remote", None)[0];
        let targets: Vec<usize> = g.out[entry].iter().map(|&e| g.edges[e].to).collect();
        assert!(targets.contains(&local));
        assert!(targets.contains(&remote));
    }

    #[test]
    fn self_method_resolution_beats_any_impl() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\n\
             impl B {\n    fn step(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&ws);
        let go = g.find_fn(&ws, "go", None)[0];
        let targets: Vec<&str> = g.out[go]
            .iter()
            .map(|&e| g.nodes[g.edges[e].to].label.as_str())
            .collect();
        assert_eq!(targets, ["crates/a::A::step"], "pinned to A, not B");
    }

    #[test]
    fn unknown_and_std_paths_make_no_edges() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "pub fn f() { std::mem::drop(1); String::new(); no_such_fn_anywhere(); }\n",
        )]);
        let g = CallGraph::build(&ws);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn contained_edges_stop_panic_propagation() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "use std::panic::catch_unwind;\n\
             pub fn safe_entry() { let _ = catch_unwind(|| scary()); }\n\
             pub fn bad_entry() { scary(); }\n\
             fn scary() { panic!(\"boom\"); }\n",
        )]);
        let g = CallGraph::build(&ws);
        let reach = g.panic_reach(&ws);
        let safe = g.find_fn(&ws, "safe_entry", None)[0];
        let bad = g.find_fn(&ws, "bad_entry", None)[0];
        let scary = g.find_fn(&ws, "scary", None)[0];
        assert!(reach.reachable[scary]);
        assert!(reach.reachable[bad]);
        assert!(!reach.reachable[safe], "catch_unwind contains the panic");
        let w = g.witness(&ws, &reach, bad);
        assert!(w.contains("bad_entry → scary"), "witness path: {w}");
        assert!(w.contains("panic!"), "witness names the site: {w}");
    }

    #[test]
    fn dot_and_json_exports_cover_nodes_and_edges() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let dot = g.to_dot(&ws);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("crates/a::a"));
        assert!(dot.contains("->"));
        let json = g.to_json(&ws).to_string_pretty();
        assert!(json.contains("\"nodes\""));
        assert!(json.contains("\"edges\""));
    }
}
