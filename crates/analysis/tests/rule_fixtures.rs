//! Per-rule fixture tests: each rule gets at least one positive
//! fixture (must fire) and negative fixtures (must stay silent) that
//! pin down the token-awareness the old shell greps lacked.

use lsi_analyze::{rule_by_name, SourceFile};

/// Run one rule over an in-memory file, returning 1-based hit lines.
fn hits(rule: &str, rel_path: &str, src: &str) -> Vec<usize> {
    let rule = rule_by_name(rule).expect("rule exists");
    rule.check(&SourceFile::from_source(rel_path, src))
        .into_iter()
        .map(|f| f.line)
        .collect()
}

const LIB: &str = "crates/core/src/fixture.rs";

// ------------------------------------------------------------------
// unsafe-audit
// ------------------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(hits("unsafe-audit", LIB, src), vec![2]);
}

#[test]
fn unsafe_with_safety_comment_is_silent() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    \
               // SAFETY: caller guarantees p is valid for reads.\n    \
               unsafe { *p }\n}\n";
    assert!(hits("unsafe-audit", LIB, src).is_empty());
}

#[test]
fn unsafe_in_string_or_test_code_is_silent() {
    let in_string = "let s = \"unsafe { }\";\n";
    assert!(hits("unsafe-audit", LIB, in_string).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    assert!(hits("unsafe-audit", LIB, in_test).is_empty());
}

#[test]
fn doc_safety_section_counts_as_justification() {
    let src = "/// Dereference `p`.\n///\n/// # Safety\n/// `p` must be valid.\n\
               pub unsafe fn f(p: *const u8) -> u8 {\n    *p\n}\n";
    assert!(hits("unsafe-audit", LIB, src).is_empty());
}

// ------------------------------------------------------------------
// panic-surface
// ------------------------------------------------------------------

#[test]
fn unwrap_in_library_code_fires() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert_eq!(hits("panic-surface", LIB, src), vec![2]);
}

#[test]
fn every_panic_pattern_fires() {
    for pat in ["v.expect(\"x\")", "panic!(\"x\")", "unreachable!()", "todo!()"] {
        let src = format!("pub fn f(v: Option<u8>) {{\n    {pat};\n}}\n");
        assert_eq!(hits("panic-surface", LIB, &src), vec![2], "pattern {pat}");
    }
}

#[test]
fn unwrap_in_tests_strings_and_comments_is_silent() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
               Some(1).unwrap();\n    }\n}\n";
    assert!(hits("panic-surface", LIB, src).is_empty());
    let src = "// call .unwrap() here would be wrong\nlet s = \".unwrap()\";\n";
    assert!(hits("panic-surface", LIB, src).is_empty());
}

#[test]
fn bench_and_examples_are_exempt() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert!(hits("panic-surface", "crates/bench/src/main.rs", src).is_empty());
    assert!(hits("panic-surface", "examples/demo.rs", src).is_empty());
}

#[test]
fn unwrap_or_variants_are_not_unwrap() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or(0)\n}\n";
    assert!(hits("panic-surface", LIB, src).is_empty());
}

// ------------------------------------------------------------------
// float-safety
// ------------------------------------------------------------------

#[test]
fn float_literal_equality_fires() {
    assert_eq!(hits("float-safety", LIB, "fn f(x: f64) -> bool { x == 0.0 }\n"), vec![1]);
    assert_eq!(hits("float-safety", LIB, "fn f(x: f64) -> bool { x != 1.5e-3 }\n"), vec![1]);
}

#[test]
fn partial_cmp_unwrap_fires_total_alternatives_do_not() {
    let bad = "fn s(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert_eq!(hits("float-safety", LIB, bad), vec![2]);
    let good = "fn s(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(hits("float-safety", LIB, good).is_empty());
    let guarded = "fn s(v: &mut [f64]) {\n    \
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
    assert!(hits("float-safety", LIB, guarded).is_empty());
}

#[test]
fn integer_comparisons_and_ranges_are_silent() {
    assert!(hits("float-safety", LIB, "fn f(x: usize) -> bool { x == 0 }\n").is_empty());
    assert!(hits("float-safety", LIB, "fn f(x: u32) -> bool { x == 0x1F }\n").is_empty());
    assert!(hits("float-safety", LIB, "let r = 0.0..1.0;\n").is_empty());
}

// ------------------------------------------------------------------
// atomics-audit
// ------------------------------------------------------------------

#[test]
fn ordering_without_comment_fires() {
    let src = "fn f(v: &AtomicU64) -> u64 {\n    v.load(Ordering::Relaxed)\n}\n";
    assert_eq!(hits("atomics-audit", LIB, src), vec![2]);
}

#[test]
fn ordering_with_nearby_comment_is_silent() {
    let src = "fn f(v: &AtomicU64) -> u64 {\n    \
               // Relaxed: monotonic counter, no ordering needed.\n    \
               v.load(Ordering::Relaxed)\n}\n";
    assert!(hits("atomics-audit", LIB, src).is_empty());
}

#[test]
fn std_cmp_ordering_is_not_an_atomic() {
    let src = "fn f() -> Ordering {\n    Ordering::Equal.then(Ordering::Less)\n}\n";
    assert!(hits("atomics-audit", LIB, src).is_empty());
}

// ------------------------------------------------------------------
// eprintln-lint
// ------------------------------------------------------------------

#[test]
fn eprintln_fires_outside_obs() {
    assert_eq!(hits("eprintln-lint", LIB, "fn f() { eprintln!(\"x\"); }\n"), vec![1]);
    assert_eq!(hits("eprintln-lint", LIB, "fn f() { dbg!(1); }\n"), vec![1]);
}

#[test]
fn obs_crate_println_and_strings_are_silent() {
    let src = "fn f() { eprintln!(\"x\"); }\n";
    assert!(hits("eprintln-lint", "crates/obs/src/event.rs", src).is_empty());
    assert!(hits("eprintln-lint", LIB, "fn f() { println!(\"x\"); }\n").is_empty());
    assert!(hits("eprintln-lint", LIB, "let s = \"eprintln!\";\n").is_empty());
}

// ------------------------------------------------------------------
// threshold-provenance
// ------------------------------------------------------------------

#[test]
fn threshold_const_without_citation_fires() {
    let src = "/// Cut-over point.\npub const GEMM_PAR_MIN_FLOPS: usize = 1 << 20;\n";
    assert_eq!(hits("threshold-provenance", LIB, src), vec![2]);
    let undocumented = "pub const PAR_NNZ_THRESHOLD: usize = 50_000;\n";
    assert_eq!(hits("threshold-provenance", LIB, undocumented), vec![1]);
}

#[test]
fn threshold_const_citing_calibration_is_silent() {
    let src = "/// Cut-over measured with the perf_kernels calibration\n\
               /// harness (`cargo run --release -p lsi-bench`).\n\
               pub const GEMM_PAR_MIN_FLOPS: usize = 1 << 20;\n";
    assert!(hits("threshold-provenance", LIB, src).is_empty());
}

#[test]
fn non_threshold_consts_are_silent() {
    let src = "pub const MAX_ITERS: usize = 300;\n";
    assert!(hits("threshold-provenance", LIB, src).is_empty());
}

// ------------------------------------------------------------------
// metric-naming
// ------------------------------------------------------------------

#[test]
fn bad_metric_names_fire() {
    // camelCase segment.
    let src = "fn f() { lsi_obs::count(\"query.topK.count\", 1); }\n";
    assert_eq!(hits("metric-naming", LIB, src), vec![1]);
    // Space in a span path.
    let src = "fn f() { let _s = lsi_obs::span(\"build svd\"); }\n";
    assert_eq!(hits("metric-naming", LIB, src), vec![1]);
    // Empty segment from a doubled dot.
    let src = "fn f() { lsi_obs::observe(\"query..us\", 1.0); }\n";
    assert_eq!(hits("metric-naming", LIB, src), vec![1]);
    // Counters need stage.metric.unit, not a bare word.
    let src = "fn f(r: &lsi_obs::Registry) { r.counter(\"hits\").inc(); }\n";
    assert_eq!(hits("metric-naming", LIB, src), vec![1]);
}

#[test]
fn conforming_metric_names_are_silent() {
    let src = "fn f(r: &lsi_obs::Registry) {\n    \
               lsi_obs::count(\"text.vocab.terms.count\", 1);\n    \
               lsi_obs::observe(\"query.time.us\", 1.0);\n    \
               let _s = lsi_obs::span(\"build.svd.lanczos\");\n    \
               let _t = lsi_obs::span(\"query\");\n    \
               r.histogram(\"sparse.matvec.us\").record(2.0);\n}\n";
    assert!(hits("metric-naming", LIB, src).is_empty());
}

#[test]
fn format_placeholders_collapse_to_one_segment() {
    let good = "fn f(n: &str) { lsi_obs::count(&format!(\"fault.fired.{n}.count\"), 1); }\n";
    assert!(hits("metric-naming", LIB, good).is_empty());
    let bad = "fn f(n: &str) { lsi_obs::count(&format!(\"Fault.{n}.count\"), 1); }\n";
    assert_eq!(hits("metric-naming", LIB, bad), vec![1]);
}

#[test]
fn dynamic_names_and_test_code_are_silent() {
    // A plain variable first argument is out of scope.
    let src = "fn f(name: &str) { lsi_obs::count(name, 1); }\n";
    assert!(hits("metric-naming", LIB, src).is_empty());
    // Names inside test code are exempt like every other rule.
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { lsi_obs::count(\"BAD NAME\", 1); }\n}\n";
    assert!(hits("metric-naming", LIB, src).is_empty());
}

#[test]
fn metric_name_on_continuation_line_is_checked() {
    let src = "fn f() {\n    lsi_obs::count(\n        \"query.topK.count\",\n        1,\n    );\n}\n";
    assert_eq!(hits("metric-naming", LIB, src), vec![2]);
}
