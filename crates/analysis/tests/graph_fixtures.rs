//! Per-rule fixtures for the interprocedural (graph) rules, in the
//! same positive/negative style as `rule_fixtures.rs`: each rule gets
//! fixtures that must fire and fixtures that must stay silent, pinning
//! the resolution and propagation semantics documented in DESIGN.md
//! §3j.

use lsi_analyze::graph::{CallGraph, Workspace};
use lsi_analyze::graph_rules::graph_rule_by_name;

/// Run one graph rule over an in-memory workspace, returning
/// `(file, line)` hit pairs in finding order.
fn hits(rule: &str, entries: &[(&str, &str)]) -> Vec<(String, usize)> {
    let ws = Workspace::from_sources(entries);
    let graph = CallGraph::build(&ws);
    graph_rule_by_name(rule)
        .expect("graph rule exists")
        .check(&ws, &graph)
        .into_iter()
        .map(|f| (f.file, f.line))
        .collect()
}

/// Finding messages, for fixtures that pin witness-path rendering.
fn messages(rule: &str, entries: &[(&str, &str)]) -> Vec<String> {
    let ws = Workspace::from_sources(entries);
    let graph = CallGraph::build(&ws);
    graph_rule_by_name(rule)
        .expect("graph rule exists")
        .check(&ws, &graph)
        .into_iter()
        .map(|f| f.message)
        .collect()
}

const LIB: &str = "crates/core/src/fixture.rs";

// ------------------------------------------------------------------
// panic-reachability
// ------------------------------------------------------------------

#[test]
fn pub_fn_reaching_unwrap_transitively_fires() {
    let src = "pub fn api(v: Option<u8>) -> u8 {\n    inner(v)\n}\n\
               fn inner(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    // Only the pub entry point is flagged, at its definition; the
    // private fn is panic-surface's business.
    assert_eq!(
        hits("panic-reachability", &[(LIB, src)]),
        vec![(LIB.to_string(), 1)]
    );
    let msgs = messages("panic-reachability", &[(LIB, src)]);
    assert!(
        msgs[0].contains("api") && msgs[0].contains("inner") && msgs[0].contains(".unwrap()"),
        "witness path names the hop and the site: {msgs:?}"
    );
}

#[test]
fn cross_crate_panic_path_fires() {
    let a = "use lsi_util::boom;\npub fn entry() {\n    boom();\n}\n";
    let b = "pub fn boom() {\n    panic!(\"down\");\n}\n";
    let found = hits(
        "panic-reachability",
        &[("crates/app/src/lib.rs", a), ("crates/util/src/lib.rs", b)],
    );
    // Both pub fns reach the panic: `boom` directly, `entry` through
    // the cross-crate edge the `use` alias resolves.
    assert!(
        found.contains(&("crates/app/src/lib.rs".to_string(), 2)),
        "caller flagged through the cross-crate edge: {found:?}"
    );
    assert!(
        found.contains(&("crates/util/src/lib.rs".to_string(), 1)),
        "panicking pub fn flagged directly: {found:?}"
    );
}

#[test]
fn catch_unwind_containment_silences() {
    let src = "use std::panic::catch_unwind;\n\
               pub fn api() {\n    let _ = catch_unwind(|| inner());\n}\n\
               fn inner() {\n    panic!(\"contained\");\n}\n";
    assert!(
        hits("panic-reachability", &[(LIB, src)]).is_empty(),
        "a catch_unwind boundary stops propagation"
    );
}

#[test]
fn indexing_only_paths_are_contract_only() {
    // Slice indexing can panic, but flagging every pub fn that indexes
    // would drown the signal — indexing feeds only the serve-path
    // contract, not the warning tier.
    let src = "pub fn api(v: &[u8]) -> u8 {\n    inner(v)\n}\n\
               fn inner(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert!(hits("panic-reachability", &[(LIB, src)]).is_empty());
}

#[test]
fn panic_sites_in_test_code_do_not_seed() {
    let src = "pub fn api() {}\n\
               #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
               Option::<u8>::None.unwrap();\n    }\n}\n";
    assert!(hits("panic-reachability", &[(LIB, src)]).is_empty());
}

#[test]
fn fault_crate_sites_do_not_seed() {
    // Fault-injection panics are intentional and disarmed by default;
    // they must not make every instrumented caller "panic-reachable".
    let fault = "pub fn fire() {\n    panic!(\"injected\");\n}\n";
    let app = "use lsi_fault::fire;\npub fn entry() {\n    fire();\n}\n";
    assert!(hits(
        "panic-reachability",
        &[
            ("crates/fault/src/lib.rs", fault),
            ("crates/app/src/lib.rs", app),
        ],
    )
    .is_empty());
}

#[test]
fn private_fns_are_not_flagged() {
    let src = "fn helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert!(hits("panic-reachability", &[(LIB, src)]).is_empty());
}

// ------------------------------------------------------------------
// unsafe-taint
// ------------------------------------------------------------------

#[test]
fn undocumented_unsafe_wrapper_fires_at_definition() {
    let src = "pub fn read(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(
        hits("unsafe-taint", &[(LIB, src)]),
        vec![(LIB.to_string(), 1)]
    );
}

#[test]
fn callers_of_undocumented_wrapper_are_tainted() {
    let src = "pub fn outer(p: *const u8) -> u8 {\n    wrapper(p)\n}\n\
               fn wrapper(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let found = hits("unsafe-taint", &[(LIB, src)]);
    // The wrapper's definition (line 4) and the call site that reaches
    // it (line 2) are both flagged.
    assert!(found.contains(&(LIB.to_string(), 4)), "{found:?}");
    assert!(found.contains(&(LIB.to_string(), 2)), "{found:?}");
}

#[test]
fn safety_comment_in_body_silences_wrapper_and_callers() {
    let src = "pub fn outer(p: *const u8) -> u8 {\n    wrapper(p)\n}\n\
               fn wrapper(p: *const u8) -> u8 {\n    \
               // SAFETY: callers pass a pointer valid for one read.\n    \
               unsafe { *p }\n}\n";
    assert!(hits("unsafe-taint", &[(LIB, src)]).is_empty());
}

#[test]
fn safety_doc_section_silences_pub_unsafe_fn() {
    let src = "/// Dereference `p`.\n///\n/// # Safety\n/// `p` must be valid for reads.\n\
               pub unsafe fn read(p: *const u8) -> u8 {\n    *p\n}\n";
    assert!(hits("unsafe-taint", &[(LIB, src)]).is_empty());
}

#[test]
fn pub_unsafe_fn_without_safety_doc_fires() {
    let src = "pub unsafe fn read(p: *const u8) -> u8 {\n    *p\n}\n";
    assert_eq!(
        hits("unsafe-taint", &[(LIB, src)]),
        vec![(LIB.to_string(), 1)]
    );
}

#[test]
fn unsafe_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 {\n        \
               unsafe { *p }\n    }\n}\n";
    assert!(hits("unsafe-taint", &[(LIB, src)]).is_empty());
}

// ------------------------------------------------------------------
// atomics-pairing
// ------------------------------------------------------------------

#[test]
fn release_store_without_acquire_fires() {
    let src = "pub fn publish(f: &AtomicBool) {\n    \
               f.ready.store(true, Ordering::Release);\n}\n\
               pub fn check(f: &AtomicBool) -> bool {\n    \
               f.ready.load(Ordering::Relaxed)\n}\n";
    assert_eq!(
        hits("atomics-pairing", &[(LIB, src)]),
        vec![(LIB.to_string(), 2)],
        "the Release store is unpaired; the Relaxed load is not itself flagged"
    );
}

#[test]
fn acquire_load_without_release_fires() {
    let src = "pub fn check(f: &AtomicBool) -> bool {\n    \
               f.ready.load(Ordering::Acquire)\n}\n\
               pub fn bump(f: &AtomicBool) {\n    \
               f.ready.store(true, Ordering::Relaxed);\n}\n";
    assert_eq!(
        hits("atomics-pairing", &[(LIB, src)]),
        vec![(LIB.to_string(), 2)]
    );
}

#[test]
fn paired_release_acquire_is_silent() {
    let src = "pub fn publish(f: &AtomicBool) {\n    \
               f.ready.store(true, Ordering::Release);\n}\n\
               pub fn check(f: &AtomicBool) -> bool {\n    \
               f.ready.load(Ordering::Acquire)\n}\n";
    assert!(hits("atomics-pairing", &[(LIB, src)]).is_empty());
}

#[test]
fn seqcst_satisfies_both_sides() {
    let src = "pub fn publish(f: &AtomicBool) {\n    \
               f.ready.store(true, Ordering::SeqCst);\n}\n\
               pub fn check(f: &AtomicBool) -> bool {\n    \
               f.ready.load(Ordering::SeqCst)\n}\n";
    assert!(hits("atomics-pairing", &[(LIB, src)]).is_empty());
}

#[test]
fn acqrel_rmw_pairs_with_release_store() {
    let src = "pub fn publish(f: &AtomicU64) {\n    \
               f.state.store(1, Ordering::Release);\n}\n\
               pub fn claim(f: &AtomicU64) -> u64 {\n    \
               f.state.fetch_or(2, Ordering::AcqRel)\n}\n";
    assert!(hits("atomics-pairing", &[(LIB, src)]).is_empty());
}

#[test]
fn relaxed_only_counters_are_silent() {
    let src = "pub fn bump(c: &AtomicU64) {\n    \
               c.count.fetch_add(1, Ordering::Relaxed);\n}\n\
               pub fn read(c: &AtomicU64) -> u64 {\n    \
               c.count.load(Ordering::Relaxed)\n}\n";
    assert!(hits("atomics-pairing", &[(LIB, src)]).is_empty());
}

#[test]
fn distinct_receivers_do_not_pair() {
    // `a`'s Release never pairs with `b`'s Acquire: both sides are
    // unpaired and both sites are flagged.
    let src = "pub fn publish(x: &AtomicBool) {\n    \
               x.armed.store(true, Ordering::Release);\n}\n\
               pub fn check(y: &AtomicBool) -> bool {\n    \
               y.sealed.load(Ordering::Acquire)\n}\n";
    let found = hits("atomics-pairing", &[(LIB, src)]);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.contains(&(LIB.to_string(), 2)));
    assert!(found.contains(&(LIB.to_string(), 5)));
}
