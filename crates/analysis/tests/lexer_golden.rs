//! Golden tests for the lexer on a representative Rust source: the
//! masked code/comment views and the test-region tracking must agree
//! with a hand-derived reading of the fixture.

use lsi_analyze::LexedFile;

const FIXTURE: &str = r##"//! Inner doc line.
use std::fmt;

/* block /* nested */ comment .unwrap() */
pub fn lifetime<'a>(x: &'a str) -> char {
    let c = 'x';
    let s = "literal // not a comment .unwrap()";
    let r = r#"raw "quoted" body"#; // trailing note
    c
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::lifetime("y").to_string();
    }
}
"##;

fn lexed() -> LexedFile {
    LexedFile::lex(FIXTURE)
}

/// Find the (unique) 0-based line whose raw source contains `needle`.
fn line_of(needle: &str) -> usize {
    let hits: Vec<usize> = FIXTURE
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits.len(), 1, "fixture needle `{needle}` not unique");
    hits[0]
}

#[test]
fn line_count_matches_source() {
    assert_eq!(lexed().lines.len(), FIXTURE.lines().count());
}

#[test]
fn inner_doc_line_is_doc_comment() {
    let f = lexed();
    let i = line_of("Inner doc line");
    assert!(f.lines[i].doc_comment);
    assert!(f.lines[i].comment.contains("Inner doc line"));
    assert!(!f.lines[i].code.contains("Inner"));
}

#[test]
fn nested_block_comment_is_comment_not_code() {
    let f = lexed();
    let i = line_of("block /* nested");
    assert!(f.lines[i].comment.contains(".unwrap()"));
    assert!(!f.lines[i].code.contains(".unwrap()"));
    // Nesting: the first `*/` must not terminate the comment early,
    // so the following code line is still real code.
    let j = line_of("pub fn lifetime");
    assert!(f.lines[j].code.contains("pub fn lifetime"));
}

#[test]
fn lifetime_tick_is_code_char_literal_is_masked() {
    let f = lexed();
    let sig = line_of("pub fn lifetime");
    assert!(f.lines[sig].code.contains("<'a>"), "lifetime must stay code");
    let lit = line_of("let c =");
    assert!(!f.lines[lit].code.contains('x'), "char literal body masked");
}

#[test]
fn string_contents_never_reach_the_code_view() {
    let f = lexed();
    let i = line_of("not a comment");
    assert!(f.lines[i].code.contains("let s ="));
    assert!(!f.lines[i].code.contains(".unwrap()"));
    assert!(!f.lines[i].comment.contains("not a comment"));
}

#[test]
fn raw_string_masked_and_trailing_comment_seen() {
    let f = lexed();
    let i = line_of("trailing note");
    assert!(f.lines[i].code.contains("let r ="));
    assert!(!f.lines[i].code.contains("quoted"));
    assert!(f.lines[i].comment.contains("trailing note"));
}

#[test]
fn cfg_test_region_covers_the_module_and_nothing_else() {
    let f = lexed();
    let start = line_of("#[cfg(test)]");
    for (i, line) in f.lines.iter().enumerate() {
        if i >= start {
            assert!(line.in_test, "line {i} should be in the test region");
        } else {
            assert!(!line.in_test, "line {i} should be library code");
        }
    }
}

/// A second fixture for the generic-signature edge cases: braces that
/// live *inside* angle brackets (const-generic defaults, const
/// arguments in `where` clauses) must not be mistaken for an item
/// body, and shifts/comparisons in const initializers must not open
/// phantom generics that swallow the terminating `;`.
const GENERICS_FIXTURE: &str = r##"pub struct Ring<const N: usize = { 8 }> {
    data: [u8; N],
}

#[cfg(test)]
struct Probe<const N: usize = { 4 }> {
    slots: [u8; N],
}

#[cfg(test)]
impl<const N: usize> Probe<N>
where
    Ring<{ N * 2 }>: Sized,
{
    fn double(&self) -> usize {
        N * 2
    }
}

#[cfg(test)]
const SHIFTED: usize = 1 << 3;

pub fn shift_mask<const N: usize>(x: [u8; N >> 1]) -> usize {
    x.len() << 1
}
"##;

fn generics_line_of(needle: &str) -> usize {
    let hits: Vec<usize> = GENERICS_FIXTURE
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits.len(), 1, "generics needle `{needle}` not unique");
    hits[0]
}

#[test]
fn const_generic_default_braces_do_not_end_the_test_region() {
    let f = LexedFile::lex(GENERICS_FIXTURE);
    // The `{ 4 }` default must not be taken for the struct body: the
    // real body (the `slots` field and its closing brace) is test code.
    assert!(f.lines[generics_line_of("struct Probe")].in_test);
    assert!(f.lines[generics_line_of("slots:")].in_test, "struct body is in the region");
    // The untagged `Ring` struct above stays library code even though
    // its own default is `{ 8 }`.
    assert!(!f.lines[generics_line_of("pub struct Ring")].in_test);
    assert!(!f.lines[generics_line_of("data:")].in_test);
}

#[test]
fn where_clause_const_argument_braces_are_tracked() {
    let f = LexedFile::lex(GENERICS_FIXTURE);
    // `Ring<{ N * 2 }>: Sized` sits in the impl's `where` clause; its
    // braces must not terminate the `#[cfg(test)]` impl early.
    assert!(f.lines[generics_line_of("Ring<{ N * 2 }>")].in_test);
    assert!(f.lines[generics_line_of("fn double")].in_test, "impl body is in the region");
    // And the region closes with the impl: the shift fn below is lib.
    assert!(!f.lines[generics_line_of("pub fn shift_mask")].in_test);
    assert!(!f.lines[generics_line_of("x.len()")].in_test);
}

#[test]
fn shift_in_const_initializer_does_not_swallow_the_terminator() {
    let f = LexedFile::lex(GENERICS_FIXTURE);
    // `1 << 3` must not open phantom generics: the region is exactly
    // the const item, and the following fn signature (with `N >> 1`
    // inside an array type) is library code.
    assert!(f.lines[generics_line_of("const SHIFTED")].in_test);
    assert!(!f.lines[generics_line_of("pub fn shift_mask")].in_test);
}

#[test]
fn joined_code_maps_offsets_back_to_lines() {
    let f = lexed();
    let (code, starts) = f.joined_code();
    let off = code.find("pub fn lifetime").expect("signature present");
    assert_eq!(
        LexedFile::line_of_offset(&starts, off),
        FIXTURE
            .lines()
            .position(|l| l.contains("pub fn lifetime"))
            .expect("in fixture")
    );
}
