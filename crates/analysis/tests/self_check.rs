//! Self-check: the analyzer run over the live workspace, compared
//! against the committed baseline, must be clean — exactly what the
//! `--ci` stage in scripts/verify.sh asserts. Plus an end-to-end
//! engine test on a synthetic workspace (walking, suppression, and
//! the baseline ratchet round-trip).

use std::fs;
use std::path::{Path, PathBuf};

use lsi_analyze::{analyze, compare, engine, Baseline};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn live_workspace_has_no_findings_above_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze(&root).expect("analysis runs");
    let baseline =
        Baseline::load(&root.join(engine::BASELINE_FILE)).expect("baseline parses");
    assert!(
        baseline.exists,
        "analysis_baseline.json must be committed at the workspace root"
    );
    let cmp = compare(&analysis, &baseline);
    let gaps: Vec<String> = cmp
        .over
        .iter()
        .map(|g| format!("[{}] {}: {} > {}", g.rule, g.file, g.current, g.baseline))
        .collect();
    assert!(
        gaps.is_empty(),
        "findings above baseline (fix them or justify with an \
         `lsi-analyze: allow(..)` comment):\n{}",
        gaps.join("\n")
    );
}

#[test]
fn live_baseline_never_counts_findings_that_no_longer_exist() {
    // Ratchet hygiene: a perfectly clean pair should be paid down, but
    // a *stale file* in the baseline (renamed or deleted) is dead
    // weight that hides regressions — reject it outright.
    let root = workspace_root();
    let baseline =
        Baseline::load(&root.join(engine::BASELINE_FILE)).expect("baseline parses");
    for (rule, file) in baseline.counts.keys() {
        assert!(
            root.join(file).is_file(),
            "baseline entry [{rule}] {file} points at a file that no longer exists; \
             regenerate with `lsi-analyze --write-baseline`"
        );
    }
}

/// Build a throwaway workspace under the target dir (kept out of the
/// analyzer's own walk roots) and exercise the engine end to end.
#[test]
fn synthetic_workspace_walk_suppression_and_ratchet() {
    let dir = workspace_root().join("target/tmp-analysis-selftest");
    let src_dir = dir.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    // Two findings: one live, one suppressed with the escape hatch.
    fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 {\n\
         \x20   // lsi-analyze: allow(panic-surface)\n\
         \x20   let a = v.unwrap();\n\
         \x20   let b: Option<u8> = None;\n\
         \x20   a + b.unwrap()\n\
         }\n",
    )
    .expect("write source");
    // A dot-dir and a target dir that must both be skipped.
    fs::create_dir_all(dir.join("crates/demo/target")).expect("mkdir");
    fs::write(dir.join("crates/demo/target/skip.rs"), "fn f() { x.unwrap(); }\n")
        .expect("write skipped");
    fs::create_dir_all(dir.join("crates/.hidden")).expect("mkdir");
    fs::write(dir.join("crates/.hidden/skip.rs"), "fn f() { x.unwrap(); }\n")
        .expect("write skipped");

    let analysis = analyze(&dir).expect("analysis runs");
    assert_eq!(analysis.files_scanned, 1, "target/ and dot-dirs are skipped");
    // Two live findings: the unsuppressed unwrap (panic-surface) and the
    // interprocedural panic-reachability warning on the pub fn itself.
    assert_eq!(
        analysis.findings.len(),
        2,
        "one unwrap suppressed, one live, plus the graph warning: {:?}",
        analysis.findings
    );
    let surface = analysis
        .findings
        .iter()
        .find(|f| f.rule == "panic-surface")
        .expect("panic-surface finding present");
    assert_eq!(surface.line, 5);
    let reach = analysis
        .findings
        .iter()
        .find(|f| f.rule == "panic-reachability")
        .expect("panic-reachability finding present");
    assert_eq!(reach.line, 1, "graph finding anchors at the fn definition");

    // No baseline: both live findings are above baseline.
    let empty = Baseline::load(&dir.join(engine::BASELINE_FILE)).expect("missing is ok");
    assert!(!empty.exists);
    assert_eq!(compare(&analysis, &empty).over.len(), 2);

    // Write the baseline; the same analysis is now clean.
    let written = Baseline::from_analysis(&analysis);
    let path = dir.join(engine::BASELINE_FILE);
    written.save(&path).expect("baseline saves");
    let reloaded = Baseline::load(&path).expect("baseline reloads");
    assert_eq!(reloaded.counts, written.counts, "round-trips through JSON");
    let cmp = compare(&analysis, &reloaded);
    assert!(cmp.over.is_empty());

    // A new finding in the same file trips the ratchet.
    fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 {\n\
         \x20   v.unwrap() + v.unwrap()\n\
         }\n",
    )
    .expect("rewrite source");
    let worse = analyze(&dir).expect("analysis runs");
    let cmp = compare(&worse, &reloaded);
    assert_eq!(cmp.over.len(), 1);
    assert_eq!(cmp.over[0].current, 2);
    assert_eq!(cmp.over[0].baseline, 1);

    fs::remove_dir_all(&dir).expect("cleanup");
}
