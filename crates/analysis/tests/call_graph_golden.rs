//! Golden test: one synthetic multi-crate workspace with a known call
//! graph. Pins the node set, the exact edge set (including containment
//! and method-fallback flags), the panic-reachable set, and the dot /
//! JSON exports against hand-derived expectations, so resolution
//! changes show up as a reviewed diff here rather than as silent
//! finding-count drift.

use std::collections::BTreeSet;

use lsi_analyze::graph::{CallGraph, Workspace};

const APP: &str = "crates/app/src/lib.rs";
const UTIL: &str = "crates/util/src/lib.rs";

fn fixture() -> Workspace {
    Workspace::from_sources(&[
        (
            APP,
            "use std::panic::catch_unwind;\n\
             use lsi_util::helper;\n\
             pub struct Widget;\n\
             impl Widget {\n\
             \x20   pub fn refresh(&self) {}\n\
             }\n\
             pub fn entry(w: &Widget) {\n\
             \x20   helper();\n\
             \x20   local_ok();\n\
             \x20   w.refresh();\n\
             }\n\
             pub fn guarded() {\n\
             \x20   let _ = catch_unwind(|| helper());\n\
             }\n\
             fn local_ok() {}\n",
        ),
        (
            UTIL,
            "pub fn helper() {\n\
             \x20   deeper();\n\
             }\n\
             fn deeper() {\n\
             \x20   panic!(\"boom\");\n\
             }\n",
        ),
    ])
}

/// Resolve a node id to its fn name (label formats stay free to
/// change; fn names are the stable currency of this test).
fn name_of(ws: &Workspace, graph: &CallGraph, node: usize) -> String {
    let n = &graph.nodes[node];
    ws.files[n.file].items.fns[n.item].name.clone()
}

#[test]
fn node_set_matches() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let names: BTreeSet<String> = (0..graph.nodes.len())
        .map(|i| name_of(&ws, &graph, i))
        .collect();
    let expected: BTreeSet<String> = ["refresh", "entry", "guarded", "local_ok", "helper", "deeper"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(names, expected);
}

#[test]
fn edge_set_matches_exactly() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    // (caller, callee, contained, via-method-fallback)
    let edges: BTreeSet<(String, String, bool, bool)> = graph
        .edges
        .iter()
        .map(|e| {
            (
                name_of(&ws, &graph, e.from),
                name_of(&ws, &graph, e.to),
                e.contained,
                e.method,
            )
        })
        .collect();
    let expected: BTreeSet<(String, String, bool, bool)> = [
        // entry() fans out: a cross-crate path call, a same-crate free
        // call, and a method call resolved by unambiguous fallback.
        ("entry", "helper", false, false),
        ("entry", "local_ok", false, false),
        ("entry", "refresh", false, true),
        // guarded()'s only call sits inside catch_unwind.
        ("guarded", "helper", true, false),
        // util-internal edge.
        ("helper", "deeper", false, false),
    ]
    .iter()
    .map(|&(a, b, c, m)| (a.to_string(), b.to_string(), c, m))
    .collect();
    assert_eq!(edges, expected);
}

#[test]
fn panic_reachable_set_matches() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let reach = graph.panic_reach(&ws);
    let reachable: BTreeSet<String> = (0..graph.nodes.len())
        .filter(|&i| reach.reachable[i])
        .map(|i| name_of(&ws, &graph, i))
        .collect();
    // deeper panics directly; helper and entry reach it through
    // uncontained edges. guarded is saved by catch_unwind; local_ok
    // and refresh are clean leaves.
    let expected: BTreeSet<String> = ["deeper", "helper", "entry"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(reachable, expected);
}

#[test]
fn witness_path_walks_to_the_site() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let reach = graph.panic_reach(&ws);
    let entry = (0..graph.nodes.len())
        .find(|&i| name_of(&ws, &graph, i) == "entry")
        .expect("entry node exists");
    let witness = graph.witness(&ws, &reach, entry);
    for needle in ["entry", "helper", "deeper", "panic!"] {
        assert!(witness.contains(needle), "witness {witness:?} lacks {needle}");
    }
}

#[test]
fn exports_carry_the_graph() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);

    let dot = graph.to_dot(&ws);
    assert!(dot.starts_with("digraph"), "{dot}");
    for name in ["entry", "helper", "deeper"] {
        assert!(dot.contains(name), "dot export lacks {name}");
    }
    // The contained edge renders dashed; the method edge grey.
    assert!(dot.contains("dashed"), "{dot}");

    let json = graph.to_json(&ws);
    let Some(lsi_obs::Json::Arr(nodes)) = json.get("nodes") else {
        panic!("nodes array missing: {json:?}");
    };
    assert_eq!(nodes.len(), graph.nodes.len());
    let Some(lsi_obs::Json::Arr(edges)) = json.get("edges") else {
        panic!("edges array missing: {json:?}");
    };
    assert_eq!(edges.len(), graph.edges.len());
}
