//! SVD result type and the dense-SVD front door.

use serde::{Deserialize, Serialize};

use crate::jacobi::jacobi_svd;
use crate::matrix::DenseMatrix;
use crate::vecops;
use crate::Result;

/// A (thin) singular value decomposition `A = U diag(s) V^T`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svd {
    /// Left singular vectors, one per column (`m x r`).
    pub u: DenseMatrix,
    /// Singular values, descending and nonnegative (`r` of them).
    pub s: Vec<f64>,
    /// Right singular vectors, one per column (`n x r`).
    pub v: DenseMatrix,
}

impl Svd {
    /// Rank-`k` truncation (the paper's `A_k` of Eq. 2): keep the `k`
    /// largest singular triplets.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        Svd {
            u: self.u.truncate_cols(k),
            s: self.s[..k].to_vec(),
            v: self.v.truncate_cols(k),
        }
    }

    /// Number of retained triplets.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Numerical rank: number of singular values above
    /// `tol * sigma_1`.
    pub fn numerical_rank(&self, tol: f64) -> usize {
        let cutoff = self.s.first().copied().unwrap_or(0.0) * tol;
        self.s.iter().take_while(|&&x| x > cutoff).count()
    }

    /// Reconstruct the (possibly truncated) matrix `U diag(s) V^T`.
    pub fn reconstruct(&self) -> Result<DenseMatrix> {
        crate::ops::reconstruct(&self.u, &self.s, &self.v)
    }

    /// Normalize singular-vector signs so the largest-magnitude entry of
    /// each `u` column is positive (flipping the paired `v` column too).
    ///
    /// Singular vectors are only determined up to sign; this canonical
    /// form lets results be compared against published values such as
    /// the paper's Figure 5.
    pub fn sign_normalize(&mut self) {
        for j in 0..self.s.len() {
            if let Some((_, v)) = vecops::argmax_abs(self.u.col(j)) {
                if v < 0.0 {
                    vecops::scal(-1.0, self.u.col_mut(j));
                    vecops::scal(-1.0, self.v.col_mut(j));
                }
            }
        }
    }

    /// The paper's Theorem 2.2 error: `||A - A_k||_F^2 = sigma_{k+1}^2 +
    /// ... + sigma_r^2`, computed from the retained spectrum.
    pub fn truncation_error_fro(&self, k: usize) -> f64 {
        self.s.iter().skip(k).map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Dense SVD entry point (currently one-sided Jacobi; see
/// [`crate::bidiag::golub_kahan_svd`] for the independent alternative).
pub fn dense_svd(a: &DenseMatrix) -> Result<Svd> {
    jacobi_svd(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Svd {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
            vec![0.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
        ])
        .unwrap();
        dense_svd(&a).unwrap()
    }

    #[test]
    fn truncate_keeps_largest() {
        let svd = example();
        let t = svd.truncate(2);
        assert_eq!(t.s, vec![4.0, 3.0]);
        assert_eq!(t.u.ncols(), 2);
        assert_eq!(t.v.ncols(), 2);
        // Truncating beyond rank is a no-op.
        assert_eq!(svd.truncate(10).rank(), 3);
    }

    #[test]
    fn truncation_error_matches_theorem_2_2() {
        let svd = example();
        // ||A - A_1||_F = sqrt(3^2 + 2^2).
        assert!((svd.truncation_error_fro(1) - (13.0f64).sqrt()).abs() < 1e-12);
        assert!(svd.truncation_error_fro(3) < 1e-12);
    }

    #[test]
    fn numerical_rank_thresholds() {
        let svd = example();
        assert_eq!(svd.numerical_rank(1e-10), 3);
        assert_eq!(svd.numerical_rank(0.6), 2); // 4.0 and 3.0 exceed 0.6*4.0 = 2.4
        assert_eq!(svd.numerical_rank(0.8), 1); // only 4.0 exceeds 0.8*4.0 = 3.2
    }

    #[test]
    fn sign_normalize_makes_dominant_entries_positive() {
        let mut svd = example();
        // Force a negative column.
        vecops::scal(-1.0, svd.u.col_mut(0));
        vecops::scal(-1.0, svd.v.col_mut(0));
        let before = svd.reconstruct().unwrap();
        svd.sign_normalize();
        let after = svd.reconstruct().unwrap();
        // Reconstruction invariant under sign normalization.
        assert!(before.fro_distance(&after).unwrap() < 1e-12);
        for j in 0..svd.rank() {
            let (_, v) = vecops::argmax_abs(svd.u.col(j)).unwrap();
            assert!(v > 0.0);
        }
    }

    #[test]
    fn reconstruct_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let svd = dense_svd(&a).unwrap();
        assert!(svd.reconstruct().unwrap().fro_distance(&a).unwrap() < 1e-12);
    }
}
