//! Column-major dense matrix type.
//!
//! LSI stores term vectors (`U_k`) and document vectors (`V_k`) as dense
//! matrices whose *columns* are accessed together during query projection
//! and cosine ranking, so column-major storage keeps the hot loops
//! contiguous.

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// A dense, column-major, `f64` matrix.
///
/// Storage layout: entry `(i, j)` lives at `data[j * nrows + i]`, so each
/// column is a contiguous slice obtainable via [`DenseMatrix::col`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from a column-major data buffer.
    ///
    /// Returns an error if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "buffer of length {} cannot hold a {}x{} matrix",
                    data.len(),
                    nrows,
                    ncols
                ),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Build a matrix from row slices (each inner slice is one row).
    ///
    /// Returns an error if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(Error::DimensionMismatch {
                    context: format!("row {i} has length {} but row 0 has length {ncols}", r.len()),
                });
            }
        }
        let mut m = DenseMatrix::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Build a matrix whose columns are the given vectors.
    pub fn from_cols(cols: &[Vec<f64>]) -> Result<Self> {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, |c| c.len());
        for (j, c) in cols.iter().enumerate() {
            if c.len() != nrows {
                return Err(Error::DimensionMismatch {
                    context: format!(
                        "column {j} has length {} but column 0 has length {nrows}",
                        c.len()
                    ),
                });
            }
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for c in cols {
            data.extend_from_slice(c);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = v;
    }

    /// Add `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] += v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy of row `i` (non-contiguous in column-major storage).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self.get(i, j)).collect()
    }

    /// Borrowing view of row `i` — no allocation. The hot per-row
    /// operations (dot, norm, cosine) are available directly on the
    /// view and are bit-identical to running [`crate::vecops`] on a
    /// [`DenseMatrix::row`] copy.
    #[inline]
    pub fn row_view(&self, i: usize) -> RowView<'_> {
        debug_assert!(i < self.nrows);
        RowView {
            data: &self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            row: i,
        }
    }

    /// Iterator over column slices.
    pub fn cols(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.nrows.max(1)).take(self.ncols)
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying column-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            let cj = self.col(j);
            for (i, &v) in cj.iter().enumerate() {
                t.set(j, i, v);
            }
        }
        t
    }

    /// Keep only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> DenseMatrix {
        let k = k.min(self.ncols);
        DenseMatrix {
            nrows: self.nrows,
            ncols: k,
            data: self.data[..self.nrows * k].to_vec(),
        }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "hcat of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut data = Vec::with_capacity((self.ncols + other.ncols) * self.nrows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols + other.ncols,
            data,
        })
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.ncols {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "vcat of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows + other.nrows, self.ncols);
        for j in 0..self.ncols {
            out.col_mut(j)[..self.nrows].copy_from_slice(self.col(j));
            out.col_mut(j)[self.nrows..].copy_from_slice(other.col(j));
        }
        Ok(out)
    }

    /// Append a column to the right edge of the matrix.
    pub fn push_col(&mut self, col: &[f64]) -> Result<()> {
        if col.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "push_col of length {} onto matrix with {} rows",
                    col.len(),
                    self.nrows
                ),
            });
        }
        self.data.extend_from_slice(col);
        self.ncols += 1;
        Ok(())
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise difference norm `||self - other||_F`.
    ///
    /// Returns an error on shape mismatch.
    pub fn fro_distance(&self, other: &DenseMatrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                context: format!("fro_distance of {:?} with {:?}", self.shape(), other.shape()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sub-matrix copy: rows `r0..r1`, columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> DenseMatrix {
        assert!(r0 <= r1 && r1 <= self.nrows && c0 <= c1 && c1 <= self.ncols);
        let mut out = DenseMatrix::zeros(r1 - r0, c1 - c0);
        for j in c0..c1 {
            let src = &self.col(j)[r0..r1];
            out.col_mut(j - c0).copy_from_slice(src);
        }
        out
    }
}

/// A borrowed, strided view of one matrix row.
///
/// Rows of a column-major matrix are non-contiguous, so per-row
/// operations historically went through [`DenseMatrix::row`], paying
/// one `Vec<f64>` allocation per call — measurable in loops like the
/// thesaurus sweep (one row per vocabulary term per query) and the
/// document-norm refresh. The view walks the stride in place instead.
///
/// The arithmetic kernels ([`RowView::dot_slice`], [`RowView::nrm2`],
/// the cosines) replicate the exact accumulation structure of their
/// [`crate::vecops`] counterparts — same lane split, same scaling loop,
/// same operation order — so swapping a row copy for a view never
/// changes a result bit.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    data: &'a [f64],
    nrows: usize,
    ncols: usize,
    row: usize,
}

impl<'a> RowView<'a> {
    /// Number of entries (the matrix's column count).
    #[inline]
    pub fn len(&self) -> usize {
        self.ncols
    }

    /// True if the row has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ncols == 0
    }

    /// Entry `j` of the row.
    #[inline]
    pub fn get(&self, j: usize) -> f64 {
        debug_assert!(j < self.ncols);
        self.data[j * self.nrows + self.row]
    }

    /// Iterator over the row's entries.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        let (data, nrows, row) = (self.data, self.nrows, self.row);
        (0..self.ncols).map(move |j| data[j * nrows + row])
    }

    /// Materialize the row as a `Vec` (for callers that need a
    /// contiguous slice, e.g. as a GEMV operand).
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Dot product with a contiguous slice; mirrors [`crate::vecops::dot`]
    /// (four accumulation lanes plus tail) bit-for-bit.
    ///
    /// # Panics
    /// Panics in debug builds on length mismatch.
    pub fn dot_slice(&self, y: &[f64]) -> f64 {
        debug_assert_eq!(self.ncols, y.len());
        let mut acc = [0.0f64; 4];
        let chunks = self.ncols / 4;
        for c in 0..chunks {
            let j = 4 * c;
            acc[0] += self.get(j) * y[j];
            acc[1] += self.get(j + 1) * y[j + 1];
            acc[2] += self.get(j + 2) * y[j + 2];
            acc[3] += self.get(j + 3) * y[j + 3];
        }
        let mut tail = 0.0;
        for j in 4 * chunks..self.ncols {
            tail += self.get(j) * y[j];
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Dot product with another row view; same lane structure as
    /// [`RowView::dot_slice`].
    pub fn dot(&self, other: RowView<'_>) -> f64 {
        debug_assert_eq!(self.ncols, other.ncols);
        let mut acc = [0.0f64; 4];
        let chunks = self.ncols / 4;
        for c in 0..chunks {
            let j = 4 * c;
            acc[0] += self.get(j) * other.get(j);
            acc[1] += self.get(j + 1) * other.get(j + 1);
            acc[2] += self.get(j + 2) * other.get(j + 2);
            acc[3] += self.get(j + 3) * other.get(j + 3);
        }
        let mut tail = 0.0;
        for j in 4 * chunks..self.ncols {
            tail += self.get(j) * other.get(j);
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Euclidean norm; mirrors [`crate::vecops::nrm2`]'s overflow-guarded
    /// scaling loop bit-for-bit.
    pub fn nrm2(&self) -> f64 {
        let mut scale = 0.0f64;
        let mut ssq = 1.0f64;
        for j in 0..self.ncols {
            let v = self.get(j);
            // lsi-analyze: allow(float-safety) — exact zero skip mirrors vecops::nrm2 bit-for-bit; NaN is not skipped.
            if v != 0.0 {
                let a = v.abs();
                if scale < a {
                    ssq = 1.0 + ssq * (scale / a).powi(2);
                    scale = a;
                } else {
                    ssq += (a / scale).powi(2);
                }
            }
        }
        scale * ssq.sqrt()
    }

    /// Cosine with another row view; `0.0` if either row is zero
    /// (matching [`crate::vecops::cosine`]).
    pub fn cosine(&self, other: RowView<'_>) -> f64 {
        let nx = self.nrm2();
        let ny = other.nrm2();
        // lsi-analyze: allow(float-safety) — zero-norm guard matches vecops::cosine's contract exactly.
        if nx == 0.0 || ny == 0.0 {
            return 0.0;
        }
        self.dot(other) / (nx * ny)
    }

    /// Cosine with a contiguous slice; `0.0` if either operand is zero.
    pub fn cosine_slice(&self, y: &[f64]) -> f64 {
        let nx = self.nrm2();
        let ny = crate::vecops::nrm2(y);
        // lsi-analyze: allow(float-safety) — zero-norm guard matches vecops::cosine's contract exactly.
        if nx == 0.0 || ny == 0.0 {
            return 0.0;
        }
        self.dot_slice(y) / (nx * ny)
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_entries() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = DenseMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        m.add_to(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 8.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_cols_matches_indexing() {
        let m = DenseMatrix::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.col(0), &[1.0, 2.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn hcat_and_vcat() {
        let a = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.get(0, 1), 3.0);
        let v = a.vcat(&b).unwrap();
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn hcat_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 1);
        let b = DenseMatrix::zeros(3, 1);
        assert!(a.hcat(&b).is_err());
        assert!(a.vcat(&DenseMatrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn push_col_extends_matrix() {
        let mut m = DenseMatrix::zeros(2, 1);
        m.push_col(&[5.0, 6.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1), 6.0);
        assert!(m.push_col(&[1.0]).is_err());
    }

    #[test]
    fn fro_norm_of_known_matrix() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_cols_keeps_prefix() {
        let m = DenseMatrix::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let t = m.truncate_cols(2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let s = m.submatrix(1, 3, 0, 2);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(1, 1), 8.0);
    }

    #[test]
    fn row_view_matches_row_copy_bit_for_bit() {
        let mut m = DenseMatrix::zeros(5, 13);
        for i in 0..5 {
            for j in 0..13 {
                m.set(i, j, ((i * 13 + j) as f64 * 0.37).sin() * 1e3);
            }
        }
        let other: Vec<f64> = (0..13).map(|j| (j as f64 * 1.1).cos()).collect();
        for i in 0..5 {
            let copy = m.row(i);
            let view = m.row_view(i);
            assert_eq!(view.len(), 13);
            assert!(!view.is_empty());
            assert_eq!(view.to_vec(), copy);
            assert_eq!(view.nrm2(), crate::vecops::nrm2(&copy));
            assert_eq!(view.dot_slice(&other), crate::vecops::dot(&copy, &other));
            assert_eq!(view.cosine_slice(&other), crate::vecops::cosine(&copy, &other));
            for b in 0..5 {
                let copy_b = m.row(b);
                assert_eq!(view.dot(m.row_view(b)), crate::vecops::dot(&copy, &copy_b));
                assert_eq!(
                    view.cosine(m.row_view(b)),
                    crate::vecops::cosine(&copy, &copy_b)
                );
            }
        }
    }

    #[test]
    fn row_view_zero_row_cosine_is_zero() {
        let m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.row_view(0).cosine(m.row_view(1)), 0.0);
        assert_eq!(m.row_view(0).cosine_slice(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(m.row_view(0).nrm2(), 0.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = DenseMatrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn fro_distance_detects_difference() {
        let a = DenseMatrix::identity(2);
        let mut b = DenseMatrix::identity(2);
        b.set(0, 0, 4.0);
        assert!((a.fro_distance(&b).unwrap() - 3.0).abs() < 1e-12);
        assert!(a.fro_distance(&DenseMatrix::zeros(3, 3)).is_err());
    }
}
