//! Column-major dense matrix type.
//!
//! LSI stores term vectors (`U_k`) and document vectors (`V_k`) as dense
//! matrices whose *columns* are accessed together during query projection
//! and cosine ranking, so column-major storage keeps the hot loops
//! contiguous.

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// A dense, column-major, `f64` matrix.
///
/// Storage layout: entry `(i, j)` lives at `data[j * nrows + i]`, so each
/// column is a contiguous slice obtainable via [`DenseMatrix::col`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from a column-major data buffer.
    ///
    /// Returns an error if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "buffer of length {} cannot hold a {}x{} matrix",
                    data.len(),
                    nrows,
                    ncols
                ),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Build a matrix from row slices (each inner slice is one row).
    ///
    /// Returns an error if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(Error::DimensionMismatch {
                    context: format!("row {i} has length {} but row 0 has length {ncols}", r.len()),
                });
            }
        }
        let mut m = DenseMatrix::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Build a matrix whose columns are the given vectors.
    pub fn from_cols(cols: &[Vec<f64>]) -> Result<Self> {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, |c| c.len());
        for (j, c) in cols.iter().enumerate() {
            if c.len() != nrows {
                return Err(Error::DimensionMismatch {
                    context: format!(
                        "column {j} has length {} but column 0 has length {nrows}",
                        c.len()
                    ),
                });
            }
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for c in cols {
            data.extend_from_slice(c);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = v;
    }

    /// Add `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] += v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy of row `i` (non-contiguous in column-major storage).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self.get(i, j)).collect()
    }

    /// Iterator over column slices.
    pub fn cols(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.nrows.max(1)).take(self.ncols)
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying column-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            let cj = self.col(j);
            for (i, &v) in cj.iter().enumerate() {
                t.set(j, i, v);
            }
        }
        t
    }

    /// Keep only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> DenseMatrix {
        let k = k.min(self.ncols);
        DenseMatrix {
            nrows: self.nrows,
            ncols: k,
            data: self.data[..self.nrows * k].to_vec(),
        }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "hcat of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut data = Vec::with_capacity((self.ncols + other.ncols) * self.nrows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols + other.ncols,
            data,
        })
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.ncols {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "vcat of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows + other.nrows, self.ncols);
        for j in 0..self.ncols {
            out.col_mut(j)[..self.nrows].copy_from_slice(self.col(j));
            out.col_mut(j)[self.nrows..].copy_from_slice(other.col(j));
        }
        Ok(out)
    }

    /// Append a column to the right edge of the matrix.
    pub fn push_col(&mut self, col: &[f64]) -> Result<()> {
        if col.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "push_col of length {} onto matrix with {} rows",
                    col.len(),
                    self.nrows
                ),
            });
        }
        self.data.extend_from_slice(col);
        self.ncols += 1;
        Ok(())
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise difference norm `||self - other||_F`.
    ///
    /// Returns an error on shape mismatch.
    pub fn fro_distance(&self, other: &DenseMatrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                context: format!("fro_distance of {:?} with {:?}", self.shape(), other.shape()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sub-matrix copy: rows `r0..r1`, columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> DenseMatrix {
        assert!(r0 <= r1 && r1 <= self.nrows && c0 <= c1 && c1 <= self.ncols);
        let mut out = DenseMatrix::zeros(r1 - r0, c1 - c0);
        for j in c0..c1 {
            let src = &self.col(j)[r0..r1];
            out.col_mut(j - c0).copy_from_slice(src);
        }
        out
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_entries() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = DenseMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        m.add_to(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 8.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_cols_matches_indexing() {
        let m = DenseMatrix::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.col(0), &[1.0, 2.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn hcat_and_vcat() {
        let a = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.get(0, 1), 3.0);
        let v = a.vcat(&b).unwrap();
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn hcat_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 1);
        let b = DenseMatrix::zeros(3, 1);
        assert!(a.hcat(&b).is_err());
        assert!(a.vcat(&DenseMatrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn push_col_extends_matrix() {
        let mut m = DenseMatrix::zeros(2, 1);
        m.push_col(&[5.0, 6.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1), 6.0);
        assert!(m.push_col(&[1.0]).is_err());
    }

    #[test]
    fn fro_norm_of_known_matrix() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_cols_keeps_prefix() {
        let m = DenseMatrix::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let t = m.truncate_cols(2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let s = m.submatrix(1, 3, 0, 2);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(1, 1), 8.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = DenseMatrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn fro_distance_detects_difference() {
        let a = DenseMatrix::identity(2);
        let mut b = DenseMatrix::identity(2);
        b.set(0, 0, 4.0);
        assert!((a.fro_distance(&b).unwrap() - 3.0).abs() < 1e-12);
        assert!(a.fro_distance(&DenseMatrix::zeros(3, 3)).is_err());
    }
}
