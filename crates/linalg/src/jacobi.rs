//! One-sided Jacobi SVD.
//!
//! Applies plane rotations from the right until all column pairs of the
//! working matrix are numerically orthogonal; the column norms are then
//! the singular values, the normalized columns are `U`, and the
//! accumulated rotations are `V`. With de Rijk-style pivoting (process
//! the pair with the largest inner product first within each sweep by
//! ordering columns by norm) convergence is fast and the computed small
//! singular values are highly accurate — which matters for the
//! `Sigma^-1` scaling in LSI query projection (Eq. 6 of the paper).

use crate::matrix::DenseMatrix;
use crate::svd::Svd;
use crate::vecops;
use crate::{Error, Result};

/// Maximum number of full sweeps before reporting failure.
const MAX_SWEEPS: usize = 60;

/// Compute the full (thin) SVD of `a` by one-sided Jacobi rotation.
///
/// Returns factors with `u: m x r`, `v: n x r`, `r = min(m, n)`,
/// singular values descending. For `m < n` the routine transposes
/// internally and swaps the factors back.
pub fn jacobi_svd(a: &DenseMatrix) -> Result<Svd> {
    if !a.is_finite() {
        return Err(Error::NotFinite);
    }
    if a.nrows() < a.ncols() {
        let svd = jacobi_svd(&a.transpose())?;
        return Ok(Svd {
            u: svd.v,
            s: svd.s,
            v: svd.u,
        });
    }

    let m = a.nrows();
    let n = a.ncols();
    if n == 0 {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            v: DenseMatrix::zeros(0, 0),
        });
    }

    let mut w = a.clone();
    let mut v = DenseMatrix::identity(n);
    let fro = w.fro_norm();
    if fro == 0.0 {
        // Zero matrix: zero singular values, canonical axes.
        let mut u = DenseMatrix::zeros(m, n);
        for j in 0..n.min(m) {
            u.set(j, j, 1.0);
        }
        return Ok(Svd { u, s: vec![0.0; n], v });
    }
    // Rotation threshold: below this cosine the pair counts as
    // orthogonal. `eps * max(m, n)` leaves headroom above the roundoff
    // floor of the inner products — with repeated singular values the
    // off-diagonal cosines bottom out at a small multiple of eps and a
    // tighter threshold would spin forever on noise.
    let tol = f64::EPSILON * (m.max(n) as f64);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;

        // de Rijk pivoting: keep columns ordered by decreasing norm so the
        // dominant directions settle first.
        let mut norms: Vec<f64> = (0..n).map(|j| vecops::nrm2(w.col(j))).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).expect("finite norms"));
        permute_cols(&mut w, &order);
        permute_cols(&mut v, &order);
        norms.sort_by(|x, y| y.partial_cmp(x).expect("finite norms"));

        // Columns whose norm has decayed below eps^2 of the dominant
        // column are pure rounding residue; their squared norms underflow
        // toward subnormals and the rotation formulas stall on them.
        // Flush them to exact zero (their singular value is 0).
        let dead = norms[0] * f64::EPSILON * f64::EPSILON;
        for j in 0..n {
            if norms[j] > 0.0 && norms[j] < dead {
                for x in w.col_mut(j) {
                    *x = 0.0;
                }
            }
        }

        for p in 0..n - 1 {
            for q in p + 1..n {
                let alpha = vecops::dot(w.col(p), w.col(p));
                let beta = vecops::dot(w.col(q), w.col(q));
                let gamma = vecops::dot(w.col(p), w.col(q));
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                let cos_angle = gamma.abs() / (alpha.sqrt() * beta.sqrt());
                if cos_angle <= tol {
                    continue;
                }
                rotated = true;
                // Two-by-two symmetric Schur decomposition of
                // [[alpha, gamma], [gamma, beta]].
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut w, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence {
            routine: "jacobi_svd",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values (column norms), sort descending, normalize U.
    let norms: Vec<f64> = (0..n).map(|j| vecops::nrm2(w.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).expect("finite singular values"));
    permute_cols(&mut w, &order);
    permute_cols(&mut v, &order);
    let s: Vec<f64> = order.iter().map(|&j| norms[j]).collect();

    let mut u = w;
    for (j, &sj) in s.iter().enumerate() {
        if sj > 0.0 {
            vecops::scal(1.0 / sj, u.col_mut(j));
        } else {
            // Null-space column: fill with a vector orthogonal to the kept
            // columns so U stays orthonormal.
            fill_orthonormal_column(&mut u, j);
        }
    }

    Ok(Svd { u, s, v })
}

/// Rotate columns `p` and `q` of `m` by the plane rotation `(c, s)`.
fn rotate_cols(m: &mut DenseMatrix, p: usize, q: usize, c: f64, s: f64) {
    let nrows = m.nrows();
    debug_assert!(p < q);
    // Split borrow: columns are disjoint slices of the column-major buffer.
    let (left, right) = m.data_mut().split_at_mut(q * nrows);
    let colp = &mut left[p * nrows..(p + 1) * nrows];
    let colq = &mut right[..nrows];
    for (a, b) in colp.iter_mut().zip(colq.iter_mut()) {
        let ap = c * *a - s * *b;
        let aq = s * *a + c * *b;
        *a = ap;
        *b = aq;
    }
}

/// Reorder the columns of `m` according to `order` (new column `j` is old
/// column `order[j]`).
fn permute_cols(m: &mut DenseMatrix, order: &[usize]) {
    let cols: Vec<Vec<f64>> = order.iter().map(|&j| m.col(j).to_vec()).collect();
    for (j, c) in cols.into_iter().enumerate() {
        m.col_mut(j).copy_from_slice(&c);
    }
}

/// Replace zero column `j` of `u` with a unit vector orthogonal to all
/// other (already orthonormal) columns.
fn fill_orthonormal_column(u: &mut DenseMatrix, j: usize) {
    let m = u.nrows();
    for trial in 0..m {
        let mut cand = vec![0.0; m];
        cand[trial] = 1.0;
        for other in 0..u.ncols() {
            if other == j {
                continue;
            }
            let proj = vecops::dot(u.col(other), &cand);
            let oc = u.col(other).to_vec();
            vecops::axpy(-proj, &oc, &mut cand);
        }
        if vecops::normalize(&mut cand) > 0.5 {
            u.col_mut(j).copy_from_slice(&cand);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul_tn, reconstruct};

    fn check_svd(a: &DenseMatrix, tol: f64) -> Svd {
        let svd = jacobi_svd(a).unwrap();
        let r = a.nrows().min(a.ncols());
        assert_eq!(svd.u.shape(), (a.nrows(), r));
        assert_eq!(svd.v.shape(), (a.ncols(), r));
        assert_eq!(svd.s.len(), r);
        // Descending, nonnegative.
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
        // Orthonormal factors.
        let utu = matmul_tn(&svd.u, &svd.u).unwrap();
        assert!(utu.fro_distance(&DenseMatrix::identity(r)).unwrap() < tol);
        let vtv = matmul_tn(&svd.v, &svd.v).unwrap();
        assert!(vtv.fro_distance(&DenseMatrix::identity(r)).unwrap() < tol);
        // Reconstruction.
        let rec = reconstruct(&svd.u, &svd.s, &svd.v).unwrap();
        assert!(
            rec.fro_distance(a).unwrap() < tol * a.fro_norm().max(1.0),
            "reconstruction error {}",
            rec.fro_distance(a).unwrap()
        );
        svd
    }

    #[test]
    fn svd_of_diagonal() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = check_svd(&a, 1e-12);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_of_known_2x2() {
        // A = [[1, 1], [0, 1]]: singular values are golden-ratio related:
        // sigma = sqrt((3 ± sqrt 5)/2).
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        let s1 = ((3.0 + 5f64.sqrt()) / 2.0).sqrt();
        let s2 = ((3.0 - 5f64.sqrt()) / 2.0).sqrt();
        assert!((svd.s[0] - s1).abs() < 1e-12);
        assert!((svd.s[1] - s2).abs() < 1e-12);
    }

    #[test]
    fn svd_of_tall_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, -1.0],
        ])
        .unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_of_wide_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]])
            .unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_of_rank_deficient() {
        // Rank 1: all columns parallel.
        let a = DenseMatrix::from_cols(&[
            vec![1.0, 2.0, 2.0],
            vec![2.0, 4.0, 4.0],
            vec![-1.0, -2.0, -2.0],
        ])
        .unwrap();
        let svd = check_svd(&a, 1e-11);
        assert!(svd.s[1] < 1e-10);
        assert!(svd.s[2] < 1e-10);
        // sigma_1 = ||A||_F for rank-1.
        assert!((svd.s[0] - a.fro_norm()).abs() < 1e-10);
    }

    #[test]
    fn svd_of_zero_matrix() {
        let a = DenseMatrix::zeros(3, 2);
        let svd = check_svd(&a, 1e-12);
        assert_eq!(svd.s, vec![0.0, 0.0]);
    }

    #[test]
    fn svd_singular_values_match_eigenvalues_of_gram() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![-1.0, 1.0, 0.0],
            vec![3.0, 1.0, 1.0],
            vec![0.0, 2.0, -1.0],
        ])
        .unwrap();
        let svd = check_svd(&a, 1e-11);
        let gram = matmul_tn(&a, &a).unwrap();
        let (evals, _) = crate::symeig::sym_eigen(&gram).unwrap();
        for (sig, lam) in svd.s.iter().zip(evals.iter()) {
            assert!((sig * sig - lam).abs() < 1e-9, "{} vs {}", sig * sig, lam);
        }
    }

    #[test]
    fn svd_rejects_nan() {
        let a = DenseMatrix::from_rows(&[vec![f64::NAN]]).unwrap();
        assert!(jacobi_svd(&a).is_err());
    }

    #[test]
    fn svd_of_graded_matrix_keeps_small_values_accurate() {
        // Diagonal with hugely different scales: Jacobi retains relative
        // accuracy on the small singular value.
        let a = DenseMatrix::from_diag(&[1e8, 1e-6]);
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.s[0] - 1e8).abs() / 1e8 < 1e-14);
        assert!((svd.s[1] - 1e-6).abs() / 1e-6 < 1e-10);
    }
}
