//! Reduced-precision scoring kernels (f32 and scaled-i8 GEMV/GEMM).
//!
//! Query scoring at collection scale is memory-bandwidth-bound: the
//! sweep streams the whole document matrix once per query batch and
//! does two flops per loaded element. Halving (f32) or eighthing (i8)
//! the bytes per element converts directly into throughput, and the
//! candidate set the sweep produces is re-ranked exactly in f64 by the
//! caller, so the reduced precision never reaches a returned score.
//!
//! The kernels mirror the structure of [`crate::ops::matvec`]: column
//! blocks of four fused into one unit-stride pass over the output span,
//! written so the inner loop autovectorizes (plain indexed f32
//! arithmetic with no cross-iteration dependence), and parallelized
//! over disjoint row spans on the existing pool. Every span runs the
//! identical column loop, so results are bit-for-bit independent of the
//! thread count — the same determinism contract as the f64 kernels.

use rayon::prelude::*;

use crate::{Error, Result};

/// Element count (m·n) below which the f32 GEMV stays serial. Measured
/// on the calibration harness (`cargo test -p lsi-linalg --release
/// --test lowp_kernels -- --ignored --nocapture`, once pooled and once
/// under `LSI_NUM_THREADS=1`): the pooled split ties the serial sweep
/// inside the L2-resident sizes (10.5 vs 10.8 µs at 1<<17, 23.5 vs
/// 24.1 µs at 1<<18 — dispatch eats the win) and pulls clearly ahead
/// once the operand exceeds cache: 55 vs 78 µs at 1<<19 and 165 vs
/// 214 µs at 1<<20 against the serial pass. 1<<19 elements ≈ 2 MiB of
/// f32 — the same resident-byte crossover as the f64 kernel's
/// [`crate::ops::MATVEC_PAR_MIN_ELEMS`] at half the element count.
pub const MATVEC_F32_PAR_MIN_ELEMS: usize = 1 << 19;

/// One row span of the f32 GEMV: `y[i] += sum_j x[j] * A[r0 + i, j]`
/// for rows `r0 .. r0 + y.len()` of the column-major `data` (leading
/// dimension `m`). Columns are swept in fixed blocks of four fused
/// into one unit-stride pass over the span; the inner loop is
/// straight-line f32 arithmetic that LLVM autovectorizes 8-wide.
fn matvec_span_f32(data: &[f32], m: usize, x: &[f32], r0: usize, y: &mut [f32]) {
    let rows = y.len();
    let mut j = 0;
    while j + 4 <= x.len() {
        let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
        let c0 = &data[j * m + r0..j * m + r0 + rows];
        let c1 = &data[(j + 1) * m + r0..(j + 1) * m + r0 + rows];
        let c2 = &data[(j + 2) * m + r0..(j + 2) * m + r0 + rows];
        let c3 = &data[(j + 3) * m + r0..(j + 3) * m + r0 + rows];
        for i in 0..rows {
            y[i] += x0 * c0[i] + x1 * c1[i] + x2 * c2[i] + x3 * c3[i];
        }
        j += 4;
    }
    for jj in j..x.len() {
        let xj = x[jj];
        let c = &data[jj * m + r0..jj * m + r0 + rows];
        for i in 0..rows {
            y[i] += xj * c[i];
        }
    }
}

/// One row span of the scaled-i8 GEMV. Identical structure to
/// [`matvec_span_f32`]; each stored byte is widened to f32 in the
/// register, so the sweep still streams one byte per element from
/// memory. Per-row scale factors are applied by the caller.
fn matvec_span_i8(data: &[i8], m: usize, x: &[f32], r0: usize, y: &mut [f32]) {
    let rows = y.len();
    let mut j = 0;
    while j + 4 <= x.len() {
        let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
        let c0 = &data[j * m + r0..j * m + r0 + rows];
        let c1 = &data[(j + 1) * m + r0..(j + 1) * m + r0 + rows];
        let c2 = &data[(j + 2) * m + r0..(j + 2) * m + r0 + rows];
        let c3 = &data[(j + 3) * m + r0..(j + 3) * m + r0 + rows];
        for i in 0..rows {
            y[i] += x0 * c0[i] as f32
                + x1 * c1[i] as f32
                + x2 * c2[i] as f32
                + x3 * c3[i] as f32;
        }
        j += 4;
    }
    for jj in j..x.len() {
        let xj = x[jj];
        let c = &data[jj * m + r0..jj * m + r0 + rows];
        for i in 0..rows {
            y[i] += xj * c[i] as f32;
        }
    }
}

fn check_gemv_dims(kind: &str, len: usize, nrows: usize, ncols: usize, x: usize) -> Result<()> {
    if len != nrows * ncols {
        return Err(Error::DimensionMismatch {
            context: format!("{kind}: buffer of {len} entries for a {nrows}x{ncols} matrix"),
        });
    }
    if ncols != x {
        return Err(Error::DimensionMismatch {
            context: format!("{kind}: {nrows}x{ncols} with vector {x}"),
        });
    }
    Ok(())
}

/// `y = A * x` over a column-major f32 buffer (`nrows` leading
/// dimension). Above [`MATVEC_F32_PAR_MIN_ELEMS`] the rows split across
/// the pool in disjoint spans; bit-for-bit identical at any thread
/// count.
pub fn matvec_f32(data: &[f32], nrows: usize, ncols: usize, x: &[f32]) -> Result<Vec<f32>> {
    check_gemv_dims("matvec_f32", data.len(), nrows, ncols, x.len())?;
    let mut y = vec![0.0f32; nrows];
    let nthreads = rayon::current_num_threads();
    if nrows * ncols >= MATVEC_F32_PAR_MIN_ELEMS && nthreads > 1 && nrows > 1 {
        let span = nrows.div_ceil(nthreads * 2).max(1);
        y.par_chunks_mut(span).enumerate().for_each(|(ci, yspan)| {
            matvec_span_f32(data, nrows, x, ci * span, yspan);
        });
    } else {
        matvec_span_f32(data, nrows, x, 0, &mut y);
    }
    Ok(y)
}

/// `y = A * x` over a column-major scaled-i8 buffer. Same span split
/// and determinism contract as [`matvec_f32`].
pub fn matvec_i8(data: &[i8], nrows: usize, ncols: usize, x: &[f32]) -> Result<Vec<f32>> {
    check_gemv_dims("matvec_i8", data.len(), nrows, ncols, x.len())?;
    let mut y = vec![0.0f32; nrows];
    let nthreads = rayon::current_num_threads();
    if nrows * ncols >= MATVEC_F32_PAR_MIN_ELEMS && nthreads > 1 && nrows > 1 {
        let span = nrows.div_ceil(nthreads * 2).max(1);
        y.par_chunks_mut(span).enumerate().for_each(|(ci, yspan)| {
            matvec_span_i8(data, nrows, x, ci * span, yspan);
        });
    } else {
        matvec_span_i8(data, nrows, x, 0, &mut y);
    }
    Ok(y)
}

fn check_rows_in_range(kind: &str, nrows: usize, rows: &[u32]) -> Result<()> {
    if rows.iter().any(|&r| r as usize >= nrows) {
        return Err(Error::DimensionMismatch {
            context: format!("{kind}: row index out of range for {nrows} rows"),
        });
    }
    Ok(())
}

/// [`matvec_f32`] restricted to a subset of rows, columns outermost:
/// each 4-wide column block is loaded once and applied to every
/// requested row before moving right, so with ascending `rows` the
/// inner loop walks each column's survivor band in address order —
/// the cluster-pruned sweep's scattered reads become prefetch-friendly
/// bands. The per-row block order and fused sum replicate
/// [`matvec_f32`]'s span kernel exactly, so `y[i]` is bit-identical to
/// the full sweep's `y[rows[i]]`. Serial by design: the pruned path
/// shards survivors across the pool at a coarser granularity.
pub fn matvec_f32_rows(
    data: &[f32],
    nrows: usize,
    ncols: usize,
    x: &[f32],
    rows: &[u32],
) -> Result<Vec<f32>> {
    check_gemv_dims("matvec_f32_rows", data.len(), nrows, ncols, x.len())?;
    check_rows_in_range("matvec_f32_rows", nrows, rows)?;
    let m = nrows;
    let mut y = vec![0.0f32; rows.len()];
    let mut j = 0;
    while j + 4 <= x.len() {
        let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
        let c0 = &data[j * m..(j + 1) * m];
        let c1 = &data[(j + 1) * m..(j + 2) * m];
        let c2 = &data[(j + 2) * m..(j + 3) * m];
        let c3 = &data[(j + 3) * m..(j + 4) * m];
        for (yi, &r) in y.iter_mut().zip(rows.iter()) {
            let r = r as usize;
            *yi += x0 * c0[r] + x1 * c1[r] + x2 * c2[r] + x3 * c3[r];
        }
        j += 4;
    }
    for jj in j..x.len() {
        let xj = x[jj];
        let c = &data[jj * m..jj * m + m];
        for (yi, &r) in y.iter_mut().zip(rows.iter()) {
            *yi += xj * c[r as usize];
        }
    }
    Ok(y)
}

/// [`matvec_i8`] restricted to a subset of rows; same structure and
/// bit-identity contract as [`matvec_f32_rows`] (each stored byte is
/// widened in the register, caller applies per-row scale factors).
pub fn matvec_i8_rows(
    data: &[i8],
    nrows: usize,
    ncols: usize,
    x: &[f32],
    rows: &[u32],
) -> Result<Vec<f32>> {
    check_gemv_dims("matvec_i8_rows", data.len(), nrows, ncols, x.len())?;
    check_rows_in_range("matvec_i8_rows", nrows, rows)?;
    let m = nrows;
    let mut y = vec![0.0f32; rows.len()];
    let mut j = 0;
    while j + 4 <= x.len() {
        let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
        let c0 = &data[j * m..(j + 1) * m];
        let c1 = &data[(j + 1) * m..(j + 2) * m];
        let c2 = &data[(j + 2) * m..(j + 3) * m];
        let c3 = &data[(j + 3) * m..(j + 4) * m];
        for (yi, &r) in y.iter_mut().zip(rows.iter()) {
            let r = r as usize;
            *yi += x0 * c0[r] as f32
                + x1 * c1[r] as f32
                + x2 * c2[r] as f32
                + x3 * c3[r] as f32;
        }
        j += 4;
    }
    for jj in j..x.len() {
        let xj = x[jj];
        let c = &data[jj * m..jj * m + m];
        for (yi, &r) in y.iter_mut().zip(rows.iter()) {
            *yi += xj * c[r as usize] as f32;
        }
    }
    Ok(y)
}

/// `C = A * B` over column-major f32 buffers: `A` is `nrows x ncols`,
/// `B` is `ncols x nrhs`, and the result is column-major
/// `nrows x nrhs`. Right-hand sides are processed in pairs so each
/// streamed column of `A` feeds two output columns — the multi-facet
/// sweep reads the document matrix half as many times as repeated
/// GEMV would. The paired path accumulates column-by-column, so its
/// last-ulp rounding can differ from [`matvec_f32`]'s 4-wide blocks;
/// callers use these scores for candidate generation only and re-rank
/// exactly, so the difference never surfaces. The sweep itself is
/// serial and deterministic.
pub fn gemm_f32(
    data: &[f32],
    nrows: usize,
    ncols: usize,
    b: &[f32],
    nrhs: usize,
) -> Result<Vec<f32>> {
    if data.len() != nrows * ncols || b.len() != ncols * nrhs {
        return Err(Error::DimensionMismatch {
            context: format!(
                "gemm_f32: {} entries for {nrows}x{ncols}, {} rhs entries for {ncols}x{nrhs}",
                data.len(),
                b.len()
            ),
        });
    }
    let mut c = vec![0.0f32; nrows * nrhs];
    let mut r = 0;
    while r + 2 <= nrhs {
        let (head, tail) = c.split_at_mut((r + 1) * nrows);
        let y0 = &mut head[r * nrows..];
        let y1 = &mut tail[..nrows];
        let b0 = &b[r * ncols..(r + 1) * ncols];
        let b1 = &b[(r + 1) * ncols..(r + 2) * ncols];
        for j in 0..ncols {
            let (x0, x1) = (b0[j], b1[j]);
            let col = &data[j * nrows..(j + 1) * nrows];
            for i in 0..nrows {
                y0[i] += x0 * col[i];
                y1[i] += x1 * col[i];
            }
        }
        r += 2;
    }
    if r < nrhs {
        let y = &mut c[r * nrows..(r + 1) * nrows];
        matvec_span_f32(data, nrows, &b[r * ncols..(r + 1) * ncols], 0, y);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_gemv(data: &[f32], m: usize, n: usize, x: &[f32]) -> Vec<f64> {
        let mut y = vec![0.0f64; m];
        for j in 0..n {
            for i in 0..m {
                y[i] += data[j * m + i] as f64 * x[j] as f64;
            }
        }
        y
    }

    fn sample(m: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
        let data: Vec<f32> = (0..m * n)
            .map(|i| ((i * 2654435761 % 1000) as f32) / 500.0 - 1.0)
            .collect();
        let x: Vec<f32> = (0..n).map(|j| ((j * 40503 % 97) as f32) / 48.0 - 1.0).collect();
        (data, x)
    }

    #[test]
    fn matvec_f32_matches_reference_across_shapes() {
        for (m, n) in [(1, 1), (5, 4), (7, 9), (64, 13), (33, 8)] {
            let (data, x) = sample(m, n);
            let y = matvec_f32(&data, m, n, &x).unwrap();
            let r = reference_gemv(&data, m, n, &x);
            for i in 0..m {
                assert!((y[i] as f64 - r[i]).abs() < 1e-3, "({m},{n}) row {i}");
            }
        }
    }

    #[test]
    fn matvec_f32_rejects_bad_dims() {
        assert!(matvec_f32(&[0.0; 6], 2, 3, &[0.0; 2]).is_err());
        assert!(matvec_f32(&[0.0; 5], 2, 3, &[0.0; 3]).is_err());
    }

    #[test]
    fn matvec_i8_matches_widened_reference() {
        let m = 9;
        let n = 6;
        let data: Vec<i8> = (0..m * n).map(|i| ((i * 37) % 255) as i8).collect();
        let x: Vec<f32> = (0..n).map(|j| j as f32 * 0.5 - 1.0).collect();
        let y = matvec_i8(&data, m, n, &x).unwrap();
        let widened: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        let r = reference_gemv(&widened, m, n, &x);
        for i in 0..m {
            assert!((y[i] as f64 - r[i]).abs() < 1e-3);
        }
        assert!(matvec_i8(&data, m, n, &[0.0; 2]).is_err());
    }

    #[test]
    fn row_subset_kernels_are_bit_identical_to_full_sweeps() {
        let (m, n) = (23, 13);
        let (data, x) = sample(m, n);
        let full = matvec_f32(&data, m, n, &x).unwrap();
        // Unsorted, duplicated rows: per-row bits must not depend on
        // order or uniqueness.
        let rows = [19u32, 0, 7, 7, 22, 3];
        let sub = matvec_f32_rows(&data, m, n, &x, &rows).unwrap();
        for (yi, &r) in sub.iter().zip(rows.iter()) {
            assert_eq!(yi.to_bits(), full[r as usize].to_bits());
        }
        let data8: Vec<i8> = (0..m * n).map(|i| ((i * 37) % 255) as i8).collect();
        let full8 = matvec_i8(&data8, m, n, &x).unwrap();
        let sub8 = matvec_i8_rows(&data8, m, n, &x, &rows).unwrap();
        for (yi, &r) in sub8.iter().zip(rows.iter()) {
            assert_eq!(yi.to_bits(), full8[r as usize].to_bits());
        }
        assert!(matvec_f32_rows(&data, m, n, &x, &[23]).is_err());
        assert!(matvec_i8_rows(&data8, m, n, &x[..2], &[0]).is_err());
        assert_eq!(matvec_f32_rows(&data, m, n, &x, &[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn gemm_f32_matches_per_column_gemv() {
        for nrhs in [1usize, 2, 3, 5] {
            let (m, n) = (17, 12);
            let (data, _) = sample(m, n);
            let b: Vec<f32> = (0..n * nrhs)
                .map(|i| ((i * 131 % 61) as f32) / 30.0 - 1.0)
                .collect();
            let c = gemm_f32(&data, m, n, &b, nrhs).unwrap();
            for r in 0..nrhs {
                let y = matvec_f32(&data, m, n, &b[r * n..(r + 1) * n]).unwrap();
                for i in 0..m {
                    assert!(
                        (c[r * m + i] - y[i]).abs() <= 1e-5 * y[i].abs().max(1.0),
                        "rhs {r} row {i}: {} vs {}",
                        c[r * m + i],
                        y[i]
                    );
                }
            }
        }
        assert!(gemm_f32(&[0.0; 4], 2, 2, &[0.0; 3], 2).is_err());
    }

    #[test]
    fn parallel_threshold_path_is_bit_identical_to_serial_span() {
        // Big enough to cross MATVEC_F32_PAR_MIN_ELEMS when a pool is
        // present; under LSI_NUM_THREADS=1 this exercises the serial
        // branch, and both must agree bit-for-bit with the plain span.
        let m = 2048;
        let n = 512;
        let (data, x) = sample(m, n);
        let y = matvec_f32(&data, m, n, &x).unwrap();
        let mut serial = vec![0.0f32; m];
        matvec_span_f32(&data, m, &x, 0, &mut serial);
        assert_eq!(y, serial);
    }
}
