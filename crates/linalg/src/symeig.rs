//! Dense symmetric eigensolver.
//!
//! Householder tridiagonalization followed by the implicit-QL solver of
//! [`crate::tridiag`]. Used for the small dense Gram matrices arising in
//! SVD-updating and as an independent oracle for the SVD implementations
//! (the eigenvalues of `A^T A` are the squared singular values of `A`).

use crate::matrix::DenseMatrix;
use crate::ops::matmul;
use crate::tridiag::{tridiag_eigen, SymTridiag};
use crate::{Error, Result};

/// Eigen-decomposition `A = V diag(w) V^T` of a symmetric matrix.
///
/// Only the lower triangle of `a` is read. Eigenvalues are returned in
/// descending order with matching eigenvector columns.
pub fn sym_eigen(a: &DenseMatrix) -> Result<(Vec<f64>, DenseMatrix)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch {
            context: format!("sym_eigen of non-square {}x{} matrix", a.nrows(), a.ncols()),
        });
    }
    if !a.is_finite() {
        return Err(Error::NotFinite);
    }
    if n == 0 {
        return Ok((Vec::new(), DenseMatrix::zeros(0, 0)));
    }

    // Symmetrize defensively: callers often pass products like B^T B whose
    // floating-point asymmetry is harmless but would perturb the reduction.
    let mut w = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            w.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
        }
    }

    // Householder tridiagonalization with accumulation of the orthogonal
    // transformation Q (so that Q^T W Q = T).
    let mut q = DenseMatrix::identity(n);
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n.saturating_sub(1)];

    for k in 0..n.saturating_sub(2) {
        // Annihilate column k below the first subdiagonal.
        let mut x = vec![0.0; n - k - 1];
        for i in k + 1..n {
            x[i - k - 1] = w.get(i, k);
        }
        let xnorm = crate::vecops::nrm2(&x);
        if xnorm == 0.0 {
            continue;
        }
        let alpha = -xnorm.copysign(if x[0] >= 0.0 { 1.0 } else { -1.0 });
        let mut v = x.clone();
        v[0] -= alpha;
        let vnorm = crate::vecops::nrm2(&v);
        if vnorm == 0.0 {
            continue;
        }
        crate::vecops::scal(1.0 / vnorm, &mut v);

        // W <- H W H with H = I - 2 v v^T acting on rows/cols k+1..n.
        // p = 2 W v (restricted), K = v^T p
        let mut p = vec![0.0; n - k - 1];
        for i in k + 1..n {
            let mut s = 0.0;
            for j in k + 1..n {
                s += w.get(i, j) * v[j - k - 1];
            }
            p[i - k - 1] = 2.0 * s;
        }
        let kappa: f64 = v.iter().zip(p.iter()).map(|(a, b)| a * b).sum();
        // q_vec = p - kappa v ; W <- W - v q^T - q v^T  (restricted block)
        let qv: Vec<f64> = p.iter().zip(v.iter()).map(|(pi, vi)| pi - kappa * vi).collect();
        for i in k + 1..n {
            for j in k + 1..n {
                let delta = v[i - k - 1] * qv[j - k - 1] + qv[i - k - 1] * v[j - k - 1];
                w.set(i, j, w.get(i, j) - delta);
            }
        }
        // Column k: entries below k+1 become zero; entry (k+1, k) = alpha.
        w.set(k + 1, k, alpha);
        w.set(k, k + 1, alpha);
        for i in k + 2..n {
            w.set(i, k, 0.0);
            w.set(k, i, 0.0);
        }

        // Accumulate Q <- Q H (apply H to columns k+1.. of Q from the right).
        for r in 0..n {
            let mut s = 0.0;
            for j in k + 1..n {
                s += q.get(r, j) * v[j - k - 1];
            }
            let s2 = 2.0 * s;
            for j in k + 1..n {
                q.set(r, j, q.get(r, j) - s2 * v[j - k - 1]);
            }
        }
    }

    for i in 0..n {
        diag[i] = w.get(i, i);
    }
    for i in 0..n.saturating_sub(1) {
        off[i] = w.get(i + 1, i);
    }

    let t = SymTridiag::new(diag, off)?;
    let (vals, z) = tridiag_eigen(&t)?;
    let vecs = matmul(&q, &z)?;
    Ok((vals, vecs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul_tn, reconstruct};

    fn check(a: &DenseMatrix, tol: f64) {
        let (vals, vecs) = sym_eigen(a).unwrap();
        // Residual ||A v - lambda v||.
        let av = matmul(a, &vecs).unwrap();
        for (j, &lam) in vals.iter().enumerate() {
            let r: f64 = av
                .col(j)
                .iter()
                .zip(vecs.col(j).iter())
                .map(|(x, y)| (x - lam * y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(r < tol, "residual {r} for eigenvalue {lam}");
        }
        // Orthonormality.
        let vtv = matmul_tn(&vecs, &vecs).unwrap();
        assert!(vtv.fro_distance(&DenseMatrix::identity(a.nrows())).unwrap() < tol);
        // Reconstruction.
        let rec = reconstruct(&vecs, &vals, &vecs).unwrap();
        assert!(rec.fro_distance(a).unwrap() < tol * 10.0);
        // Descending order.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_of_known_3x3() {
        // Eigenvalues of [[2,1,0],[1,2,1],[0,1,2]] are 2 ± sqrt 2 and 2.
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 2.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap();
        let (vals, _) = sym_eigen(&a).unwrap();
        assert!((vals[0] - (2.0 + std::f64::consts::SQRT_2)).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - (2.0 - std::f64::consts::SQRT_2)).abs() < 1e-12);
        check(&a, 1e-10);
    }

    #[test]
    fn eigen_of_dense_symmetric() {
        let n = 8;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = ((i * 3 + j * 7) % 11) as f64 - 5.0;
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        check(&a, 1e-9);
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = DenseMatrix::from_diag(&[3.0, -1.0, 4.0]);
        let (vals, _) = sym_eigen(&a).unwrap();
        assert_eq!(vals, vec![4.0, 3.0, -1.0]);
    }

    #[test]
    fn eigen_of_rank_one() {
        // u u^T with ||u||^2 = 14 has eigenvalues {14, 0, 0}.
        let u = [1.0, 2.0, 3.0];
        let mut a = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a.set(i, j, u[i] * u[j]);
            }
        }
        let (vals, _) = sym_eigen(&a).unwrap();
        assert!((vals[0] - 14.0).abs() < 1e-10);
        assert!(vals[1].abs() < 1e-10);
        assert!(vals[2].abs() < 1e-10);
    }

    #[test]
    fn rejects_nonsquare() {
        assert!(sym_eigen(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn handles_1x1_and_2x2() {
        let (vals, _) = sym_eigen(&DenseMatrix::from_diag(&[5.0])).unwrap();
        assert_eq!(vals, vec![5.0]);
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let (vals, _) = sym_eigen(&a).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] + 1.0).abs() < 1e-14);
    }
}
