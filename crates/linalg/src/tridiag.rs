//! Symmetric tridiagonal eigensolver.
//!
//! The Lanczos process (crate `lsi-svd`) reduces the Gram operator
//! `A^T A` to a symmetric tridiagonal matrix `T`; its eigenpairs are the
//! Ritz approximations to singular values/vectors. Two independent
//! solvers are provided:
//!
//! * [`tridiag_eigen`] — implicit QL with Wilkinson shifts, accumulating
//!   eigenvectors (the classic `tqli` algorithm),
//! * [`sturm_eigenvalues`] — bisection on the Sturm sequence, values
//!   only, used as an oracle in property tests and for cheap
//!   eigenvalue-count queries.

use crate::matrix::DenseMatrix;
use crate::{Error, Result};

/// A symmetric tridiagonal matrix given by its diagonal and
/// off-diagonal entries.
#[derive(Debug, Clone, PartialEq)]
pub struct SymTridiag {
    /// Diagonal entries (`n` of them).
    pub diag: Vec<f64>,
    /// Off-diagonal entries (`n - 1` of them).
    pub offdiag: Vec<f64>,
}

impl SymTridiag {
    /// Construct, validating the off-diagonal length.
    pub fn new(diag: Vec<f64>, offdiag: Vec<f64>) -> Result<Self> {
        if !diag.is_empty() && offdiag.len() + 1 != diag.len() {
            return Err(Error::DimensionMismatch {
                context: format!(
                    "tridiagonal matrix with {} diagonal and {} off-diagonal entries",
                    diag.len(),
                    offdiag.len()
                ),
            });
        }
        Ok(SymTridiag { diag, offdiag })
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Dense representation (for tests and small problems).
    pub fn to_dense(&self) -> DenseMatrix {
        let n = self.n();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, self.diag[i]);
        }
        for i in 0..n.saturating_sub(1) {
            m.set(i, i + 1, self.offdiag[i]);
            m.set(i + 1, i, self.offdiag[i]);
        }
        m
    }

    /// Number of eigenvalues strictly less than `x` (Sturm sequence
    /// count), computed without forming any matrix.
    pub fn count_less_than(&self, x: f64) -> usize {
        let n = self.n();
        let mut count = 0usize;
        let mut d = 1.0f64;
        let tiny = f64::MIN_POSITIVE / f64::EPSILON;
        for i in 0..n {
            let off2 = if i == 0 { 0.0 } else { self.offdiag[i - 1] * self.offdiag[i - 1] };
            d = self.diag[i] - x - off2 / d;
            if d == 0.0 {
                d = -tiny;
            }
            if d < 0.0 {
                count += 1;
            }
        }
        count
    }
}

/// Eigen-decomposition of a symmetric tridiagonal matrix.
///
/// Eigenvalues are returned in **descending** order (LSI wants the
/// largest singular triplets first) along with the matching eigenvector
/// columns.
pub fn tridiag_eigen(t: &SymTridiag) -> Result<(Vec<f64>, DenseMatrix)> {
    let n = t.n();
    if n == 0 {
        return Ok((Vec::new(), DenseMatrix::zeros(0, 0)));
    }
    let mut d = t.diag.clone();
    // e is padded to length n with a trailing zero as tqli expects.
    let mut e: Vec<f64> = t.offdiag.iter().copied().chain(std::iter::once(0.0)).collect();
    if d.iter().any(|v| !v.is_finite()) || e.iter().any(|v| !v.is_finite()) {
        return Err(Error::NotFinite);
    }
    let mut z = DenseMatrix::identity(n);

    const MAX_SWEEPS: usize = 50;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(Error::NoConvergence {
                    routine: "tridiag_eigen",
                    iterations: MAX_SWEEPS,
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    let zk = z.get(k, i);
                    z.set(k, i + 1, s * zk + c * f);
                    z.set(k, i, c * zk - s * f);
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort descending, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vecs = DenseMatrix::from_cols(&order.iter().map(|&i| z.col(i).to_vec()).collect::<Vec<_>>())
        .expect("columns share length");
    Ok((values, vecs))
}

/// Eigenvalues of a symmetric tridiagonal matrix plus the **last row**
/// of its eigenvector matrix, in descending eigenvalue order.
///
/// This is the Lanczos convergence test's exact need: the residual
/// bound for Ritz pair `i` is `|β_n · S[n-1, i]|`, so only row `n-1`
/// of `S` ever gets read. Running the same implicit-QL sweeps as
/// [`tridiag_eigen`] but accumulating the rotations into a single row
/// vector instead of the full matrix turns each accumulation step from
/// `O(n)` into `O(1)` — the whole call drops from `O(n³)` to `O(n²)` —
/// while producing bit-identical eigenvalues and last-row entries.
pub fn tridiag_eigen_last_row(t: &SymTridiag) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = t.n();
    if n == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    let mut d = t.diag.clone();
    let mut e: Vec<f64> = t.offdiag.iter().copied().chain(std::iter::once(0.0)).collect();
    if d.iter().any(|v| !v.is_finite()) || e.iter().any(|v| !v.is_finite()) {
        return Err(Error::NotFinite);
    }
    // Row n-1 of the accumulated rotation product, seeded from the
    // identity.
    let mut zrow = vec![0.0f64; n];
    zrow[n - 1] = 1.0;

    const MAX_SWEEPS: usize = 50;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(Error::NoConvergence {
                    routine: "tridiag_eigen_last_row",
                    iterations: MAX_SWEEPS,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // The same rotation tridiag_eigen applies to columns
                // (i, i+1) of Z, restricted to row n-1.
                f = zrow[i + 1];
                let zk = zrow[i];
                zrow[i + 1] = s * zk + c * f;
                zrow[i] = c * zk - s * f;
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let row: Vec<f64> = order.iter().map(|&i| zrow[i]).collect();
    Ok((values, row))
}

/// All eigenvalues of `t` by Sturm-sequence bisection, descending.
///
/// `tol` is the absolute bisection tolerance; pass e.g.
/// `1e-12 * ||T||` for full accuracy.
pub fn sturm_eigenvalues(t: &SymTridiag, tol: f64) -> Vec<f64> {
    let n = t.n();
    if n == 0 {
        return Vec::new();
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = (if i > 0 { t.offdiag[i - 1].abs() } else { 0.0 })
            + (if i + 1 < n { t.offdiag[i].abs() } else { 0.0 });
        lo = lo.min(t.diag[i] - r);
        hi = hi.max(t.diag[i] + r);
    }
    let tol = tol.max(f64::EPSILON * (hi - lo).abs().max(1.0));
    // Find the j-th smallest eigenvalue for each j by bisection on the
    // count function.
    let mut vals = Vec::with_capacity(n);
    for j in 0..n {
        let mut a = lo;
        let mut b = hi;
        while b - a > tol {
            let mid = 0.5 * (a + b);
            // count_less_than(mid) <= j  means lambda_j >= mid.
            if t.count_less_than(mid) <= j {
                a = mid;
            } else {
                b = mid;
            }
        }
        vals.push(0.5 * (a + b));
    }
    vals.reverse();
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    fn residual(t: &SymTridiag, vals: &[f64], vecs: &DenseMatrix) -> f64 {
        let dense = t.to_dense();
        let av = matmul(&dense, vecs).unwrap();
        let mut worst = 0.0f64;
        for (j, &lam) in vals.iter().enumerate() {
            let col = av.col(j);
            let v = vecs.col(j);
            let r: f64 = col
                .iter()
                .zip(v.iter())
                .map(|(a, b)| (a - lam * b) * (a - lam * b))
                .sum::<f64>()
                .sqrt();
            worst = worst.max(r);
        }
        worst
    }

    #[test]
    fn eigen_of_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let t = SymTridiag::new(vec![2.0, 2.0], vec![1.0]).unwrap();
        let (vals, vecs) = tridiag_eigen(&t).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!(residual(&t, &vals, &vecs) < 1e-12);
    }

    #[test]
    fn eigen_of_laplacian_matches_closed_form() {
        // Discrete Laplacian diag=2, off=-1 has eigenvalues
        // 2 - 2 cos(k pi / (n+1)).
        let n = 12;
        let t = SymTridiag::new(vec![2.0; n], vec![-1.0; n - 1]).unwrap();
        let (vals, vecs) = tridiag_eigen(&t).unwrap();
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in vals.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        assert!(residual(&t, &vals, &vecs) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 9;
        let diag: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| (i as f64 * 0.7).cos()).collect();
        let t = SymTridiag::new(diag, off).unwrap();
        let (_, vecs) = tridiag_eigen(&t).unwrap();
        let vtv = crate::ops::matmul_tn(&vecs, &vecs).unwrap();
        let eye = DenseMatrix::identity(n);
        assert!(vtv.fro_distance(&eye).unwrap() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let t = SymTridiag::new(vec![1.0, 5.0, 3.0], vec![0.0, 0.0]).unwrap();
        let (vals, _) = tridiag_eigen(&t).unwrap();
        assert_eq!(vals, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn empty_and_singleton() {
        let t = SymTridiag::new(vec![], vec![]).unwrap();
        let (vals, _) = tridiag_eigen(&t).unwrap();
        assert!(vals.is_empty());
        let t1 = SymTridiag::new(vec![7.0], vec![]).unwrap();
        let (vals, vecs) = tridiag_eigen(&t1).unwrap();
        assert_eq!(vals, vec![7.0]);
        assert_eq!(vecs.get(0, 0).abs(), 1.0);
    }

    #[test]
    fn new_rejects_bad_offdiag_length() {
        assert!(SymTridiag::new(vec![1.0, 2.0], vec![]).is_err());
    }

    #[test]
    fn sturm_count_is_monotone_and_correct() {
        let t = SymTridiag::new(vec![2.0, 2.0], vec![1.0]).unwrap();
        // Eigenvalues 1 and 3.
        assert_eq!(t.count_less_than(0.0), 0);
        assert_eq!(t.count_less_than(2.0), 1);
        assert_eq!(t.count_less_than(4.0), 2);
    }

    #[test]
    fn sturm_bisection_matches_ql() {
        let n = 10;
        let diag: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 1.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| ((i * 3 % 4) as f64) * 0.5 + 0.1).collect();
        let t = SymTridiag::new(diag, off).unwrap();
        let (ql_vals, _) = tridiag_eigen(&t).unwrap();
        let bis_vals = sturm_eigenvalues(&t, 1e-12);
        for (a, b) in ql_vals.iter().zip(bis_vals.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn last_row_variant_matches_full_decomposition() {
        let n = 40;
        let diag: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 2.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| ((i * 5 % 9) as f64) * 0.3 + 0.05).collect();
        let t = SymTridiag::new(diag, off).unwrap();
        let (vals, vecs) = tridiag_eigen(&t).unwrap();
        let (lvals, lrow) = tridiag_eigen_last_row(&t).unwrap();
        // Same rotation sequence, so eigenvalues and the last
        // eigenvector row agree bitwise.
        assert_eq!(vals, lvals);
        for j in 0..n {
            assert_eq!(vecs.get(n - 1, j), lrow[j], "row entry {j}");
        }
    }

    #[test]
    fn rejects_nan_input() {
        let t = SymTridiag::new(vec![f64::NAN, 0.0], vec![0.0]).unwrap();
        assert!(tridiag_eigen(&t).is_err());
    }
}
