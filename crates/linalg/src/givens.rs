//! Givens plane rotations.
//!
//! Used by the bidiagonal QR sweep ([`crate::bidiag`]) and available to
//! callers that need to restore triangular structure after low-rank
//! updates.

/// A Givens rotation `G = [[c, s], [-s, c]]` chosen so that
/// `G^T * [a; b] = [r; 0]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
    /// Resulting magnitude `r = sqrt(a^2 + b^2)` (with the sign of `a`).
    pub r: f64,
}

/// Compute the rotation annihilating `b` against `a`.
///
/// The formulas follow the LAPACK `dlartg` style and avoid overflow by
/// scaling with the larger component.
pub fn givens(a: f64, b: f64) -> Givens {
    if b == 0.0 {
        Givens { c: 1.0, s: 0.0, r: a }
    } else if a == 0.0 {
        Givens { c: 0.0, s: 1.0, r: b }
    } else if a.abs() > b.abs() {
        let t = b / a;
        let u = (1.0 + t * t).sqrt().copysign(a);
        let c = 1.0 / u;
        Givens { c, s: t * c, r: a * u }
    } else {
        let t = a / b;
        let u = (1.0 + t * t).sqrt().copysign(b);
        let s = 1.0 / u;
        Givens { c: t * s, s, r: b * u }
    }
}

impl Givens {
    /// Apply the rotation to the pair `(x, y)`, returning
    /// `(c*x + s*y, -s*x + c*y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }

    /// Rotate rows `i` and `j` of a pair of equal-length slices in place,
    /// treating them as two rows of a matrix stored as separate slices.
    pub fn apply_to_rows(&self, xi: &mut [f64], xj: &mut [f64]) {
        debug_assert_eq!(xi.len(), xj.len());
        for (a, b) in xi.iter_mut().zip(xj.iter_mut()) {
            let (na, nb) = self.apply(*a, *b);
            *a = na;
            *b = nb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annihilates_second_component() {
        for &(a, b) in &[(3.0, 4.0), (-2.0, 7.0), (1e-30, 1e-30), (5.0, 0.0), (0.0, 2.0)] {
            let g = givens(a, b);
            let (r, zero) = g.apply(a, b);
            assert!(zero.abs() <= 1e-12 * (a.abs() + b.abs()).max(1e-300), "{a} {b} -> {zero}");
            assert!((r.abs() - (a * a + b * b).sqrt()).abs() < 1e-12 * r.abs().max(1.0));
            assert!((g.r - r).abs() < 1e-12 * r.abs().max(1.0));
        }
    }

    #[test]
    fn rotation_is_orthogonal() {
        let g = givens(1.0, 2.0);
        assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn preserves_norm_of_rotated_pair() {
        let g = givens(0.3, -0.7);
        let (x, y) = g.apply(5.0, 12.0);
        assert!((x * x + y * y - 169.0).abs() < 1e-10);
    }

    #[test]
    fn apply_to_rows_rotates_elementwise() {
        let g = givens(1.0, 1.0);
        let mut r1 = vec![1.0, 0.0];
        let mut r2 = vec![1.0, 2.0];
        g.apply_to_rows(&mut r1, &mut r2);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((r1[0] - 2.0 * s).abs() < 1e-15);
        assert!(r2[0].abs() < 1e-15);
        assert!((r1[1] - 2.0 * s).abs() < 1e-15);
        assert!((r2[1] - 2.0 * s).abs() < 1e-15);
    }

    #[test]
    fn overflow_resistant() {
        let g = givens(1e308, 1e308);
        assert!(g.c.is_finite() && g.s.is_finite() && g.r.is_finite());
    }
}
