//! QR factorization: Householder reflections and modified Gram–Schmidt.
//!
//! Householder QR is the workhorse for orthonormalizing the dense bases
//! produced by SVD-updating; two-pass classical Gram–Schmidt ("twice is
//! enough"), built on blocked panel kernels, is what the Lanczos driver
//! uses to keep its basis orthogonal.

use crate::gemm;
use crate::matrix::DenseMatrix;
use crate::vecops;
use crate::{Error, Result};

/// Result of a Householder QR factorization `A = Q R` with
/// `Q` `m x n` (thin) and `R` `n x n` upper triangular (for `m >= n`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Thin orthonormal factor (`m x min(m,n)`).
    pub q: DenseMatrix,
    /// Upper-triangular factor (`min(m,n) x n`).
    pub r: DenseMatrix,
}

/// Householder QR of `a`.
///
/// Works for any shape; returns the thin factorization.
pub fn householder_qr(a: &DenseMatrix) -> Result<Qr> {
    if !a.is_finite() {
        return Err(Error::NotFinite);
    }
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let mut r = a.clone();
    // Store the reflectors: v_j has length m - j, kept in a jagged vec.
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector from column j, rows j..m.
        let col = r.col(j);
        let x = &col[j..];
        let alpha = -vecops::nrm2(x).copysign(if x[0] >= 0.0 { 1.0 } else { -1.0 });
        let mut v = x.to_vec();
        v[0] -= alpha;
        let vnorm = vecops::nrm2(&v);
        if vnorm > 0.0 {
            vecops::scal(1.0 / vnorm, &mut v);
            // Apply H = I - 2 v v^T to the trailing columns of R.
            for jj in j..n {
                let cjj = r.col_mut(jj);
                let tail = &mut cjj[j..];
                let proj = 2.0 * vecops::dot(&v, tail);
                vecops::axpy(-proj, &v, tail);
            }
        }
        reflectors.push(v);
        // Clean the annihilated entries to exact zero for a tidy R.
        let cj = r.col_mut(j);
        for i in j + 1..m {
            cj[i] = 0.0;
        }
    }

    // Accumulate thin Q by applying the reflectors in reverse to the
    // first k columns of the identity.
    let mut q = DenseMatrix::zeros(m, k);
    for j in 0..k {
        q.set(j, j, 1.0);
    }
    for j in (0..k).rev() {
        let v = &reflectors[j];
        if vecops::nrm2(v) == 0.0 {
            continue;
        }
        for jj in 0..k {
            let cjj = q.col_mut(jj);
            let tail = &mut cjj[j..];
            let proj = 2.0 * vecops::dot(v, tail);
            vecops::axpy(-proj, v, tail);
        }
    }

    let r_thin = r.submatrix(0, k, 0, n);
    Ok(Qr { q, r: r_thin })
}

/// Modified Gram–Schmidt orthonormalization of the columns of `a`,
/// with a single reorthogonalization pass for numerical robustness.
///
/// Columns that are (numerically) linearly dependent on their
/// predecessors come out as zero columns; the returned vector flags
/// which columns were kept.
pub fn mgs_orthonormalize(a: &mut DenseMatrix) -> Vec<bool> {
    let n = a.ncols();
    let mut kept = vec![false; n];
    for j in 0..n {
        let norm_before = vecops::nrm2(a.col(j));
        for _pass in 0..2 {
            for i in 0..j {
                if !kept[i] {
                    continue;
                }
                let proj = vecops::dot(a.col(i), a.col(j));
                let qi = a.col(i).to_vec();
                vecops::axpy(-proj, &qi, a.col_mut(j));
            }
        }
        let norm_after = vecops::nrm2(a.col(j));
        // Column is dependent if orthogonalization wiped it out.
        if norm_after > 1e-12 * norm_before.max(1.0) && norm_after > 0.0 {
            vecops::scal(1.0 / norm_after, a.col_mut(j));
            kept[j] = true;
        } else {
            for v in a.col_mut(j) {
                *v = 0.0;
            }
        }
    }
    kept
}

/// DGKS reorthogonalization threshold: a classical Gram–Schmidt pass
/// that keeps at least this fraction of the input norm lost no
/// significant digits to cancellation, so one pass already leaves the
/// result orthogonal to working precision (Daniel–Gragg–Kaufman–
/// Stewart). Below it, a second pass is required.
const DGKS_ETA: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Orthogonalize vector `x` against the first `ncols` columns of `basis`
/// (assumed orthonormal). Returns the remaining norm of `x`.
///
/// This is the reorthogonalization step of the Lanczos iteration,
/// implemented as adaptive *classical* Gram–Schmidt (CGS2 with the DGKS
/// criterion): each pass computes all projection coefficients at once
/// (`y = Q^T x`) and then applies them in one panel update (`x -= Q y`).
/// If the first pass keeps at least `DGKS_ETA` of the norm — the common
/// case inside full-reorthogonalization Lanczos, where the three-term
/// recurrence already removed almost all of the projection — once is
/// enough and the second pass is skipped. Otherwise a second pass runs
/// ("twice is enough"). Either way the work is BLAS-2 panel kernels —
/// four fused columns per sweep of `x` — instead of `2·ncols` dependent
/// dot/axpy pairs.
///
/// The DGKS reading is only meaningful when the basis really is
/// orthonormal; callers whose basis may have degenerated (sparse
/// periodic reorthogonalization, restarts) must use
/// [`orthogonalize_against_robust`] instead.
pub fn orthogonalize_against(basis: &DenseMatrix, ncols: usize, x: &mut [f64]) -> f64 {
    debug_assert!(ncols <= basis.ncols());
    debug_assert_eq!(basis.nrows(), x.len());
    let norm_in = vecops::nrm2(x);
    cgs_pass(basis, ncols, x);
    let norm1 = vecops::nrm2(x);
    if norm1 >= DGKS_ETA * norm_in && norm1 <= norm_in * (1.0 + 1e-12) {
        return norm1;
    }
    cgs_pass(basis, ncols, x);
    vecops::nrm2(x)
}

/// Like [`orthogonalize_against`], but safe against a basis that may
/// have *lost* orthonormality (the periodic-reorthogonalization ghost
/// regime, and restarts under sparse policies). Always runs both CGS
/// passes — a degenerate basis makes the single-pass DGKS reading
/// meaningless — and falls back to two MGS sweeps if the pair of
/// passes *grew* the norm, which an orthonormal basis can never do.
pub fn orthogonalize_against_robust(basis: &DenseMatrix, ncols: usize, x: &mut [f64]) -> f64 {
    debug_assert!(ncols <= basis.ncols());
    debug_assert_eq!(basis.nrows(), x.len());
    let norm_in = vecops::nrm2(x);
    cgs_pass(basis, ncols, x);
    cgs_pass(basis, ncols, x);
    let norm_out = vecops::nrm2(x);
    if norm_out <= norm_in * (1.0 + 1e-12) {
        return norm_out;
    }
    // Degenerate basis: redo the cleanup with modified Gram–Schmidt.
    // (The CGS passes above only added components inside the basis's
    // span, which the MGS sweep removes along with the originals.)
    for _pass in 0..2 {
        for j in 0..ncols {
            let proj = vecops::dot(basis.col(j), x);
            vecops::axpy(-proj, basis.col(j), x);
        }
    }
    vecops::nrm2(x)
}

/// One classical Gram–Schmidt pass on the panel kernels:
/// `x -= Q (Qᵀ x)`.
#[inline]
fn cgs_pass(basis: &DenseMatrix, ncols: usize, x: &mut [f64]) {
    let y = gemm::panel_qt_w(basis, ncols, x);
    gemm::panel_w_minus_qy(basis, ncols, &y, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_tn};

    fn assert_orthonormal(q: &DenseMatrix, tol: f64) {
        let qtq = matmul_tn(q, q).unwrap();
        let eye = DenseMatrix::identity(q.ncols());
        assert!(
            qtq.fro_distance(&eye).unwrap() < tol,
            "Q^T Q deviates from identity by {}",
            qtq.fro_distance(&eye).unwrap()
        );
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ])
        .unwrap();
        let Qr { q, r } = householder_qr(&a).unwrap();
        assert_eq!(q.shape(), (4, 2));
        assert_eq!(r.shape(), (2, 2));
        assert_orthonormal(&q, 1e-12);
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.fro_distance(&a).unwrap() < 1e-12);
    }

    #[test]
    fn qr_of_wide_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let Qr { q, r } = householder_qr(&a).unwrap();
        assert_eq!(q.shape(), (2, 2));
        assert_eq!(r.shape(), (2, 3));
        assert_orthonormal(&q, 1e-12);
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.fro_distance(&a).unwrap() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, 3.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 5.0, 2.0],
        ])
        .unwrap();
        let Qr { r, .. } = householder_qr(&a).unwrap();
        for i in 0..r.nrows() {
            for j in 0..i.min(r.ncols()) {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn qr_of_rank_deficient_matrix_still_orthonormal() {
        // Two identical columns.
        let a = DenseMatrix::from_cols(&[vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]]).unwrap();
        let Qr { q, r } = householder_qr(&a).unwrap();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.fro_distance(&a).unwrap() < 1e-12);
    }

    #[test]
    fn qr_rejects_nan() {
        let a = DenseMatrix::from_rows(&[vec![f64::NAN]]).unwrap();
        assert!(householder_qr(&a).is_err());
    }

    #[test]
    fn mgs_orthonormalizes_independent_columns() {
        let mut a =
            DenseMatrix::from_cols(&[vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]])
                .unwrap();
        let kept = mgs_orthonormalize(&mut a);
        assert_eq!(kept, vec![true, true, true]);
        assert_orthonormal(&a, 1e-12);
    }

    #[test]
    fn mgs_flags_dependent_columns() {
        let mut a = DenseMatrix::from_cols(&[
            vec![1.0, 0.0],
            vec![2.0, 0.0], // parallel to column 0
            vec![0.0, 3.0],
        ])
        .unwrap();
        let kept = mgs_orthonormalize(&mut a);
        assert_eq!(kept, vec![true, false, true]);
        assert!(vecops::nrm2(a.col(1)) == 0.0);
    }

    #[test]
    fn orthogonalize_against_removes_components() {
        let basis = DenseMatrix::from_cols(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]).unwrap();
        let mut x = vec![3.0, 4.0, 5.0];
        let rem = orthogonalize_against(&basis, 2, &mut x);
        assert!((rem - 5.0).abs() < 1e-12);
        assert!(x[0].abs() < 1e-12 && x[1].abs() < 1e-12);
        assert!((x[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn qr_handles_pathologically_close_columns() {
        // Classical Gram-Schmidt would lose orthogonality here.
        let e = 1e-10;
        let a = DenseMatrix::from_cols(&[
            vec![1.0, e, 0.0],
            vec![1.0, 0.0, e],
        ])
        .unwrap();
        let Qr { q, .. } = householder_qr(&a).unwrap();
        assert_orthonormal(&q, 1e-10);
    }
}
