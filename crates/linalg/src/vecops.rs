//! BLAS-1 style vector kernels.
//!
//! These are the innermost loops of the Lanczos iteration and the query
//! scorer; they are written over plain slices so both dense and sparse
//! callers can use them without adapters.

/// Dot product `x · y`.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // Accumulate in four lanes to let LLVM vectorize without relying on
    // float re-association being legal.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean norm `||x||_2`, guarded against overflow by scaling.
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Dot product `x · y` over `f32` slices.
///
/// Eight accumulation lanes instead of [`dot`]'s four: f32 packs twice
/// as many elements per vector register, so the wider unroll keeps the
/// autovectorized loop saturated without relying on float
/// re-association being legal.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let i = 8 * c;
        for l in 0..8 {
            acc[l] += x[i + l] * y[i + l];
        }
    }
    let mut tail = 0.0f32;
    for i in 8 * chunks..x.len() {
        tail += x[i] * y[i];
    }
    let head = (acc[0] + acc[1]) + (acc[2] + acc[3]) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    head + tail
}

/// `y += alpha * x` over `f32` slices.
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalize `x` to unit 2-norm in place and return the original norm.
///
/// If `x` is (numerically) zero the vector is left unchanged and `0.0`
/// is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = nrm2(x);
    if n > 0.0 {
        scal(1.0 / n, x);
    }
    n
}

/// Cosine of the angle between `x` and `y`; `0.0` if either is zero.
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = nrm2(x);
    let ny = nrm2(y);
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    dot(x, y) / (nx * ny)
}

/// Elementwise copy (`y = x`).
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// `||x - y||_2`.
pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Index and value of the entry with the largest absolute value.
///
/// Returns `None` for an empty slice.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("non-NaN"))
        .map(|(i, &v)| (i, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_known_vectors() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&x, &y), 35.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_f32_matches_f64_reference_on_small_inputs() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let y: Vec<f32> = (0..37).map(|i| 1.0 - (i as f32) * 0.125).collect();
        let reference: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((dot_f32(&x, &y) as f64 - reference).abs() < 1e-3);
        assert_eq!(dot_f32(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_f32_updates_in_place() {
        let x = [1.0f32, 2.0];
        let mut y = [10.0f32, 20.0];
        axpy_f32(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn nrm2_handles_large_values_without_overflow() {
        let big = 1e300;
        let n = nrm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_returns_norm_and_unit_vector() {
        let mut x = [0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((nrm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-15);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn argmax_abs_finds_largest_magnitude() {
        assert_eq!(argmax_abs(&[1.0, -5.0, 3.0]), Some((1, -5.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn distance_matches_norm_of_difference() {
        assert!((distance(&[1.0, 1.0], &[4.0, 5.0]) - 5.0).abs() < 1e-15);
    }
}
