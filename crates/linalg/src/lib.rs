//! Dense linear algebra kernels for the LSI reproduction.
//!
//! This crate implements, from scratch, every dense numerical routine the
//! LSI pipeline of Berry, Dumais & Letsche (SC '95) depends on:
//!
//! * a column-major [`DenseMatrix`] with BLAS-1/2/3 style kernels
//!   ([`ops`], [`vecops`]), backed by a cache-blocked, register-tiled
//!   GEMM and Gram–Schmidt panel kernels ([`gemm`]),
//! * Householder QR factorization and modified Gram–Schmidt ([`qr`]),
//! * a symmetric tridiagonal eigensolver (implicit QL with Wilkinson
//!   shifts, plus Sturm-sequence bisection) ([`tridiag`]),
//! * a dense symmetric eigensolver via Householder tridiagonalization
//!   ([`symeig`]),
//! * two independent dense SVD implementations — one-sided Jacobi with
//!   de Rijk pivoting ([`jacobi`]) and Golub–Kahan bidiagonalization with
//!   implicit-shift QR ([`bidiag`]) — used to cross-validate one another,
//! * orthogonality diagnostics used by the paper's §4.3 analysis of the
//!   folding-in process ([`ortho`]).
//!
//! The crate is deliberately self-contained: no external linear algebra
//! dependency is used anywhere in the workspace.

// Index-based loops over parallel arrays are the clearest idiom in
// numerical kernels; clippy's iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]


pub mod bidiag;
pub mod gemm;
pub mod givens;
pub mod jacobi;
pub mod lowp;
pub mod matrix;
pub mod ops;
pub mod ortho;
pub mod qr;
pub mod svd;
pub mod symeig;
pub mod tridiag;
pub mod vecops;

pub use bidiag::golub_kahan_svd;
pub use gemm::{panel_qt_w, panel_w_minus_qy};
pub use jacobi::jacobi_svd;
pub use matrix::{DenseMatrix, RowView};
pub use ortho::{orthogonality_defect_fro, orthogonality_defect_spectral};
pub use svd::{dense_svd, Svd};
pub use symeig::sym_eigen;
pub use tridiag::{tridiag_eigen, tridiag_eigen_last_row, SymTridiag};

/// Machine-precision scale used for convergence thresholds throughout the
/// crate. Routines use multiples of this rather than hard-coded constants.
pub const EPS: f64 = f64::EPSILON;

/// Convenience result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors reported by the numerical kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An iterative method did not converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained NaN or infinite values.
    NotFinite,
    /// A parameter was out of its valid range.
    InvalidArgument {
        /// Description of the invalid parameter.
        context: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            Error::NoConvergence { routine, iterations } => {
                write!(f, "{routine} failed to converge after {iterations} iterations")
            }
            Error::NotFinite => write!(f, "input contains NaN or infinite entries"),
            Error::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(Error::DimensionMismatch {
            context: "3x4 with 5".into()
        }
        .to_string()
        .contains("3x4"));
        assert!(Error::NoConvergence {
            routine: "tqli",
            iterations: 30
        }
        .to_string()
        .contains("tqli"));
        assert_eq!(
            Error::NotFinite.to_string(),
            "input contains NaN or infinite entries"
        );
        assert!(Error::InvalidArgument {
            context: "k too big".into()
        }
        .to_string()
        .contains("k too big"));
    }
}
