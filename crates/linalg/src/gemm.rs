//! Cache-blocked, register-tiled GEMM and the panel kernels behind
//! Gram–Schmidt reorthogonalization.
//!
//! The layout follows the classic Goto/BLIS decomposition: the output
//! is tiled into `MR x NR` register blocks; operand panels are packed
//! into contiguous micro-panels so the innermost loop streams both
//! operands sequentially regardless of transposition; and the three
//! outer loops block for cache (`MC x KC` packed A resident in L2,
//! `KC x NR` slivers of packed B streaming through L1). Transposed
//! products (`A^T B`, `A B^T`) reuse the same kernel — transposition is
//! absorbed by the packing routines, never by strided inner loops.
//!
//! Parallelism splits the *output columns* across cores (each worker
//! owns a contiguous block of `C`'s column-major storage, so writes are
//! disjoint and allocation-free). Dispatch now goes through the
//! persistent pool in `vendor/rayon` (~40 µs per parallel region on
//! this container, vs ~0.6–1.7 ms for the scoped spawns it replaced),
//! so the thresholds below admit megaflop-scale products instead of
//! requiring tens of megaflops.
//!
//! The panel kernels (`panel_qt_w`, `panel_w_minus_qy`) are the BLAS-2
//! building blocks of classical Gram–Schmidt: `y = Q^T w` fuses four
//! column dot products per sweep of `w`, and `w -= Q y` fuses four
//! AXPYs per sweep, quartering the traffic over `w` compared to
//! column-at-a-time MGS.

use rayon::prelude::*;

use crate::matrix::DenseMatrix;

/// Register tile height (rows of C per micro-kernel call). 16 doubles
/// is two 512-bit registers (or four 256-bit ones), which doubles the
/// flops per broadcast of B relative to the old 8-row tile — measured
/// ~2x on both square and tall-skinny shapes under the AVX-512 kernel.
const MR: usize = 16;
/// Register tile width (columns of C per micro-kernel call).
const NR: usize = 4;
/// Rows of A packed per cache block (the `MC x KC` panel targets L2).
const MC: usize = 128;
/// Depth of one packed panel pair.
const KC: usize = 256;
/// Columns of B packed per cache block.
const NC: usize = 512;

/// Flop count (2·m·n·k) below which GEMM stays serial.
///
/// Calibration: `cargo test -p rayon --release -- --ignored
/// --nocapture dispatch` measures ~38 µs per pooled parallel region on
/// this 2-core container (versus ~0.6 ms per scoped spawn, and the
/// ~1.7 ms PR 1 measured on a colder container — the number that
/// forced the old 1<<25 threshold). At the ~4 GFLOP/s the serial
/// blocked kernel sustains, 1<<21 flops ≈ 525 µs of work: a 2-way
/// split spends 262 µs + 38 µs dispatch ≈ 1.75x speedup, and anything
/// smaller decays toward break-even (2 × 38 µs ≈ 300 KFLOP).
pub const GEMM_PAR_MIN_FLOPS: usize = 1 << 21;

/// Flop count (2·m·ncols) below which the panel BLAS-2 kernels stay
/// serial. Same dispatch measurement as [`GEMM_PAR_MIN_FLOPS`], plus a
/// direct kernel sweep (`cargo test -p lsi-linalg --release --test
/// par_kernels -- --ignored --nocapture`): the fused 4-column panels
/// sustain ~7–9 GFLOP/s serial when the basis is cache-resident — far
/// above the ~1.8 GFLOP/s a cold-memory estimate suggests — so a panel
/// burns through 1<<18 flops in ~40 µs, comparable to one dispatch.
/// At that setting the pooled Lanczos reorth stage measured 1.6x
/// *slower* than serial (interleaved calls park the workers; realized
/// per-dispatch overhead ~30 µs). 1<<20 flops ≈ 120–140 µs of serial
/// sweep clears the overhead (~1.15x warm at 896 KFLOP, growing with
/// size). For the 3500-row Lanczos gram basis this admits panels past
/// ~150 columns — only the widest late-iteration reorth sweeps, which
/// is where the time actually is.
pub const PANEL_PAR_MIN_FLOPS: usize = 1 << 20;

/// A possibly-transposed read view of column-major storage: element
/// `(r, c)` of the *effective* operand. Transposition swaps the roles
/// of the row index and the column stride, so both cases are one
/// multiply-add address computation.
#[derive(Clone, Copy)]
pub(crate) struct View<'a> {
    data: &'a [f64],
    ld: usize,
    trans: bool,
}

impl<'a> View<'a> {
    /// The matrix as stored.
    pub(crate) fn normal(a: &'a DenseMatrix) -> View<'a> {
        View { data: a.data(), ld: a.nrows().max(1), trans: false }
    }

    /// The transpose of the matrix as stored.
    pub(crate) fn transposed(a: &'a DenseMatrix) -> View<'a> {
        View { data: a.data(), ld: a.nrows().max(1), trans: true }
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f64 {
        if self.trans {
            self.data[r * self.ld + c]
        } else {
            self.data[c * self.ld + r]
        }
    }
}

// SAFETY: View is a read-only borrow of a f64 slice.
unsafe impl Send for View<'_> {}
unsafe impl Sync for View<'_> {}

/// Pack the `mc x kc` block of `a` starting at `(i0, p0)` into MR-row
/// micro-panels: panel `ib` holds rows `i0 + ib*MR ..` laid out as `kc`
/// consecutive groups of `MR` values. Rows past `mc` pad with zeros so
/// the micro-kernel never branches on edges.
fn pack_a(a: View<'_>, i0: usize, mc: usize, p0: usize, kc: usize, buf: &mut [f64]) {
    let mb = mc.div_ceil(MR);
    for ib in 0..mb {
        let rows = (mc - ib * MR).min(MR);
        let panel = &mut buf[ib * kc * MR..(ib * kc + kc) * MR];
        let r0 = i0 + ib * MR;
        if !a.trans {
            // Untransposed fast path: the `rows` panel rows of effective
            // column `p0 + l` are one contiguous run of the column-major
            // backing store, so each micro-row is a block copy instead of
            // `MR` bounds-checked element reads. This matters most for
            // tall-skinny products (few output columns), where packing is
            // amortized over little compute and per-element `at` calls
            // were the dominant cost.
            for l in 0..kc {
                let dst = &mut panel[l * MR..l * MR + MR];
                let src0 = (p0 + l) * a.ld + r0;
                dst[..rows].copy_from_slice(&a.data[src0..src0 + rows]);
                for d in dst[rows..].iter_mut() {
                    *d = 0.0;
                }
            }
            continue;
        }
        for l in 0..kc {
            let dst = &mut panel[l * MR..l * MR + MR];
            for i in 0..rows {
                dst[i] = a.at(r0 + i, p0 + l);
            }
            for d in dst[rows..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Pack the `kc x nc` block of `b` starting at `(p0, j0)` into NR-column
/// micro-panels, zero-padded past `nc`.
fn pack_b(b: View<'_>, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f64]) {
    let nb = nc.div_ceil(NR);
    for jb in 0..nb {
        let cols = (nc - jb * NR).min(NR);
        let panel = &mut buf[jb * kc * NR..(jb * kc + kc) * NR];
        for l in 0..kc {
            let dst = &mut panel[l * NR..l * NR + NR];
            for j in 0..cols {
                dst[j] = b.at(p0 + l, j0 + jb * NR + j);
            }
            for d in dst[cols..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// The register tile: `MR x NR` accumulators updated along the packed
/// `kc` dimension. Both operands stream contiguously; the accumulators
/// live in registers across the whole loop. This is the single source
/// of truth for the tile arithmetic — the ISA-specific entry points
/// below inline it so every build target compiles the same loop.
#[inline(always)]
fn micro_kernel_body(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for l in 0..kc {
        // Fixed-size array views let the compiler drop bounds checks and
        // keep the 64 accumulators in vector registers.
        let av: &[f64; MR] = apanel[l * MR..l * MR + MR].try_into().expect("MR chunk");
        let bv: &[f64; NR] = bpanel[l * NR..l * NR + NR].try_into().expect("NR chunk");
        for j in 0..NR {
            let b = bv[j];
            for i in 0..MR {
                acc[j][i] += av[i] * b;
            }
        }
    }
    acc
}

/// [`micro_kernel_body`] compiled with AVX2 + FMA enabled: the default
/// `x86-64` target only guarantees SSE2, which leaves the tile at
/// 2-wide multiplies plus separate adds. Recompiling the same loop with
/// the wider features lets LLVM use 4-wide FMAs (~3x the sustained
/// flop rate on the hot GEMM shapes). FMA fuses the multiply-add
/// rounding step, so results can differ from the SSE2 path in the last
/// ulp — but kernel selection is a machine-wide constant, so any given
/// host is internally deterministic (serial and parallel paths pick the
/// same kernel).
///
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
// SAFETY: callers must ensure the CPU supports `avx2` and `fma`; the
// dispatcher below checks via `is_x86_feature_detected!` before calling.
unsafe fn micro_kernel_avx2(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; MR]; NR] {
    micro_kernel_body(kc, apanel, bpanel)
}

/// [`micro_kernel_body`] compiled with AVX-512 enabled: `MR = 16`
/// doubles is exactly two 512-bit registers, so each accumulator column
/// is two zmm FMAs per packed step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// SAFETY: callers must ensure the CPU supports `avx512f`; the
// dispatcher below checks via `is_x86_feature_detected!` before calling.
unsafe fn micro_kernel_avx512(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; MR]; NR] {
    micro_kernel_body(kc, apanel, bpanel)
}

/// Dispatch to the widest micro-kernel the host supports. The feature
/// probes are cached by `std_detect` behind an atomic, so the per-call
/// cost is a couple of relaxed loads against ~8 Kflop of tile work.
#[inline(always)]
fn micro_kernel(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; MR]; NR] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            // SAFETY: the runtime probe above confirmed avx512f is
            // available on this CPU.
            return unsafe { micro_kernel_avx512(kc, apanel, bpanel) };
        }
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            // SAFETY: the runtime probe above confirmed avx2 and fma are
            // available on this CPU.
            return unsafe { micro_kernel_avx2(kc, apanel, bpanel) };
        }
    }
    micro_kernel_body(kc, apanel, bpanel)
}

/// Serial blocked GEMM for output columns `jc0 .. jc0 + n_span`,
/// accumulating into `c_span` (the column-major storage of exactly
/// those columns, assumed zero-initialized).
fn gemm_span(
    c_span: &mut [f64],
    m: usize,
    n_span: usize,
    k: usize,
    jc0: usize,
    a: View<'_>,
    b: View<'_>,
) {
    if m == 0 || n_span == 0 || k == 0 {
        return;
    }
    let mut apack = vec![0.0f64; MC.div_ceil(MR) * MR * KC];
    let mut bpack = vec![0.0f64; n_span.min(NC).div_ceil(NR) * NR * KC];

    for jc in (0..n_span).step_by(NC) {
        let nc = (n_span - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(b, pc, kc, jc0 + jc, nc, &mut bpack);
            for ic in (0..m).step_by(MC) {
                let mc = (m - ic).min(MC);
                pack_a(a, ic, mc, pc, kc, &mut apack);
                for jb in 0..nc.div_ceil(NR) {
                    let cols = (nc - jb * NR).min(NR);
                    for ib in 0..mc.div_ceil(MR) {
                        let rows = (mc - ib * MR).min(MR);
                        let acc = micro_kernel(
                            kc,
                            &apack[ib * kc * MR..(ib * kc + kc) * MR],
                            &bpack[jb * kc * NR..(jb * kc + kc) * NR],
                        );
                        for j in 0..cols {
                            let col0 = (jc + jb * NR + j) * m + ic + ib * MR;
                            let out = &mut c_span[col0..col0 + rows];
                            for i in 0..rows {
                                out[i] += acc[j][i];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Blocked `C = op(A) * op(B)` producing column-major storage for an
/// `m x n` result with inner dimension `k`. Parallelizes across
/// contiguous blocks of output columns when the flop count warrants it.
pub(crate) fn gemm(m: usize, n: usize, k: usize, a: View<'_>, b: View<'_>) -> Vec<f64> {
    let mut c = vec![0.0f64; m * n];
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    let nthreads = rayon::current_num_threads();
    lsi_obs::add_flops(flops as f64);
    lsi_obs::observe("linalg.gemm.flops", flops as f64);
    if flops >= GEMM_PAR_MIN_FLOPS && nthreads > 1 && n > 1 {
        lsi_obs::count("linalg.gemm.parallel.count", 1);
        let cols_per = n.div_ceil(nthreads);
        c.par_chunks_mut(m * cols_per)
            .enumerate()
            .for_each(|(w, span)| {
                let ncols = span.len() / m;
                gemm_span(span, m, ncols, k, w * cols_per, a, b);
            });
    } else {
        lsi_obs::count("linalg.gemm.serial.count", 1);
        gemm_span(&mut c, m, n, k, 0, a, b);
    }
    c
}

/// Four column dot products fused over one sweep of `w`:
/// `out[j] = Q[:, j0 + j] . w` for the block of columns.
#[inline(always)]
fn dot_block(q: &[f64], m: usize, j0: usize, cols: usize, w: &[f64], out: &mut [f64]) {
    debug_assert!(cols <= 4);
    match cols {
        4 => {
            let c0 = &q[j0 * m..(j0 + 1) * m];
            let c1 = &q[(j0 + 1) * m..(j0 + 2) * m];
            let c2 = &q[(j0 + 2) * m..(j0 + 3) * m];
            let c3 = &q[(j0 + 3) * m..(j0 + 4) * m];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..m {
                let wi = w[i];
                s0 += c0[i] * wi;
                s1 += c1[i] * wi;
                s2 += c2[i] * wi;
                s3 += c3[i] * wi;
            }
            out[0] = s0;
            out[1] = s1;
            out[2] = s2;
            out[3] = s3;
        }
        _ => {
            for j in 0..cols {
                let c = &q[(j0 + j) * m..(j0 + j + 1) * m];
                let mut s = 0.0;
                for i in 0..m {
                    s += c[i] * w[i];
                }
                out[j] = s;
            }
        }
    }
}

/// Panel BLAS-2: `y = Q[:, :ncols]^T w`, four fused column dot products
/// per sweep of `w`. Above [`PANEL_PAR_MIN_FLOPS`] the 4-column blocks
/// of `y` are split across the pool; each `y[j]` is still produced by
/// exactly one `dot_block` call identical to the serial one, so the
/// result is bit-for-bit independent of the thread count.
pub fn panel_qt_w(q: &DenseMatrix, ncols: usize, w: &[f64]) -> Vec<f64> {
    debug_assert!(ncols <= q.ncols());
    debug_assert_eq!(q.nrows(), w.len());
    let m = q.nrows();
    let mut y = vec![0.0f64; ncols];
    if ncols == 0 || m == 0 {
        return y;
    }
    let flops = 2 * m * ncols;
    lsi_obs::add_flops(flops as f64);
    lsi_obs::count("linalg.panel_qt_w.count", 1);
    let qdata = q.data();
    if flops >= PANEL_PAR_MIN_FLOPS && rayon::current_num_threads() > 1 && ncols > 4 {
        y.par_chunks_mut(4).enumerate().for_each(|(b, out)| {
            dot_block(qdata, m, b * 4, out.len(), w, out);
        });
        return y;
    }
    let mut j = 0;
    while j < ncols {
        let cols = (ncols - j).min(4);
        dot_block(qdata, m, j, cols, w, &mut y[j..j + cols]);
        j += cols;
    }
    y
}

/// Four fused AXPYs over one sweep of a row span of `w`:
/// `w[i] -= sum_j y[j0 + j] * Q[r0 + i, j0 + j]`. `r0` is the row the
/// span starts at, so the parallel path can hand disjoint row spans of
/// `w` to different workers against the matching slices of Q's columns.
#[inline(always)]
fn axpy_block(q: &[f64], m: usize, j0: usize, cols: usize, y: &[f64], r0: usize, w: &mut [f64]) {
    debug_assert!(cols <= 4);
    let rows = w.len();
    match cols {
        4 => {
            let c0 = &q[j0 * m + r0..j0 * m + r0 + rows];
            let c1 = &q[(j0 + 1) * m + r0..(j0 + 1) * m + r0 + rows];
            let c2 = &q[(j0 + 2) * m + r0..(j0 + 2) * m + r0 + rows];
            let c3 = &q[(j0 + 3) * m + r0..(j0 + 3) * m + r0 + rows];
            let (y0, y1, y2, y3) = (y[j0], y[j0 + 1], y[j0 + 2], y[j0 + 3]);
            for i in 0..rows {
                w[i] -= y0 * c0[i] + y1 * c1[i] + y2 * c2[i] + y3 * c3[i];
            }
        }
        _ => {
            for j in 0..cols {
                let c = &q[(j0 + j) * m + r0..(j0 + j) * m + r0 + rows];
                let yj = y[j0 + j];
                for i in 0..rows {
                    w[i] -= yj * c[i];
                }
            }
        }
    }
}

/// Panel BLAS-2 update: `w -= Q[:, :ncols] * y`, four fused AXPYs per
/// sweep of `w`. Above [`PANEL_PAR_MIN_FLOPS`] the *rows* of `w` are
/// split across the pool (the columns carry a sequential dependence in
/// `y`, the rows do not). Each row span runs the same j-block loop in
/// the same order as the serial code, so every `w[i]` sees an
/// identical operation sequence and the result is bit-for-bit
/// independent of the thread count.
pub fn panel_w_minus_qy(q: &DenseMatrix, ncols: usize, y: &[f64], w: &mut [f64]) {
    debug_assert!(ncols <= q.ncols());
    debug_assert_eq!(q.nrows(), w.len());
    debug_assert_eq!(y.len(), ncols);
    let m = q.nrows();
    if ncols == 0 || m == 0 {
        return;
    }
    let flops = 2 * m * ncols;
    lsi_obs::add_flops(flops as f64);
    lsi_obs::count("linalg.panel_w_minus_qy.count", 1);
    let qdata = q.data();
    let nthreads = rayon::current_num_threads();
    if flops >= PANEL_PAR_MIN_FLOPS && nthreads > 1 && m > 1 {
        // Two spans per thread keeps the pool's chunker from handing
        // the whole vector to one worker while staying cache-friendly.
        let span = m.div_ceil(nthreads * 2).max(1);
        w.par_chunks_mut(span).enumerate().for_each(|(ci, wspan)| {
            let r0 = ci * span;
            let mut j = 0;
            while j < ncols {
                let cols = (ncols - j).min(4);
                axpy_block(qdata, m, j, cols, y, r0, wspan);
                j += cols;
            }
        });
        return;
    }
    let mut j = 0;
    while j < ncols {
        let cols = (ncols - j).min(4);
        axpy_block(qdata, m, j, cols, y, 0, w);
        j += cols;
    }
}

/// Straightforward triple-loop reference implementations. These are the
/// oracles the blocked kernels are property-tested against; they are
/// deliberately naive and never called on hot paths.
pub mod reference {
    use crate::matrix::DenseMatrix;

    /// `C = A * B` by direct summation.
    pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(a.ncols(), b.nrows());
        let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
        for j in 0..b.ncols() {
            for i in 0..a.nrows() {
                let mut s = 0.0;
                for l in 0..a.ncols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// `C = A^T * B` by direct summation.
    pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(a.nrows(), b.nrows());
        let mut c = DenseMatrix::zeros(a.ncols(), b.ncols());
        for j in 0..b.ncols() {
            for i in 0..a.ncols() {
                let mut s = 0.0;
                for l in 0..a.nrows() {
                    s += a.get(l, i) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// `C = A * B^T` by direct summation.
    pub fn matmul_nt(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(a.ncols(), b.ncols());
        let mut c = DenseMatrix::zeros(a.nrows(), b.nrows());
        for j in 0..b.nrows() {
            for i in 0..a.nrows() {
                let mut s = 0.0;
                for l in 0..a.ncols() {
                    s += a.get(i, l) * b.get(j, l);
                }
                c.set(i, j, s);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(m: usize, n: usize, rng: &mut StdRng) -> DenseMatrix {
        let data: Vec<f64> = (0..m * n).map(|_| rng.random::<f64>() - 0.5).collect();
        DenseMatrix::from_col_major(m, n, data).unwrap()
    }

    #[test]
    fn blocked_gemm_matches_reference_on_odd_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        // Shapes chosen to hit every edge: below one tile, exact
        // multiples, one past a block boundary.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (MR, KC, NR),
            (MR + 1, 3, NR + 1),
            (MC + 3, KC + 5, NR * 3 + 2),
            (130, 70, 33),
        ] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c = gemm(m, n, k, View::normal(&a), View::normal(&b));
            let want = reference::matmul(&a, &b);
            let got = DenseMatrix::from_col_major(m, n, c).unwrap();
            assert!(
                got.fro_distance(&want).unwrap() < 1e-12 * (m * n) as f64,
                "({m},{k},{n}) mismatch"
            );
        }
    }

    #[test]
    fn transposed_views_match_explicit_transposes() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(37, 19, &mut rng);
        let b = random_matrix(37, 23, &mut rng);
        // A^T B via the view against explicit transposition.
        let c = gemm(19, 23, 37, View::transposed(&a), View::normal(&b));
        let want = reference::matmul(&a.transpose(), &b);
        let got = DenseMatrix::from_col_major(19, 23, c).unwrap();
        assert!(got.fro_distance(&want).unwrap() < 1e-12);
        // A B^T via the view.
        let bt = random_matrix(23, 19, &mut rng);
        let c = gemm(37, 23, 19, View::normal(&a), View::transposed(&bt));
        let want = reference::matmul(&a, &bt.transpose());
        let got = DenseMatrix::from_col_major(37, 23, c).unwrap();
        assert!(got.fro_distance(&want).unwrap() < 1e-12);
    }

    #[test]
    fn zero_inner_dimension_yields_zero_matrix() {
        let a = DenseMatrix::zeros(4, 0);
        let b = DenseMatrix::zeros(0, 3);
        let c = gemm(4, 3, 0, View::normal(&a), View::normal(&b));
        assert!(c.iter().all(|&x| x == 0.0));
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn panel_qt_w_matches_per_column_dots() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n) in &[(5usize, 1usize), (64, 7), (301, 13)] {
            let q = random_matrix(m, n, &mut rng);
            let w: Vec<f64> = (0..m).map(|_| rng.random::<f64>() - 0.5).collect();
            let y = panel_qt_w(&q, n, &w);
            for j in 0..n {
                let want = crate::vecops::dot(q.col(j), &w);
                assert!((y[j] - want).abs() < 1e-12, "col {j}");
            }
        }
    }

    #[test]
    fn panel_w_minus_qy_matches_axpy_loop() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(m, n) in &[(5usize, 1usize), (64, 6), (301, 11)] {
            let q = random_matrix(m, n, &mut rng);
            let y: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
            let mut w: Vec<f64> = (0..m).map(|_| rng.random::<f64>() - 0.5).collect();
            let mut want = w.clone();
            panel_w_minus_qy(&q, n, &y, &mut w);
            for j in 0..n {
                crate::vecops::axpy(-y[j], q.col(j), &mut want);
            }
            for i in 0..m {
                assert!((w[i] - want[i]).abs() < 1e-12, "row {i}");
            }
        }
    }

    #[test]
    fn empty_panels_are_no_ops() {
        let q = DenseMatrix::zeros(4, 2);
        let mut w = vec![1.0, 2.0, 3.0, 4.0];
        assert!(panel_qt_w(&q, 0, &w).is_empty());
        panel_w_minus_qy(&q, 0, &[], &mut w);
        assert_eq!(w, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
