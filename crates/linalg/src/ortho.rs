//! Orthogonality diagnostics.
//!
//! §4.3 of the paper measures the damage folding-in does to the LSI
//! factor matrices as `||Uhat^T Uhat - I_k||_2` and
//! `||Vhat^T Vhat - I_k||_2`. These helpers compute exactly those
//! quantities (spectral norm via the symmetric eigensolver, Frobenius as
//! a cheap proxy).

use crate::matrix::DenseMatrix;
use crate::ops::matmul_tn;
use crate::symeig::sym_eigen;
use crate::Result;

/// `Q^T Q - I` for the first `k` columns of `q` (all columns if `k`
/// exceeds the column count).
fn gram_defect(q: &DenseMatrix, k: usize) -> Result<DenseMatrix> {
    let k = k.min(q.ncols());
    let qk = q.truncate_cols(k);
    let mut g = matmul_tn(&qk, &qk)?;
    for i in 0..k {
        g.add_to(i, i, -1.0);
    }
    Ok(g)
}

/// Spectral-norm orthogonality defect `||Q^T Q - I_k||_2` — the measure
/// the paper proposes for monitoring folding-in distortion.
pub fn orthogonality_defect_spectral(q: &DenseMatrix, k: usize) -> Result<f64> {
    let g = gram_defect(q, k)?;
    if g.nrows() == 0 {
        return Ok(0.0);
    }
    let (vals, _) = sym_eigen(&g)?;
    Ok(vals
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs())))
}

/// Frobenius-norm orthogonality defect `||Q^T Q - I_k||_F`.
pub fn orthogonality_defect_fro(q: &DenseMatrix, k: usize) -> Result<f64> {
    Ok(gram_defect(q, k)?.fro_norm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_of_orthonormal_matrix_is_zero() {
        let q = DenseMatrix::identity(4);
        assert!(orthogonality_defect_spectral(&q, 4).unwrap() < 1e-12);
        assert!(orthogonality_defect_fro(&q, 4).unwrap() < 1e-12);
    }

    #[test]
    fn defect_of_scaled_column() {
        // One column of norm 2: Q^T Q - I = diag(3, 0), spectral norm 3.
        let q = DenseMatrix::from_cols(&[vec![2.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let d = orthogonality_defect_spectral(&q, 2).unwrap();
        assert!((d - 3.0).abs() < 1e-12);
        let f = orthogonality_defect_fro(&q, 2).unwrap();
        assert!((f - 3.0).abs() < 1e-12);
    }

    #[test]
    fn defect_of_correlated_columns() {
        // Two identical unit columns: G - I = [[0,1],[1,0]], norm 1.
        let c = std::f64::consts::FRAC_1_SQRT_2;
        let q = DenseMatrix::from_cols(&[vec![c, c], vec![c, c]]).unwrap();
        let d = orthogonality_defect_spectral(&q, 2).unwrap();
        assert!((d - 1.0).abs() < 1e-10);
    }

    #[test]
    fn k_restricts_measured_columns() {
        // First column orthonormal, second bad; k=1 sees no defect.
        let q = DenseMatrix::from_cols(&[vec![1.0, 0.0], vec![5.0, 0.0]]).unwrap();
        assert!(orthogonality_defect_spectral(&q, 1).unwrap() < 1e-12);
        assert!(orthogonality_defect_spectral(&q, 2).unwrap() > 1.0);
    }

    #[test]
    fn spectral_bounded_by_frobenius() {
        let q = DenseMatrix::from_cols(&[vec![1.0, 0.2, 0.0], vec![0.1, 1.0, 0.3]]).unwrap();
        let s = orthogonality_defect_spectral(&q, 2).unwrap();
        let f = orthogonality_defect_fro(&q, 2).unwrap();
        assert!(s <= f + 1e-12);
    }
}
