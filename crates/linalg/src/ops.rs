//! BLAS-2/3 style dense matrix kernels.
//!
//! The SVD-updating phases of the paper (§4.2) are dominated by dense
//! products of the form `U_k * U_F` with tall-skinny operands. All
//! three product shapes (`A B`, `A^T B`, `A B^T`) route through the
//! cache-blocked, register-tiled kernel in [`crate::gemm`], which packs
//! operand panels so transposition never produces a strided inner loop
//! and splits output columns across cores for large products.

use rayon::prelude::*;

use crate::gemm::{self, View};
use crate::matrix::DenseMatrix;
use crate::vecops;
use crate::{Error, Result};

/// Element count (m·n) below which dense GEMV stays serial. GEMV is
/// memory-bound — the sweep reads 8·m·n bytes once — so the threshold
/// is in elements, not flops. Measured directly (`cargo test -p
/// lsi-linalg --release --test par_kernels -- --ignored --nocapture`,
/// once pooled and once under `LSI_NUM_THREADS=1`): the pooled split
/// ties serial at 1<<18 elements (70 µs vs 68 µs — the dispatch eats
/// the win) and pulls ahead from 1<<19 (118 µs vs 146 µs warm, 1.8x by
/// 1<<20). 1<<19 ≈ 4 MiB also leaves ~30 µs of margin for the
/// worker-wakeup cost seen when GEMV interleaves with serial phases.
pub const MATVEC_PAR_MIN_ELEMS: usize = 1 << 19;

/// One row span of the GEMV: `y[i] += sum_j x[j] * A[r0 + i, j]` for
/// the rows `r0 .. r0 + y.len()`, sweeping columns in 4-wide blocks and
/// skipping all-zero coefficient blocks (sparse query vectors). The
/// serial path is this with `r0 = 0` and the full `y`; the parallel
/// path hands out disjoint row spans, and because every span runs the
/// identical j-loop, each `y[i]` sees the same operation order either
/// way — results are bit-for-bit independent of the thread count.
fn matvec_span(data: &[f64], m: usize, x: &[f64], r0: usize, y: &mut [f64]) {
    let rows = y.len();
    let mut j = 0;
    while j < x.len() {
        let block = (x.len() - j).min(4);
        if x[j..j + block].iter().all(|&v| v == 0.0) {
            j += block;
            continue;
        }
        if block == 4 {
            let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
            let c0 = &data[j * m + r0..j * m + r0 + rows];
            let c1 = &data[(j + 1) * m + r0..(j + 1) * m + r0 + rows];
            let c2 = &data[(j + 2) * m + r0..(j + 2) * m + r0 + rows];
            let c3 = &data[(j + 3) * m + r0..(j + 3) * m + r0 + rows];
            for i in 0..rows {
                y[i] += x0 * c0[i] + x1 * c1[i] + x2 * c2[i] + x3 * c3[i];
            }
        } else {
            for jj in j..j + block {
                if x[jj] != 0.0 {
                    let c = &data[jj * m + r0..jj * m + r0 + rows];
                    vecops::axpy(x[jj], c, y);
                }
            }
        }
        j += block;
    }
}

/// `y = A * x` (dense GEMV). Columns with a zero coefficient are
/// skipped, which matters for sparse query vectors; dense stretches of
/// four columns are fused into one sweep of `y`. Above
/// [`MATVEC_PAR_MIN_ELEMS`] the rows are split across the pool — this
/// is the single-query scoring hot path (`LsiModel::facet_cosines`
/// does one `V * q̂` per query).
pub fn matvec(a: &DenseMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.ncols() != x.len() {
        return Err(Error::DimensionMismatch {
            context: format!("matvec: {}x{} with vector {}", a.nrows(), a.ncols(), x.len()),
        });
    }
    let m = a.nrows();
    let mut y = vec![0.0; m];
    let data = a.data();
    let nthreads = rayon::current_num_threads();
    if m * x.len() >= MATVEC_PAR_MIN_ELEMS && nthreads > 1 && m > 1 {
        let span = m.div_ceil(nthreads * 2).max(1);
        y.par_chunks_mut(span).enumerate().for_each(|(ci, yspan)| {
            matvec_span(data, m, x, ci * span, yspan);
        });
    } else {
        matvec_span(data, m, x, 0, &mut y);
    }
    Ok(y)
}

/// Single row of the GEMV: `sum_j x[j] * A[i, j]`, replicating
/// [`matvec_span`]'s exact structure — the same 4-wide column blocks,
/// the same all-zero-block skip, and the same left-to-right fused sum —
/// so re-ranking one candidate row reproduces the full sweep's `y[i]`
/// bit-for-bit. This is the exact-re-rank kernel of the compressed
/// scoring path: the candidate generator scores every document in
/// reduced precision, then this recomputes only the survivors in f64.
pub fn matvec_row(a: &DenseMatrix, x: &[f64], i: usize) -> Result<f64> {
    if a.ncols() != x.len() || i >= a.nrows() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matvec_row: row {i} of {}x{} with vector {}",
                a.nrows(),
                a.ncols(),
                x.len()
            ),
        });
    }
    let m = a.nrows();
    let data = a.data();
    let mut acc = 0.0f64;
    let mut j = 0;
    while j < x.len() {
        let block = (x.len() - j).min(4);
        // lsi-analyze: allow(float-safety) — exact zero-block skip keeps outputs bit-identical to matvec_span; NaN blocks are not skipped.
        if x[j..j + block].iter().all(|&v| v == 0.0) {
            j += block;
            continue;
        }
        if block == 4 {
            acc += x[j] * data[j * m + i]
                + x[j + 1] * data[(j + 1) * m + i]
                + x[j + 2] * data[(j + 2) * m + i]
                + x[j + 3] * data[(j + 3) * m + i];
        } else {
            for jj in j..j + block {
                // lsi-analyze: allow(float-safety) — exact zero skip, bit-identical to matvec_span; NaN is not skipped.
                if x[jj] != 0.0 {
                    acc += x[jj] * data[jj * m + i];
                }
            }
        }
        j += block;
    }
    Ok(acc)
}

/// [`matvec_row`] over a batch of rows, columns outermost: every
/// 4-wide column block is loaded once and applied to all requested
/// rows before moving right. With the rows sorted ascending the inner
/// loop walks each column's candidate band in address order, which
/// turns the re-rank's scattered stride-`nrows` reads into
/// prefetch-friendly sweeps — the per-row arithmetic (block order,
/// zero-block skip, fused sum) is exactly [`matvec_span`]'s, so each
/// output is bit-identical to `matvec_row(a, x, rows[i])`.
pub fn matvec_rows(a: &DenseMatrix, x: &[f64], rows: &[usize]) -> Result<Vec<f64>> {
    let m = a.nrows();
    if a.ncols() != x.len() || rows.iter().any(|&r| r >= m) {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matvec_rows: {} rows of {}x{} with vector {}",
                rows.len(),
                m,
                a.ncols(),
                x.len()
            ),
        });
    }
    let data = a.data();
    let mut y = vec![0.0f64; rows.len()];
    let mut j = 0;
    while j < x.len() {
        let block = (x.len() - j).min(4);
        // lsi-analyze: allow(float-safety) — exact zero-block skip keeps outputs bit-identical to matvec_span; NaN blocks are not skipped.
        if x[j..j + block].iter().all(|&v| v == 0.0) {
            j += block;
            continue;
        }
        if block == 4 {
            let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
            let c0 = &data[j * m..(j + 1) * m];
            let c1 = &data[(j + 1) * m..(j + 2) * m];
            let c2 = &data[(j + 2) * m..(j + 3) * m];
            let c3 = &data[(j + 3) * m..(j + 4) * m];
            for (yi, &r) in y.iter_mut().zip(rows.iter()) {
                *yi += x0 * c0[r] + x1 * c1[r] + x2 * c2[r] + x3 * c3[r];
            }
        } else {
            for jj in j..j + block {
                // lsi-analyze: allow(float-safety) — exact zero skip, bit-identical to matvec_span; NaN is not skipped.
                if x[jj] != 0.0 {
                    let c = &data[jj * m..jj * m + m];
                    for (yi, &r) in y.iter_mut().zip(rows.iter()) {
                        *yi += x[jj] * c[r];
                    }
                }
            }
        }
        j += block;
    }
    Ok(y)
}

/// `y = A^T * x`. Each output is an independent column dot product, so
/// above [`MATVEC_PAR_MIN_ELEMS`] the columns are split across the pool
/// (query projection `qᵀ U_k` is this shape: vocabulary-length columns,
/// k of them). One dot per output either way — bit-for-bit identical
/// across thread counts.
pub fn matvec_t(a: &DenseMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.nrows() != x.len() {
        return Err(Error::DimensionMismatch {
            context: format!("matvec_t: {}x{} with vector {}", a.nrows(), a.ncols(), x.len()),
        });
    }
    if a.nrows() * a.ncols() >= MATVEC_PAR_MIN_ELEMS && rayon::current_num_threads() > 1 {
        return Ok((0..a.ncols())
            .into_par_iter()
            .map(|j| vecops::dot(a.col(j), x))
            .collect());
    }
    Ok((0..a.ncols()).map(|j| vecops::dot(a.col(j), x)).collect())
}

/// Dense `C = A * B` via the cache-blocked kernel, parallelized over
/// blocks of output columns when the product is large enough to
/// amortize task spawning.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul: {}x{} with {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let (m, n, k) = (a.nrows(), b.ncols(), a.ncols());
    let c = gemm::gemm(m, n, k, View::normal(a), View::normal(b));
    DenseMatrix::from_col_major(m, n, c)
}

/// `C = A^T * B` without materializing the transpose: the packing step
/// of the blocked kernel absorbs the transposition.
pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.nrows() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul_tn: {}x{} (transposed) with {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let (m, n, k) = (a.ncols(), b.ncols(), a.nrows());
    let c = gemm::gemm(m, n, k, View::transposed(a), View::normal(b));
    DenseMatrix::from_col_major(m, n, c)
}

/// `C = A * B^T` without materializing the transpose: the packing step
/// of the blocked kernel absorbs the transposition.
pub fn matmul_nt(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul_nt: {}x{} with {}x{} (transposed)",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let (m, n, k) = (a.nrows(), b.nrows(), a.ncols());
    let c = gemm::gemm(m, n, k, View::normal(a), View::transposed(b));
    DenseMatrix::from_col_major(m, n, c)
}

/// Scale column `j` of `a` by `s[j]` (i.e. `A * diag(s)`), in place.
pub fn scale_cols(a: &mut DenseMatrix, s: &[f64]) -> Result<()> {
    if a.ncols() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!("scale_cols: {} columns with {} scales", a.ncols(), s.len()),
        });
    }
    for (j, &sj) in s.iter().enumerate() {
        vecops::scal(sj, a.col_mut(j));
    }
    Ok(())
}

/// Scale row `i` of `a` by `s[i]` (i.e. `diag(s) * A`), in place.
pub fn scale_rows(a: &mut DenseMatrix, s: &[f64]) -> Result<()> {
    if a.nrows() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!("scale_rows: {} rows with {} scales", a.nrows(), s.len()),
        });
    }
    let m = a.nrows();
    for j in 0..a.ncols() {
        let col = a.col_mut(j);
        for i in 0..m {
            col[i] *= s[i];
        }
    }
    Ok(())
}

/// Reconstruct `U * diag(s) * V^T` — the rank-k approximation `A_k` of the
/// paper's Eq. (2).
pub fn reconstruct(u: &DenseMatrix, s: &[f64], v: &DenseMatrix) -> Result<DenseMatrix> {
    if u.ncols() != s.len() || v.ncols() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "reconstruct: U has {} cols, V has {} cols, {} singular values",
                u.ncols(),
                v.ncols(),
                s.len()
            ),
        });
    }
    let mut us = u.clone();
    scale_cols(&mut us, s)?;
    matmul_nt(&us, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DenseMatrix, DenseMatrix) {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn matvec_known() {
        let (a, _) = sample();
        let y = matvec(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matvec_row_is_bit_identical_to_full_gemv() {
        // Mix of dense and zero coefficients so every branch of the
        // span kernel (fused block, skipped block, tail) is replayed.
        let mut a = DenseMatrix::zeros(6, 11);
        for i in 0..6 {
            for j in 0..11 {
                a.set(i, j, ((i * 11 + j) as f64).sin() * 3.0);
            }
        }
        let mut x: Vec<f64> = (0..11).map(|j| (j as f64 * 0.7).cos()).collect();
        x[4] = 0.0;
        x[5] = 0.0;
        x[6] = 0.0;
        x[7] = 0.0;
        x[10] = 0.0;
        let y = matvec(&a, &x).unwrap();
        for i in 0..6 {
            assert_eq!(matvec_row(&a, &x, i).unwrap(), y[i]);
        }
        assert!(matvec_row(&a, &x[..3], 0).is_err());
        assert!(matvec_row(&a, &x, 6).is_err());
    }

    #[test]
    fn matvec_rows_is_bit_identical_to_single_row_calls() {
        let mut a = DenseMatrix::zeros(9, 11);
        for i in 0..9 {
            for j in 0..11 {
                a.set(i, j, ((i * 13 + j * 5) as f64).sin() * 2.0);
            }
        }
        let mut x: Vec<f64> = (0..11).map(|j| (j as f64 * 1.3).cos()).collect();
        x[0] = 0.0;
        x[1] = 0.0;
        x[2] = 0.0;
        x[3] = 0.0;
        x[9] = 0.0;
        // Unsorted, duplicated rows: the batch kernel must not depend
        // on candidate order or uniqueness for its per-row bits.
        let rows = [7usize, 0, 3, 3, 8, 1];
        let batch = matvec_rows(&a, &x, &rows).unwrap();
        for (out, &r) in batch.iter().zip(rows.iter()) {
            assert_eq!(out.to_bits(), matvec_row(&a, &x, r).unwrap().to_bits());
        }
        assert!(matvec_rows(&a, &x, &[9]).is_err());
        assert!(matvec_rows(&a, &x[..4], &[0]).is_err());
        assert_eq!(matvec_rows(&a, &x, &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn matvec_t_known() {
        let (a, _) = sample();
        let y = matvec_t(&a, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![9.0, 12.0]);
        assert!(matvec_t(&a, &[1.0]).is_err());
    }

    #[test]
    fn matmul_known() {
        let (a, b) = sample();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 3));
        // Row 0: [1*7+2*10, 1*8+2*11, 1*9+2*12] = [27, 30, 33]
        assert_eq!(c.row(0), vec![27.0, 30.0, 33.0]);
        assert_eq!(c.row(2), vec![95.0, 106.0, 117.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let (a, _) = sample();
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let (a, b) = sample();
        let c1 = matmul_tn(&a, &a).unwrap();
        let c2 = matmul(&a.transpose(), &a).unwrap();
        assert!(c1.fro_distance(&c2).unwrap() < 1e-12);
        assert!(matmul_tn(&a, &b).is_err());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let (a, _) = sample();
        let c1 = matmul_nt(&a, &a).unwrap();
        let c2 = matmul(&a, &a.transpose()).unwrap();
        assert!(c1.fro_distance(&c2).unwrap() < 1e-12);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let (a, _) = sample();
        let i = DenseMatrix::identity(2);
        let c = matmul(&a, &i).unwrap();
        assert!(c.fro_distance(&a).unwrap() < 1e-15);
    }

    #[test]
    fn scale_cols_and_rows() {
        let (mut a, _) = sample();
        scale_cols(&mut a, &[2.0, 0.5]).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 1.0);
        scale_rows(&mut a, &[1.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.row(1), vec![0.0, 0.0]);
    }

    #[test]
    fn reconstruct_rank_one() {
        // A = 2 * u v^T with unit u, v.
        let u = DenseMatrix::from_cols(&[vec![1.0, 0.0]]).unwrap();
        let v = DenseMatrix::from_cols(&[vec![0.0, 1.0]]).unwrap();
        let a = reconstruct(&u, &[2.0], &v).unwrap();
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn large_matmul_parallel_path_agrees_with_serial_semantics() {
        // Exercise the rayon path (work >= threshold) against hand-computed
        // structure: multiplying by a permutation-like matrix.
        let n = 40;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a.set(i, (i + 1) % n, 1.0);
        }
        let b = DenseMatrix::identity(n);
        let c = matmul(&a, &b).unwrap();
        assert!(c.fro_distance(&a).unwrap() < 1e-15);
        let c2 = matmul(&a, &a).unwrap();
        // Permutation squared shifts by two.
        for i in 0..n {
            assert_eq!(c2.get(i, (i + 2) % n), 1.0);
        }
    }
}
