//! BLAS-2/3 style dense matrix kernels, serial and rayon-parallel.
//!
//! The SVD-updating phases of the paper (§4.2) are dominated by dense
//! products of the form `U_k * U_F` with tall-skinny operands; `matmul`
//! parallelizes over output columns, which are independent and contiguous
//! in the column-major layout.

use rayon::prelude::*;

use crate::matrix::DenseMatrix;
use crate::vecops;
use crate::{Error, Result};

/// Columns-per-task threshold below which `matmul` stays serial; spawning
/// rayon tasks for tiny products costs more than the product itself.
const PAR_MIN_WORK: usize = 1 << 14;

/// `y = A * x` (dense GEMV).
pub fn matvec(a: &DenseMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.ncols() != x.len() {
        return Err(Error::DimensionMismatch {
            context: format!("matvec: {}x{} with vector {}", a.nrows(), a.ncols(), x.len()),
        });
    }
    let mut y = vec![0.0; a.nrows()];
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            vecops::axpy(xj, a.col(j), &mut y);
        }
    }
    Ok(y)
}

/// `y = A^T * x`.
pub fn matvec_t(a: &DenseMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.nrows() != x.len() {
        return Err(Error::DimensionMismatch {
            context: format!("matvec_t: {}x{} with vector {}", a.nrows(), a.ncols(), x.len()),
        });
    }
    Ok((0..a.ncols()).map(|j| vecops::dot(a.col(j), x)).collect())
}

/// Dense `C = A * B`, parallelized over columns of `C` when the product is
/// large enough to amortize task spawning.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul: {}x{} with {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let m = a.nrows();
    let n = b.ncols();
    let mut c = DenseMatrix::zeros(m, n);
    let work = m * n * a.ncols();
    let fill_col = |j: usize, out: &mut [f64]| {
        let bj = b.col(j);
        for (l, &blj) in bj.iter().enumerate() {
            if blj != 0.0 {
                vecops::axpy(blj, a.col(l), out);
            }
        }
    };
    if work >= PAR_MIN_WORK && n > 1 {
        c.data_mut()
            .par_chunks_mut(m)
            .enumerate()
            .for_each(|(j, out)| fill_col(j, out));
    } else {
        for j in 0..n {
            fill_col(j, c.col_mut(j));
        }
    }
    Ok(c)
}

/// `C = A^T * B` without materializing the transpose.
pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.nrows() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul_tn: {}x{} (transposed) with {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let m = a.ncols();
    let n = b.ncols();
    let mut c = DenseMatrix::zeros(m, n);
    let work = m * n * a.nrows();
    let fill_col = |j: usize, out: &mut [f64]| {
        let bj = b.col(j);
        for (i, o) in out.iter_mut().enumerate() {
            *o = vecops::dot(a.col(i), bj);
        }
    };
    if work >= PAR_MIN_WORK && n > 1 {
        c.data_mut()
            .par_chunks_mut(m)
            .enumerate()
            .for_each(|(j, out)| fill_col(j, out));
    } else {
        for j in 0..n {
            fill_col(j, c.col_mut(j));
        }
    }
    Ok(c)
}

/// `C = A * B^T` without materializing the transpose.
pub fn matmul_nt(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "matmul_nt: {}x{} with {}x{} (transposed)",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let m = a.nrows();
    let n = b.nrows();
    let mut c = DenseMatrix::zeros(m, n);
    for l in 0..a.ncols() {
        let al = a.col(l);
        let bl = b.col(l);
        for (j, &blj) in bl.iter().enumerate() {
            if blj != 0.0 {
                vecops::axpy(blj, al, c.col_mut(j));
            }
        }
    }
    Ok(c)
}

/// Scale column `j` of `a` by `s[j]` (i.e. `A * diag(s)`), in place.
pub fn scale_cols(a: &mut DenseMatrix, s: &[f64]) -> Result<()> {
    if a.ncols() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!("scale_cols: {} columns with {} scales", a.ncols(), s.len()),
        });
    }
    for (j, &sj) in s.iter().enumerate() {
        vecops::scal(sj, a.col_mut(j));
    }
    Ok(())
}

/// Scale row `i` of `a` by `s[i]` (i.e. `diag(s) * A`), in place.
pub fn scale_rows(a: &mut DenseMatrix, s: &[f64]) -> Result<()> {
    if a.nrows() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!("scale_rows: {} rows with {} scales", a.nrows(), s.len()),
        });
    }
    let m = a.nrows();
    for j in 0..a.ncols() {
        let col = a.col_mut(j);
        for i in 0..m {
            col[i] *= s[i];
        }
    }
    Ok(())
}

/// Reconstruct `U * diag(s) * V^T` — the rank-k approximation `A_k` of the
/// paper's Eq. (2).
pub fn reconstruct(u: &DenseMatrix, s: &[f64], v: &DenseMatrix) -> Result<DenseMatrix> {
    if u.ncols() != s.len() || v.ncols() != s.len() {
        return Err(Error::DimensionMismatch {
            context: format!(
                "reconstruct: U has {} cols, V has {} cols, {} singular values",
                u.ncols(),
                v.ncols(),
                s.len()
            ),
        });
    }
    let mut us = u.clone();
    scale_cols(&mut us, s)?;
    matmul_nt(&us, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DenseMatrix, DenseMatrix) {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn matvec_known() {
        let (a, _) = sample();
        let y = matvec(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matvec_t_known() {
        let (a, _) = sample();
        let y = matvec_t(&a, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![9.0, 12.0]);
        assert!(matvec_t(&a, &[1.0]).is_err());
    }

    #[test]
    fn matmul_known() {
        let (a, b) = sample();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 3));
        // Row 0: [1*7+2*10, 1*8+2*11, 1*9+2*12] = [27, 30, 33]
        assert_eq!(c.row(0), vec![27.0, 30.0, 33.0]);
        assert_eq!(c.row(2), vec![95.0, 106.0, 117.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let (a, _) = sample();
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let (a, b) = sample();
        let c1 = matmul_tn(&a, &a).unwrap();
        let c2 = matmul(&a.transpose(), &a).unwrap();
        assert!(c1.fro_distance(&c2).unwrap() < 1e-12);
        assert!(matmul_tn(&a, &b).is_err());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let (a, _) = sample();
        let c1 = matmul_nt(&a, &a).unwrap();
        let c2 = matmul(&a, &a.transpose()).unwrap();
        assert!(c1.fro_distance(&c2).unwrap() < 1e-12);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let (a, _) = sample();
        let i = DenseMatrix::identity(2);
        let c = matmul(&a, &i).unwrap();
        assert!(c.fro_distance(&a).unwrap() < 1e-15);
    }

    #[test]
    fn scale_cols_and_rows() {
        let (mut a, _) = sample();
        scale_cols(&mut a, &[2.0, 0.5]).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 1.0);
        scale_rows(&mut a, &[1.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.row(1), vec![0.0, 0.0]);
    }

    #[test]
    fn reconstruct_rank_one() {
        // A = 2 * u v^T with unit u, v.
        let u = DenseMatrix::from_cols(&[vec![1.0, 0.0]]).unwrap();
        let v = DenseMatrix::from_cols(&[vec![0.0, 1.0]]).unwrap();
        let a = reconstruct(&u, &[2.0], &v).unwrap();
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn large_matmul_parallel_path_agrees_with_serial_semantics() {
        // Exercise the rayon path (work >= threshold) against hand-computed
        // structure: multiplying by a permutation-like matrix.
        let n = 40;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a.set(i, (i + 1) % n, 1.0);
        }
        let b = DenseMatrix::identity(n);
        let c = matmul(&a, &b).unwrap();
        assert!(c.fro_distance(&a).unwrap() < 1e-15);
        let c2 = matmul(&a, &a).unwrap();
        // Permutation squared shifts by two.
        for i in 0..n {
            assert_eq!(c2.get(i, (i + 2) % n), 1.0);
        }
    }
}
