//! Golub–Kahan–Reinsch SVD.
//!
//! Householder bidiagonalization followed by implicit-shift QR on the
//! bidiagonal form — the classical algorithm of Golub & Reinsch
//! (*Handbook for Automatic Computation II*, 1971), which is reference
//! \[16\] of the paper. This implementation exists primarily as an
//! *independent* oracle for [`crate::jacobi`]: the two algorithms share
//! no code, so agreement on random matrices is strong evidence both are
//! right.

use crate::matrix::DenseMatrix;
use crate::svd::Svd;
use crate::{Error, Result};

/// Maximum QR iterations per singular value.
const MAX_ITERS: usize = 40;

#[inline]
fn sign_of(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Thin SVD of `a` via Golub–Kahan bidiagonalization + implicit QR.
///
/// Factors follow the same conventions as [`crate::jacobi::jacobi_svd`]:
/// `u: m x r`, `v: n x r`, `r = min(m, n)`, singular values descending
/// and nonnegative.
pub fn golub_kahan_svd(a: &DenseMatrix) -> Result<Svd> {
    if !a.is_finite() {
        return Err(Error::NotFinite);
    }
    if a.nrows() < a.ncols() {
        let svd = golub_kahan_svd(&a.transpose())?;
        return Ok(Svd {
            u: svd.v,
            s: svd.s,
            v: svd.u,
        });
    }
    let m = a.nrows();
    let n = a.ncols();
    if n == 0 {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            v: DenseMatrix::zeros(0, 0),
        });
    }

    // Working copy of A; becomes U in place.
    let mut u = a.clone();
    let mut w = vec![0.0f64; n];
    let mut v = DenseMatrix::zeros(n, n);
    let mut rv1 = vec![0.0f64; n];

    // --- Householder reduction to bidiagonal form ---
    let mut g = 0.0f64;
    let mut scale = 0.0f64;
    let mut anorm = 0.0f64;
    let mut l = 0usize;
    for i in 0..n {
        l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        let mut s;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += u.get(k, i).abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in i..m {
                    let t = u.get(k, i) / scale;
                    u.set(k, i, t);
                    s += t * t;
                }
                let f = u.get(i, i);
                g = -sign_of(s.sqrt(), f);
                let h = f * g - s;
                u.set(i, i, f - g);
                for j in l..n {
                    let mut sum = 0.0;
                    for k in i..m {
                        sum += u.get(k, i) * u.get(k, j);
                    }
                    let f = sum / h;
                    for k in i..m {
                        let t = u.get(k, j) + f * u.get(k, i);
                        u.set(k, j, t);
                    }
                }
                for k in i..m {
                    let t = u.get(k, i) * scale;
                    u.set(k, i, t);
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        s = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += u.get(i, k).abs();
            }
            if scale != 0.0 {
                for k in l..n {
                    let t = u.get(i, k) / scale;
                    u.set(i, k, t);
                    s += t * t;
                }
                let f = u.get(i, l);
                g = -sign_of(s.sqrt(), f);
                let h = f * g - s;
                u.set(i, l, f - g);
                for k in l..n {
                    rv1[k] = u.get(i, k) / h;
                }
                for j in l..m {
                    let mut sum = 0.0;
                    for k in l..n {
                        sum += u.get(j, k) * u.get(i, k);
                    }
                    for k in l..n {
                        let t = u.get(j, k) + sum * rv1[k];
                        u.set(j, k, t);
                    }
                }
                for k in l..n {
                    let t = u.get(i, k) * scale;
                    u.set(i, k, t);
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulate right-hand transformations V ---
    for i in (0..n).rev() {
        if i < n - 1 {
            if g != 0.0 {
                for j in l..n {
                    v.set(j, i, (u.get(i, j) / u.get(i, l)) / g);
                }
                for j in l..n {
                    let mut sum = 0.0;
                    for k in l..n {
                        sum += u.get(i, k) * v.get(k, j);
                    }
                    for k in l..n {
                        let t = v.get(k, j) + sum * v.get(k, i);
                        v.set(k, j, t);
                    }
                }
            }
            for j in l..n {
                v.set(i, j, 0.0);
                v.set(j, i, 0.0);
            }
        }
        v.set(i, i, 1.0);
        g = rv1[i];
        l = i;
    }

    // --- Accumulate left-hand transformations U ---
    for i in (0..m.min(n)).rev() {
        let l = i + 1;
        g = w[i];
        for j in l..n {
            u.set(i, j, 0.0);
        }
        if g != 0.0 {
            g = 1.0 / g;
            for j in l..n {
                let mut sum = 0.0;
                for k in l..m {
                    sum += u.get(k, i) * u.get(k, j);
                }
                let f = (sum / u.get(i, i)) * g;
                for k in i..m {
                    let t = u.get(k, j) + f * u.get(k, i);
                    u.set(k, j, t);
                }
            }
            for j in i..m {
                let t = u.get(j, i) * g;
                u.set(j, i, t);
            }
        } else {
            for j in i..m {
                u.set(j, i, 0.0);
            }
        }
        let t = u.get(i, i) + 1.0;
        u.set(i, i, t);
    }

    // --- Diagonalize the bidiagonal form ---
    for k in (0..n).rev() {
        let mut its = 0;
        loop {
            its += 1;
            if its > MAX_ITERS {
                return Err(Error::NoConvergence {
                    routine: "golub_kahan_svd",
                    iterations: MAX_ITERS,
                });
            }
            // Test for splitting.
            let mut flag = true;
            let mut l = k;
            let mut nm = 0usize;
            loop {
                if l == 0 {
                    flag = false;
                    break;
                }
                nm = l - 1;
                if rv1[l].abs() + anorm == anorm {
                    flag = false;
                    break;
                }
                if w[nm].abs() + anorm == anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // Cancellation of rv1[l] if l > 0.
                let mut c = 0.0;
                let mut s = 1.0;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() + anorm == anorm {
                        break;
                    }
                    let gg = w[i];
                    let h = f.hypot(gg);
                    w[i] = h;
                    let h_inv = 1.0 / h;
                    c = gg * h_inv;
                    s = -f * h_inv;
                    for j in 0..m {
                        let y = u.get(j, nm);
                        let z = u.get(j, i);
                        u.set(j, nm, y * c + z * s);
                        u.set(j, i, z * c - y * s);
                    }
                }
            }
            let z = w[k];
            if l == k {
                // Convergence: make the singular value nonnegative.
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        let t = -v.get(j, k);
                        v.set(j, k, t);
                    }
                }
                break;
            }
            // Shift from the bottom 2x2 minor.
            let x = w[l];
            let nm = k - 1;
            let y = w[nm];
            let mut g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = f.hypot(1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + sign_of(g, f))) - h)) / x;
            // Next QR transformation.
            let mut c = 1.0;
            let mut s = 1.0;
            let mut x = x;
            let mut y;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = w[i];
                h = s * g;
                g *= c;
                let mut zz = f.hypot(h);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                for jj in 0..n {
                    let xx = v.get(jj, j);
                    let z2 = v.get(jj, i);
                    v.set(jj, j, xx * c + z2 * s);
                    v.set(jj, i, z2 * c - xx * s);
                }
                zz = f.hypot(h);
                w[j] = zz;
                if zz != 0.0 {
                    let zz_inv = 1.0 / zz;
                    c = f * zz_inv;
                    s = h * zz_inv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                for jj in 0..m {
                    let yy = u.get(jj, j);
                    let z2 = u.get(jj, i);
                    u.set(jj, j, yy * c + z2 * s);
                    u.set(jj, i, z2 * c - yy * s);
                }
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
    }

    // Sort descending, permuting U and V columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].partial_cmp(&w[i]).expect("finite singular values"));
    let s_sorted: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let u_sorted =
        DenseMatrix::from_cols(&order.iter().map(|&i| u.col(i).to_vec()).collect::<Vec<_>>())
            .expect("equal column lengths");
    let v_sorted =
        DenseMatrix::from_cols(&order.iter().map(|&i| v.col(i).to_vec()).collect::<Vec<_>>())
            .expect("equal column lengths");

    Ok(Svd {
        u: u_sorted,
        s: s_sorted,
        v: v_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi_svd;
    use crate::ops::{matmul_tn, reconstruct};

    fn check(a: &DenseMatrix, tol: f64) -> Svd {
        let svd = golub_kahan_svd(a).unwrap();
        let r = a.nrows().min(a.ncols());
        assert_eq!(svd.u.shape(), (a.nrows(), r));
        assert_eq!(svd.v.shape(), (a.ncols(), r));
        for pair in svd.s.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
        let utu = matmul_tn(&svd.u, &svd.u).unwrap();
        assert!(utu.fro_distance(&DenseMatrix::identity(r)).unwrap() < tol);
        let vtv = matmul_tn(&svd.v, &svd.v).unwrap();
        assert!(vtv.fro_distance(&DenseMatrix::identity(r)).unwrap() < tol);
        let rec = reconstruct(&svd.u, &svd.s, &svd.v).unwrap();
        assert!(rec.fro_distance(a).unwrap() < tol * a.fro_norm().max(1.0));
        svd
    }

    #[test]
    fn gk_svd_of_diagonal() {
        let a = DenseMatrix::from_diag(&[2.0, 5.0, 1.0]);
        let svd = check(&a, 1e-11);
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gk_svd_tall_and_wide() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, -2.0],
            vec![0.5, 3.0],
            vec![2.0, 2.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        check(&a, 1e-10);
        check(&a.transpose(), 1e-10);
    }

    #[test]
    fn gk_agrees_with_jacobi_on_pseudorandom_matrices() {
        // Deterministic pseudo-random fill; cross-validate both SVDs.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for &(m, n) in &[(6, 4), (4, 6), (9, 9), (12, 3)] {
            let mut a = DenseMatrix::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    a.set(i, j, next());
                }
            }
            let gk = check(&a, 1e-9);
            let jc = jacobi_svd(&a).unwrap();
            for (x, y) in gk.s.iter().zip(jc.s.iter()) {
                assert!((x - y).abs() < 1e-9, "GK {x} vs Jacobi {y} on {m}x{n}");
            }
        }
    }

    #[test]
    fn gk_svd_rank_deficient() {
        let a = DenseMatrix::from_cols(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let svd = check(&a, 1e-10);
        assert!(svd.s[1] < 1e-12);
    }

    #[test]
    fn gk_svd_zero_matrix() {
        let a = DenseMatrix::zeros(3, 3);
        let svd = golub_kahan_svd(&a).unwrap();
        assert!(svd.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gk_rejects_nan() {
        let a = DenseMatrix::from_rows(&[vec![f64::INFINITY]]).unwrap();
        assert!(golub_kahan_svd(&a).is_err());
    }
}
